//! Adaptive buyer agents with classifier-system learning.
//!
//! Each [`BuyerAgent`] carries two rule populations, in the spirit of the
//! evolving-marketplace agent designs from agent-based-modeling work:
//!
//! * **listing-choice rules** — one strength per listing; the agent picks
//!   a listing by roulette over strengths (with a small ε of uniform
//!   exploration), so listings that recently produced surplus attract
//!   more of the agent's traffic;
//! * **price-acceptance rules** — an `(accept, reject)` strength pair per
//!   quantized surplus bucket; given a quote, the agent computes its
//!   surplus (willingness-to-pay minus price), buckets it, and accepts
//!   with probability `accept / (accept + reject)` for that bucket.
//!
//! Learning is pure reinforce-and-decay: rules that fired on a purchase
//! with realized positive surplus are strengthened in proportion to that
//! surplus, rules that fired on a regretted purchase (negative surplus)
//! strengthen their opposite, and every strength decays toward its prior
//! each tick so stale lessons fade. There is no gradient anywhere — the
//! population "learns" prices the way a market does, by reweighting what
//! worked.
//!
//! Determinism: every agent owns a private RNG seeded by
//! `split_stream(run_seed, AGENT_STREAM + generation·GEN + id)`, all rule
//! state lives in plain `Vec`s (no hash-order anywhere), and decisions
//! consume the RNG in a fixed per-tick order driven by the engine.

use nimbus_randkit::{seeded_rng, split_stream, uniform::uniform_index, uniform_in, NimbusRng};

/// Number of quantized surplus buckets in the acceptance rule table.
pub const SURPLUS_BUCKETS: usize = 8;

/// Stream-label base for agent RNGs; generation (churn wave) and agent id
/// are mixed in so every incarnation of every agent draws independently.
const AGENT_STREAM: u64 = 0x5EED_A6E7;
const GENERATION_STRIDE: u64 = 1_000_000;

/// Exploration mass: fraction of listing choices made uniformly at
/// random regardless of learned strengths.
const EPSILON: f64 = 0.1;
/// Reinforcement step per unit of normalized surplus.
const LEARNING_RATE: f64 = 0.5;
/// Per-tick decay of the distance between a strength and its prior.
const DECAY: f64 = 0.02;
/// Strengths never decay or reinforce outside this band, so no rule is
/// ever absorbing and no roulette denominator can reach zero.
const MIN_STRENGTH: f64 = 0.05;
const MAX_STRENGTH: f64 = 50.0;

/// The heterogeneous buyer types of the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuyerType {
    /// Price-sensitive: low valuations, content with noisy models.
    Budget,
    /// The middle of the market.
    Mainstream,
    /// Accuracy-hungry: high valuations, shops the top of the menu.
    Premium,
}

impl BuyerType {
    /// All types, in reporting order.
    pub const ALL: [BuyerType; 3] = [BuyerType::Budget, BuyerType::Mainstream, BuyerType::Premium];

    /// Stable index into per-type report arrays.
    pub fn index(self) -> usize {
        match self {
            BuyerType::Budget => 0,
            BuyerType::Mainstream => 1,
            BuyerType::Premium => 2,
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BuyerType::Budget => "budget",
            BuyerType::Mainstream => "mainstream",
            BuyerType::Premium => "premium",
        }
    }

    /// Willingness-to-pay scale, as a multiple of the listing's anchor
    /// price (the top posted price at scenario start).
    fn valuation_scale(self) -> f64 {
        match self {
            BuyerType::Budget => 0.7,
            BuyerType::Mainstream => 1.1,
            BuyerType::Premium => 1.7,
        }
    }

    /// Preferred normalized menu position `t ∈ (0, 1]` (1 = the most
    /// accurate posted version).
    fn target_quality(self) -> f64 {
        match self {
            BuyerType::Budget => 0.35,
            BuyerType::Mainstream => 0.6,
            BuyerType::Premium => 0.9,
        }
    }
}

/// What an agent wants to do this tick: quote point `menu_index` on
/// `listing`. Produced by [`BuyerAgent::intend`], either fresh or as a
/// retry of an intent whose commit died with `QuoteExpired`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Intent {
    /// Index into the engine's listing table.
    pub listing: usize,
    /// Index into that listing's posted menu.
    pub menu_index: usize,
    /// True when this intent replays one killed by a re-price.
    pub retry: bool,
}

/// An agent's verdict on a priced quote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Whether the agent wants to commit the quote.
    pub accept: bool,
    /// Surplus (WTP − price) the agent projected when deciding.
    pub surplus: f64,
    /// True when the rejection was forced by an empty wallet rather than
    /// chosen by the acceptance rules.
    pub wallet_forced: bool,
}

/// One adaptive buyer.
#[derive(Debug)]
pub struct BuyerAgent {
    id: u32,
    buyer_type: BuyerType,
    /// WTP multiplier; scenario demand shocks scale it mid-run.
    valuation_scale: f64,
    wallet: f64,
    rng: NimbusRng,
    /// Listing-choice rule strengths, one per listing.
    choice: Vec<f64>,
    /// `(accept, reject)` strengths per surplus bucket.
    accept: Vec<(f64, f64)>,
    /// Bucket the last acceptance decision fired on, for credit
    /// assignment when the commit resolves.
    last_bucket: usize,
    /// Intent killed by a re-price, to be replayed next tick.
    pending_retry: Option<Intent>,
}

impl BuyerAgent {
    /// Creates agent `id` of generation `generation` (churn wave number)
    /// with fresh learning state and its own RNG stream.
    pub fn new(
        run_seed: u64,
        generation: u64,
        id: u32,
        buyer_type: BuyerType,
        n_listings: usize,
        starting_wallet: f64,
    ) -> BuyerAgent {
        let label = AGENT_STREAM
            .wrapping_add(generation.wrapping_mul(GENERATION_STRIDE))
            .wrapping_add(u64::from(id));
        // Informative acceptance prior: higher surplus buckets start more
        // willing, so early ticks already slope the right way and
        // learning refines rather than bootstraps.
        let accept = (0..SURPLUS_BUCKETS)
            .map(|b| {
                let t = (b as f64 + 0.5) / SURPLUS_BUCKETS as f64;
                (0.5 + t, 1.5 - t)
            })
            .collect();
        BuyerAgent {
            id,
            buyer_type,
            valuation_scale: buyer_type.valuation_scale(),
            wallet: starting_wallet,
            rng: seeded_rng(split_stream(run_seed, label)),
            choice: vec![1.0; n_listings.max(1)],
            accept,
            last_bucket: SURPLUS_BUCKETS / 2,
            pending_retry: None,
        }
    }

    /// The agent's id within the population.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The agent's buyer type.
    pub fn buyer_type(&self) -> BuyerType {
        self.buyer_type
    }

    /// Current wallet balance.
    pub fn wallet(&self) -> f64 {
        self.wallet
    }

    /// Applies a demand shock: scales the agent's WTP.
    pub fn scale_valuation(&mut self, factor: f64) {
        self.valuation_scale = (self.valuation_scale * factor).max(0.0);
    }

    /// Credits per-tick income.
    pub fn earn(&mut self, income: f64) {
        self.wallet += income;
    }

    /// Willingness to pay for normalized menu position `t ∈ [0, 1]` of a
    /// listing whose anchor (top-of-menu price at scenario start) is
    /// `anchor`. Concave in `t`: accuracy has diminishing returns, which
    /// is also what makes the implied per-point valuations monotone.
    pub fn wtp(&self, t: f64, anchor: f64) -> f64 {
        self.valuation_scale * anchor * t.clamp(0.0, 1.0).sqrt()
    }

    /// Picks this tick's intent: a replay of a re-price-killed intent if
    /// one is pending, otherwise a learned listing choice plus a menu
    /// position near the agent's quality target.
    pub fn intend(&mut self, menu_lens: &[usize]) -> Intent {
        if let Some(mut retry) = self.pending_retry.take() {
            let len = menu_lens.get(retry.listing).copied().unwrap_or(1).max(1);
            retry.menu_index = retry.menu_index.min(len - 1);
            retry.retry = true;
            return retry;
        }
        let listing = self.choose_listing(menu_lens.len());
        let len = menu_lens.get(listing).copied().unwrap_or(1).max(1);
        let menu_index = self.choose_point(len);
        Intent {
            listing,
            menu_index,
            retry: false,
        }
    }

    fn choose_listing(&mut self, n: usize) -> usize {
        let n = n.max(1).min(self.choice.len());
        if n == 1 {
            return 0;
        }
        if uniform_in(&mut self.rng, 0.0, 1.0) < EPSILON {
            return uniform_index(&mut self.rng, n);
        }
        let total: f64 = self.choice.iter().take(n).sum();
        let mut spin = uniform_in(&mut self.rng, 0.0, total);
        for (i, s) in self.choice.iter().take(n).enumerate() {
            spin -= s;
            if spin <= 0.0 {
                return i;
            }
        }
        n - 1
    }

    fn choose_point(&mut self, menu_len: usize) -> usize {
        if menu_len == 1 {
            return 0;
        }
        let target = self.buyer_type.target_quality() * (menu_len - 1) as f64;
        let jitter = uniform_index(&mut self.rng, 3) as i64 - 1;
        let idx = target.round() as i64 + jitter;
        idx.clamp(0, menu_len as i64 - 1) as usize
    }

    /// Decides on a priced quote. `price` is the posted price, `t` the
    /// normalized menu position, `anchor` the listing's anchor price.
    /// A price above the wallet is a forced rejection; otherwise the
    /// bucketed acceptance rules fire.
    pub fn decide(&mut self, price: f64, t: f64, anchor: f64) -> Decision {
        let surplus = self.wtp(t, anchor) - price;
        if price > self.wallet {
            return Decision {
                accept: false,
                surplus,
                wallet_forced: true,
            };
        }
        let bucket = surplus_bucket(surplus, anchor);
        self.last_bucket = bucket;
        let (a, r) = self.accept[bucket];
        let accept = uniform_in(&mut self.rng, 0.0, a + r) < a;
        Decision {
            accept,
            surplus,
            wallet_forced: false,
        }
    }

    /// Credit assignment for a completed purchase: pay from the wallet
    /// and reinforce the rules that produced it by the realized surplus
    /// (negative surplus reinforces the bucket's reject rule and cools
    /// the listing instead).
    pub fn settle_purchase(&mut self, listing: usize, price: f64, surplus: f64, anchor: f64) {
        self.wallet = (self.wallet - price).max(0.0);
        let magnitude = normalized(surplus, anchor);
        let bucket = self.last_bucket;
        if surplus > 0.0 {
            self.accept[bucket].0 =
                clamp_strength(self.accept[bucket].0 + LEARNING_RATE * magnitude);
            if let Some(c) = self.choice.get_mut(listing) {
                *c = clamp_strength(*c + LEARNING_RATE * magnitude);
            }
        } else {
            self.accept[bucket].1 =
                clamp_strength(self.accept[bucket].1 + LEARNING_RATE * magnitude);
            if let Some(c) = self.choice.get_mut(listing) {
                *c = clamp_strength(*c * (1.0 - LEARNING_RATE * magnitude.min(1.0) * 0.5));
            }
        }
    }

    /// Mild counterfactual learning after a chosen (not wallet-forced)
    /// rejection: a rejected negative-surplus quote confirms the reject
    /// rule that fired.
    pub fn settle_rejection(&mut self, surplus: f64, anchor: f64) {
        if surplus < 0.0 {
            let bucket = self.last_bucket;
            self.accept[bucket].1 = clamp_strength(
                self.accept[bucket].1 + 0.5 * LEARNING_RATE * normalized(surplus, anchor),
            );
        }
    }

    /// Remembers an intent whose commit died with `QuoteExpired`, to be
    /// replayed (and re-decided at the new price) next tick.
    pub fn queue_retry(&mut self, intent: Intent) {
        self.pending_retry = Some(intent);
    }

    /// Per-tick decay of every strength toward its prior.
    pub fn decay(&mut self) {
        for c in &mut self.choice {
            *c = clamp_strength(1.0 + (*c - 1.0) * (1.0 - DECAY));
        }
        for (i, (a, r)) in self.accept.iter_mut().enumerate() {
            let t = (i as f64 + 0.5) / SURPLUS_BUCKETS as f64;
            *a = clamp_strength((0.5 + t) + (*a - (0.5 + t)) * (1.0 - DECAY));
            *r = clamp_strength((1.5 - t) + (*r - (1.5 - t)) * (1.0 - DECAY));
        }
    }
}

/// Quantizes a surplus (in price units) into one of the
/// [`SURPLUS_BUCKETS`] rule buckets, normalizing by the listing anchor so
/// bucket boundaries are scale-free. The band `[-anchor, +anchor]` maps
/// linearly onto the buckets; anything outside clamps to the end buckets.
fn surplus_bucket(surplus: f64, anchor: f64) -> usize {
    let norm = if anchor > 0.0 { surplus / anchor } else { 0.0 };
    let t = (norm + 1.0) / 2.0;
    let idx = (t * SURPLUS_BUCKETS as f64).floor();
    (idx.max(0.0) as usize).min(SURPLUS_BUCKETS - 1)
}

fn normalized(surplus: f64, anchor: f64) -> f64 {
    if anchor > 0.0 {
        (surplus.abs() / anchor).min(2.0)
    } else {
        0.0
    }
}

fn clamp_strength(s: f64) -> f64 {
    s.clamp(MIN_STRENGTH, MAX_STRENGTH)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent(seed: u64) -> BuyerAgent {
        BuyerAgent::new(seed, 0, 7, BuyerType::Mainstream, 2, 100.0)
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = agent(11);
        let mut b = agent(11);
        for _ in 0..50 {
            let ia = a.intend(&[20, 20]);
            let ib = b.intend(&[20, 20]);
            assert_eq!(ia, ib);
            let da = a.decide(3.0, 0.6, 5.0);
            let db = b.decide(3.0, 0.6, 5.0);
            assert_eq!(da, db);
        }
    }

    #[test]
    fn surplus_buckets_cover_and_clamp() {
        assert_eq!(surplus_bucket(-10.0, 5.0), 0);
        assert_eq!(surplus_bucket(10.0, 5.0), SURPLUS_BUCKETS - 1);
        let mid = surplus_bucket(0.0, 5.0);
        assert!(mid == SURPLUS_BUCKETS / 2 || mid == SURPLUS_BUCKETS / 2 - 1);
        assert_eq!(surplus_bucket(1.0, 0.0), SURPLUS_BUCKETS / 2);
    }

    #[test]
    fn positive_surplus_reinforces_acceptance() {
        let mut a = agent(3);
        // Fire the decision once so credit lands on a real bucket.
        let d = a.decide(1.0, 0.9, 5.0);
        assert!(d.surplus > 0.0);
        let bucket = a.last_bucket;
        let before = a.accept[bucket].0;
        a.settle_purchase(0, 1.0, d.surplus, 5.0);
        assert!(a.accept[bucket].0 > before);
        assert!(a.wallet() < 100.0);
    }

    #[test]
    fn negative_surplus_cools_the_listing() {
        let mut a = agent(5);
        let before = a.choice[0];
        a.decide(6.0, 0.2, 5.0);
        a.settle_purchase(0, 6.0, -3.5, 5.0);
        assert!(a.choice[0] < before);
    }

    #[test]
    fn wallet_exhaustion_forces_rejection() {
        let mut a = BuyerAgent::new(1, 0, 0, BuyerType::Premium, 1, 2.0);
        let d = a.decide(5.0, 1.0, 5.0);
        assert!(!d.accept);
        assert!(d.wallet_forced);
    }

    #[test]
    fn retry_replays_the_killed_intent() {
        let mut a = agent(9);
        let intent = a.intend(&[20]);
        a.queue_retry(intent);
        let replay = a.intend(&[20]);
        assert!(replay.retry);
        assert_eq!(replay.listing, intent.listing);
        assert_eq!(replay.menu_index, intent.menu_index);
        // Menu shrank across the re-price: the replayed index clamps.
        a.queue_retry(Intent {
            listing: 0,
            menu_index: 19,
            retry: false,
        });
        let clamped = a.intend(&[4]);
        assert_eq!(clamped.menu_index, 3);
    }

    #[test]
    fn decay_pulls_strengths_back_to_priors() {
        let mut a = agent(13);
        a.decide(0.5, 0.9, 5.0);
        for _ in 0..10 {
            a.settle_purchase(0, 0.5, 4.0, 5.0);
        }
        let hot = a.choice[0];
        assert!(hot > 1.0);
        for _ in 0..500 {
            a.decay();
        }
        assert!((a.choice[0] - 1.0).abs() < 0.01);
        assert!(a.choice[0] < hot);
    }
}
