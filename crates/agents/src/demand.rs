//! Empirical demand observation.
//!
//! The [`DemandObserver`] is the sensor half of the closed loop: every
//! quote the engine relays to an agent is recorded against its listing
//! and menu point as offered-and-(accepted|rejected). Between re-prices
//! the counts accumulate into a windowed empirical demand curve — offered
//! mass and acceptance rate per posted price point — which the
//! [`crate::reprice::Repricer`] turns into a [`nimbus_optim::RevenueProblem`].
//! Re-pricing resets the window: counts observed against dead prices
//! would poison the next estimate.
//!
//! Storage is index-addressed `Vec`s throughout (listing index × menu
//! index): deterministic iteration, no hash order anywhere.

/// Accumulated observations for one posted menu point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PointDemand {
    /// Quotes relayed to agents at this point in the current window.
    pub offered: u64,
    /// How many of those the agent chose to commit.
    pub accepted: u64,
}

impl PointDemand {
    /// Acceptance rate of the window (`0` when nothing was offered).
    pub fn acceptance_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.accepted as f64 / self.offered as f64
        }
    }
}

/// Windowed per-listing, per-menu-point demand counts.
#[derive(Debug, Clone)]
pub struct DemandObserver {
    per_listing: Vec<Vec<PointDemand>>,
}

impl DemandObserver {
    /// Creates an observer for listings with the given menu lengths.
    pub fn new(menu_lens: &[usize]) -> DemandObserver {
        DemandObserver {
            per_listing: menu_lens
                .iter()
                .map(|&n| vec![PointDemand::default(); n])
                .collect(),
        }
    }

    /// Records one relayed quote. Out-of-range indices (a menu shrank
    /// under a re-price mid-tick) are dropped rather than misattributed.
    pub fn record(&mut self, listing: usize, menu_index: usize, accepted: bool) {
        if let Some(point) = self
            .per_listing
            .get_mut(listing)
            .and_then(|l| l.get_mut(menu_index))
        {
            point.offered += 1;
            if accepted {
                point.accepted += 1;
            }
        }
    }

    /// Total offered quotes for a listing in the current window.
    pub fn observations(&self, listing: usize) -> u64 {
        self.per_listing
            .get(listing)
            .map(|l| l.iter().map(|p| p.offered).sum())
            .unwrap_or(0)
    }

    /// The listing's windowed counts, menu-indexed.
    pub fn window(&self, listing: usize) -> &[PointDemand] {
        self.per_listing
            .get(listing)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Resets one listing's window to the given (possibly new) menu
    /// length — called right after that listing re-prices.
    pub fn reset_listing(&mut self, listing: usize, menu_len: usize) {
        if let Some(l) = self.per_listing.get_mut(listing) {
            *l = vec![PointDemand::default(); menu_len];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_point() {
        let mut obs = DemandObserver::new(&[3, 2]);
        obs.record(0, 1, true);
        obs.record(0, 1, false);
        obs.record(0, 2, true);
        obs.record(1, 0, false);
        assert_eq!(obs.observations(0), 3);
        assert_eq!(obs.observations(1), 1);
        let w = obs.window(0);
        assert_eq!(
            w[1],
            PointDemand {
                offered: 2,
                accepted: 1
            }
        );
        assert!((w[1].acceptance_rate() - 0.5).abs() < 1e-12);
        assert_eq!(w[0].acceptance_rate(), 0.0);
    }

    #[test]
    fn out_of_range_records_are_dropped() {
        let mut obs = DemandObserver::new(&[2]);
        obs.record(0, 9, true);
        obs.record(5, 0, true);
        assert_eq!(obs.observations(0), 0);
        assert_eq!(obs.observations(5), 0);
    }

    #[test]
    fn reset_clears_one_listing_and_can_resize() {
        let mut obs = DemandObserver::new(&[2, 2]);
        obs.record(0, 0, true);
        obs.record(1, 1, true);
        obs.reset_listing(0, 4);
        assert_eq!(obs.observations(0), 0);
        assert_eq!(obs.window(0).len(), 4);
        assert_eq!(obs.observations(1), 1);
    }
}
