//! The deterministic discrete-tick simulation engine.
//!
//! [`run_scenario`] drives a [`crate::agent::BuyerAgent`] population
//! against a live [`nimbus_server::NimbusServer`] over TCP using the
//! pipelined wire-v4 client, closing the loop with a
//! [`crate::demand::DemandObserver`] and a [`crate::reprice::Repricer`].
//!
//! # Tick structure
//!
//! Each tick runs five phases in a fixed order:
//!
//! 1. **income + decay** — agents earn, learned strengths decay;
//! 2. **quote** — every agent forms an [`crate::agent::Intent`] (possibly
//!    a retry of a re-price-killed one) and the engine pipelines one
//!    `QUOTE` per agent;
//! 3. **decide** — each priced quote goes to its agent's acceptance
//!    rules; outcomes feed the demand observer;
//! 4. **re-price** — on cadence ticks the re-pricer republishes from the
//!    observed window *between the quote and commit phases*, so the
//!    accepted quotes of this very tick carry a dead epoch and the
//!    epoch-kill path (`QuoteExpired` at commit, agent retry next tick)
//!    is exercised on every re-price, deterministically;
//! 5. **commit** — accepted quotes are pipelined as `COMMIT`s (with
//!    deterministic idempotency nonces and, when the scenario defines
//!    buyer identities, a wire-v5 buyer id); ACKs settle wallets and
//!    learning, expirations queue retries, and `BUDGET_EXHAUSTED`
//!    rejects are absorbed without retry — exhaustion is durable, so a
//!    dried-up buyer keeps quoting but never commits again.
//!
//! # Determinism
//!
//! Same `(scenario, seed)` ⇒ bitwise-identical tick log. The engine gets
//! there by construction:
//!
//! * every random draw comes from a per-agent RNG stream split off the
//!   run seed; the engine itself draws nothing;
//! * responses are pipelined but *processed in send order*: each phase
//!   matches responses back to requests by correlation id before any
//!   agent sees them, so server-side arrival order is invisible;
//! * re-pricing happens synchronously between phases, never concurrently
//!   with traffic, so epoch sequences are reproducible;
//! * the journal excludes everything machine-dependent: ledger
//!   transaction ids (assignment order races across server workers),
//!   noisy model weights (functions of the tx id), and wall-clock
//!   timings (reported separately via the injected clock, zero under
//!   [`nimbus_market::clock::null_clock`]).

use crate::agent::{BuyerAgent, BuyerType, Intent};
use crate::demand::DemandObserver;
use crate::metrics::{render_log, RepriceDelta, TickRecord};
use crate::reprice::Repricer;
use crate::scenario::{Scenario, SimEvent};
use crate::{AgentsError, Result};
use nimbus_market::clock::Clock;
use nimbus_market::{Marketplace, PurchaseRequest};
use nimbus_server::wire::{ErrorCode, Request, Response};
use nimbus_server::{ClientConfig, PipelinedClient};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

/// Pipelining window per connection: far below the server's shard queue
/// capacity so in-flight frames are never shed (a shed closes the
/// connection).
const MAX_IN_FLIGHT: usize = 64;
/// Reconnect budget per exchange: transport failures are retried by
/// reconnecting and re-sending the unanswered requests (quotes and menus
/// are reads; commits carry idempotency nonces), but only this many
/// times before the run reports the fault.
const MAX_RECONNECTS: usize = 5;

/// One ACKed sale, as the buyer side recorded it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerAck {
    /// Ledger transaction id from the `COMMIT` ACK.
    pub transaction: u64,
    /// Price charged.
    pub price: f64,
}

/// Everything a finished run reports.
#[derive(Debug)]
pub struct SimOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Run seed.
    pub seed: u64,
    /// Listing names, engine index order.
    pub listings: Vec<String>,
    /// Per-tick records (the journal's source of truth).
    pub records: Vec<TickRecord>,
    /// The rendered JSONL journal — byte-identical across same-seed runs.
    pub log: String,
    /// Buyer-side ACKed sales per listing (engine index order), in ACK
    /// processing order. Reconciles against the server-side ledger.
    pub acked: Vec<Vec<LedgerAck>>,
    /// Final posted menus per listing.
    pub final_menus: Vec<Vec<(f64, f64)>>,
    /// Number of successful re-prices.
    pub reprice_count: u64,
    /// Injected-clock time spent inside re-pricing, total and worst
    /// single re-price (zero under a null clock).
    pub reprice_total: Duration,
    /// Worst single re-price latency.
    pub reprice_max: Duration,
    /// Injected-clock duration of the whole run.
    pub elapsed: Duration,
}

impl SimOutcome {
    /// Total revenue ACKed to agents.
    pub fn acked_revenue(&self) -> f64 {
        self.acked
            .iter()
            .flat_map(|l| l.iter().map(|a| a.price))
            .sum()
    }

    /// Total commits ACKed to agents.
    pub fn acked_commits(&self) -> u64 {
        self.acked.iter().map(|l| l.len() as u64).sum()
    }

    /// Total commits rejected with `BUDGET_EXHAUSTED` across the run.
    pub fn budget_rejects(&self) -> u64 {
        self.records.iter().map(|r| r.budget_rejects).sum()
    }
}

/// The posted menu the engine caches between re-prices.
struct MenuState {
    points: Vec<(f64, f64)>,
    /// Top-of-menu price at scenario start; anchors agent WTP for the
    /// whole run so demand responds to price *changes*.
    anchor: f64,
}

/// An accepted quote awaiting its commit phase.
struct PendingCommit {
    agent: usize,
    intent: Intent,
    x: f64,
    price: f64,
    epoch: u64,
    surplus: f64,
}

/// Runs `scenario` with `seed` against the server at `addr`, re-pricing
/// through `marketplace` (which must be the instance the server routes
/// against). `clock` times the run and the re-pricer; pass
/// [`nimbus_market::clock::null_clock`] for bit-identical outcomes or
/// [`nimbus_market::clock::wall_clock`] for real latencies.
pub fn run_scenario(
    scenario: &Scenario,
    seed: u64,
    addr: SocketAddr,
    marketplace: &Marketplace,
    clock: Clock<'_>,
) -> Result<SimOutcome> {
    scenario.validate()?;
    let started = clock();
    let client_config = ClientConfig::default();
    let n_conns = scenario.connections.min(scenario.agents.max(1));
    let mut conns = Vec::with_capacity(n_conns);
    for _ in 0..n_conns {
        conns.push(PipelinedClient::connect(addr, &client_config).map_err(AgentsError::Server)?);
    }

    let listings: Vec<String> = scenario.listings.iter().map(|l| l.name.clone()).collect();
    let mut menus = fetch_menus(&mut conns, addr, &client_config, &listings)?;
    for menu in &menus {
        if menu.points.is_empty() {
            return Err(AgentsError::Config(
                "a scenario listing has an empty posted menu".to_string(),
            ));
        }
    }

    // Scenario wallets and incomes are scale-free: one unit is a tenth
    // of the mean anchor (top-of-menu) price, so the same scenario
    // behaves the same whatever absolute price level the listings'
    // revenue DP happens to publish at.
    let unit = menus.iter().map(|m| m.anchor).sum::<f64>() / menus.len() as f64 / 10.0;
    let wallet = scenario.starting_wallet * unit;
    let mut income = scenario.income_per_tick * unit;

    let mut agents = spawn_population(scenario, seed, 0, listings.len(), wallet);
    let mut generation: u64 = 0;
    let mut observer = DemandObserver::new(&menu_lens(&menus));
    let repricer = Repricer {
        min_observations: scenario.min_observations,
        ..Repricer::default()
    };
    let mut records = Vec::with_capacity(scenario.ticks as usize);
    let mut acked: Vec<Vec<LedgerAck>> = vec![Vec::new(); listings.len()];
    let mut nonce_counter: u64 = 0;
    let mut reprice_count = 0u64;
    let mut reprice_total = Duration::ZERO;
    let mut reprice_max = Duration::ZERO;
    let mut next_event = 0usize;

    for tick in 0..scenario.ticks {
        // Scripted events land at the start of their tick.
        while next_event < scenario.events.len() && scenario.events[next_event].tick() <= tick {
            match scenario.events[next_event] {
                SimEvent::DemandShock { factor, .. } => {
                    for a in &mut agents {
                        a.scale_valuation(factor);
                    }
                }
                SimEvent::Churn { fraction, .. } => {
                    generation += 1;
                    churn(
                        seed,
                        generation,
                        fraction,
                        &mut agents,
                        listings.len(),
                        wallet,
                    );
                }
                SimEvent::IncomeSqueeze { factor, .. } => {
                    income = (income * factor).max(0.0);
                }
            }
            next_event += 1;
        }

        let mut record = TickRecord {
            tick,
            ..TickRecord::default()
        };

        // Phase 1: income + decay.
        for a in &mut agents {
            a.earn(income);
            a.decay();
        }

        // Phase 2: quotes. One request per agent, agent-order batch.
        let lens = menu_lens(&menus);
        let intents: Vec<Intent> = agents.iter_mut().map(|a| a.intend(&lens)).collect();
        let quote_batch: Vec<(usize, Request)> = intents
            .iter()
            .enumerate()
            .map(|(i, intent)| {
                let menu = &menus[intent.listing];
                let x = menu.points[intent.menu_index.min(menu.points.len() - 1)].0;
                (
                    i % n_conns,
                    Request::Quote {
                        listing: Some(listings[intent.listing].clone()),
                        request: PurchaseRequest::AtInverseNcp(x),
                    },
                )
            })
            .collect();
        let quote_responses = exchange(&mut conns, addr, &client_config, &quote_batch)?;

        // Phase 3: decisions, in agent order.
        let mut pending: Vec<PendingCommit> = Vec::new();
        for (i, response) in quote_responses.into_iter().enumerate() {
            let intent = intents[i];
            let menu = &menus[intent.listing];
            let quote = match response {
                Response::Quote(q) => q,
                Response::Error { code, message } => {
                    return Err(AgentsError::Protocol(format!(
                        "quote for agent {i} failed: {code:?}: {message}"
                    )));
                }
                other => {
                    return Err(AgentsError::Protocol(format!(
                        "quote for agent {i} answered with {other:?}"
                    )));
                }
            };
            record.quotes += 1;
            let menu_index = intent.menu_index.min(menu.points.len() - 1);
            let t = if menu.points.len() == 1 {
                1.0
            } else {
                menu_index as f64 / (menu.points.len() - 1) as f64
            };
            let decision = agents[i].decide(quote.price, t, menu.anchor);
            observer.record(intent.listing, menu_index, decision.accept);
            if decision.accept {
                record.accepts += 1;
                pending.push(PendingCommit {
                    agent: i,
                    intent,
                    x: quote.x,
                    price: quote.price,
                    epoch: quote.snapshot_epoch,
                    surplus: decision.surplus,
                });
            } else {
                record.rejects += 1;
                if decision.wallet_forced {
                    record.wallet_forced += 1;
                } else {
                    agents[i].settle_rejection(decision.surplus, menu.anchor);
                }
            }
        }

        // Phase 4: on cadence ticks, re-price between quote and commit —
        // this tick's accepted quotes die with QuoteExpired below.
        let on_cadence =
            scenario.reprice_every > 0 && tick > 0 && tick % scenario.reprice_every == 0;
        if on_cadence {
            for (li, name) in listings.iter().enumerate() {
                let before = clock();
                let outcome =
                    repricer.reprice(marketplace, name, &menus[li].points, observer.window(li))?;
                let took = clock().saturating_sub(before);
                if let Some(outcome) = outcome {
                    reprice_count += 1;
                    reprice_total += took;
                    reprice_max = reprice_max.max(took);
                    record.reprices.push(RepriceDelta {
                        listing: outcome.listing,
                        old_top: outcome.old_top,
                        new_top: outcome.new_top,
                    });
                    // Refresh the cached menu; the WTP anchor survives.
                    let anchor = menus[li].anchor;
                    let fresh =
                        fetch_menus(&mut conns, addr, &client_config, std::slice::from_ref(name))?;
                    let mut fresh = fresh.into_iter().next().ok_or_else(|| {
                        AgentsError::Protocol("menu refetch returned nothing".to_string())
                    })?;
                    fresh.anchor = anchor;
                    observer.reset_listing(li, fresh.points.len());
                    menus[li] = fresh;
                }
            }
        }

        // Phase 5: commits for this tick's accepted quotes. Agent i
        // commits as buyer (i mod buyers) + 1 when the scenario defines
        // identities; `buyers < agents` deliberately shares (colludes
        // on) identities so a ring drains one budget together.
        let commit_batch: Vec<(usize, Request)> = pending
            .iter()
            .map(|p| {
                nonce_counter += 1;
                (
                    p.agent % n_conns,
                    Request::Commit {
                        listing: Some(listings[p.intent.listing].clone()),
                        x: p.x,
                        snapshot_epoch: p.epoch,
                        payment: p.price,
                        nonce: Some(nonce_counter),
                        buyer: buyer_identity(scenario, p.agent),
                    },
                )
            })
            .collect();
        let commit_responses = exchange(&mut conns, addr, &client_config, &commit_batch)?;
        for (p, response) in pending.iter().zip(commit_responses) {
            let menu_anchor = menus[p.intent.listing].anchor;
            match response {
                Response::Commit(sale) => {
                    record.commits += 1;
                    record.revenue += sale.price;
                    let agent = &mut agents[p.agent];
                    let realized = p.surplus;
                    record.surplus[agent.buyer_type().index()] += realized;
                    agent.settle_purchase(p.intent.listing, sale.price, realized, menu_anchor);
                    acked[p.intent.listing].push(LedgerAck {
                        transaction: sale.transaction,
                        price: sale.price,
                    });
                }
                Response::Error { code, message } => {
                    if code == ErrorCode::QuoteExpired {
                        record.expired += 1;
                        agents[p.agent].queue_retry(p.intent);
                    } else if code == ErrorCode::BudgetExhausted {
                        // Durable exhaustion: retrying the same buyer
                        // can only be rejected again, so count it and
                        // let the agent move on (no wallet settlement —
                        // nothing was charged).
                        record.budget_rejects += 1;
                    } else {
                        return Err(AgentsError::Protocol(format!(
                            "commit for agent {} failed: {code:?}: {message}",
                            p.agent
                        )));
                    }
                }
                other => {
                    return Err(AgentsError::Protocol(format!(
                        "commit for agent {} answered with {other:?}",
                        p.agent
                    )));
                }
            }
        }

        records.push(record);
    }

    let log = render_log(&records);
    Ok(SimOutcome {
        scenario: scenario.name.clone(),
        seed,
        listings,
        final_menus: menus.iter().map(|m| m.points.clone()).collect(),
        records,
        log,
        acked,
        reprice_count,
        reprice_total,
        reprice_max,
        elapsed: clock().saturating_sub(started),
    })
}

fn menu_lens(menus: &[MenuState]) -> Vec<usize> {
    menus.iter().map(|m| m.points.len()).collect()
}

/// The wire-v5 buyer identity agent `agent` commits under, or `None`
/// (anonymous, pre-v5 behavior) when the scenario defines no identities.
fn buyer_identity(scenario: &Scenario, agent: usize) -> Option<u64> {
    if scenario.buyers == 0 {
        None
    } else {
        Some((agent % scenario.buyers) as u64 + 1)
    }
}

fn spawn_population(
    scenario: &Scenario,
    seed: u64,
    generation: u64,
    n_listings: usize,
    wallet: f64,
) -> Vec<BuyerAgent> {
    (0..scenario.agents)
        .map(|i| {
            BuyerAgent::new(
                seed,
                generation,
                i as u32,
                type_for(scenario, i),
                n_listings,
                wallet,
            )
        })
        .collect()
}

/// Deterministic type assignment: the population is laid out by
/// cumulative mix fractions, so the type histogram matches the mix for
/// any population size without consuming randomness.
fn type_for(scenario: &Scenario, index: usize) -> BuyerType {
    let mass = scenario.mix.budget + scenario.mix.mainstream + scenario.mix.premium;
    let t = (index as f64 + 0.5) / scenario.agents as f64 * mass;
    if t < scenario.mix.budget {
        BuyerType::Budget
    } else if t < scenario.mix.budget + scenario.mix.mainstream {
        BuyerType::Mainstream
    } else {
        BuyerType::Premium
    }
}

/// Replaces a deterministic stratified `fraction` of agents with fresh
/// generation-`generation` agents (same id and type, reset learning,
/// wallet and RNG stream).
fn churn(
    seed: u64,
    generation: u64,
    fraction: f64,
    agents: &mut [BuyerAgent],
    n_listings: usize,
    wallet: f64,
) {
    let n = agents.len();
    if n == 0 {
        return;
    }
    let replace = ((n as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
    if replace == 0 {
        return;
    }
    // Every (n/replace)-th agent churns: stratified across ids and types.
    let stride = (n as f64) / (replace as f64);
    for k in 0..replace {
        let idx = ((k as f64) * stride).floor() as usize;
        if let Some(slot) = agents.get_mut(idx) {
            *slot = BuyerAgent::new(
                seed,
                generation,
                slot.id(),
                slot.buyer_type(),
                n_listings,
                wallet,
            );
        }
    }
}

/// Fetches the posted menus for `listings` over conn 0.
fn fetch_menus(
    conns: &mut [PipelinedClient],
    addr: SocketAddr,
    config: &ClientConfig,
    listings: &[String],
) -> Result<Vec<MenuState>> {
    let batch: Vec<(usize, Request)> = listings
        .iter()
        .map(|name| {
            (
                0usize,
                Request::Menu {
                    listing: Some(name.clone()),
                },
            )
        })
        .collect();
    let responses = exchange(conns, addr, config, &batch)?;
    responses
        .into_iter()
        .enumerate()
        .map(|(i, response)| match response {
            Response::Menu(menu) => {
                let anchor = menu.points.iter().map(|&(_, p)| p).fold(0.0f64, f64::max);
                Ok(MenuState {
                    points: menu.points,
                    anchor,
                })
            }
            other => Err(AgentsError::Protocol(format!(
                "menu for listing `{}` answered with {other:?}",
                listings.get(i).map(String::as_str).unwrap_or("?")
            ))),
        })
        .collect()
}

/// Pipelined send-all/drain-all with a per-connection window.
///
/// Requests are assigned to connections by the batch's `(conn, request)`
/// pairs, sent up to [`MAX_IN_FLIGHT`] per connection, and the responses
/// are returned **in batch order** regardless of arrival order — the
/// caller never observes server-side scheduling. A transport fault or a
/// mid-stream `BUSY` shed reconnects the affected connection and
/// re-sends its unanswered requests (safe: reads are idempotent and
/// commits carry nonces), bounded by [`MAX_RECONNECTS`].
fn exchange(
    conns: &mut [PipelinedClient],
    addr: SocketAddr,
    config: &ClientConfig,
    batch: &[(usize, Request)],
) -> Result<Vec<Response>> {
    let mut out: Vec<Option<Response>> = (0..batch.len()).map(|_| None).collect();
    let n_conns = conns.len().max(1);
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); n_conns];
    for (idx, &(conn, _)) in batch.iter().enumerate() {
        queues[conn % n_conns].push(idx);
    }
    // Per-conn cursor into its queue and corr→batch-index map.
    let mut sent: Vec<usize> = vec![0; n_conns];
    let mut maps: Vec<BTreeMap<u64, usize>> = vec![BTreeMap::new(); n_conns];
    let mut reconnects = 0usize;

    // Prime every connection's window so the server works all pipelines
    // while we drain them one by one.
    for c in 0..n_conns {
        fill(&mut conns[c], &queues[c], &mut sent[c], &mut maps[c], batch)?;
    }
    for c in 0..n_conns {
        while !maps[c].is_empty() || sent[c] < queues[c].len() {
            match conns[c].recv() {
                Ok((corr, Response::Busy { .. })) => {
                    // A mid-stream shed closes the connection server-side;
                    // recover the unanswered requests on a fresh one.
                    let _ = corr;
                    reconnect(
                        conns,
                        c,
                        addr,
                        config,
                        &queues[c],
                        &mut sent[c],
                        &mut maps[c],
                        &mut reconnects,
                    )?;
                    fill(&mut conns[c], &queues[c], &mut sent[c], &mut maps[c], batch)?;
                }
                Ok((corr, response)) => {
                    if let Some(idx) = maps[c].remove(&corr) {
                        out[idx] = Some(response);
                    }
                    fill(&mut conns[c], &queues[c], &mut sent[c], &mut maps[c], batch)?;
                }
                Err(_) => {
                    reconnect(
                        conns,
                        c,
                        addr,
                        config,
                        &queues[c],
                        &mut sent[c],
                        &mut maps[c],
                        &mut reconnects,
                    )?;
                    fill(&mut conns[c], &queues[c], &mut sent[c], &mut maps[c], batch)?;
                }
            }
        }
    }
    out.into_iter()
        .map(|r| r.ok_or_else(|| AgentsError::Protocol("response lost in exchange".to_string())))
        .collect()
}

/// Tops a connection's pipeline up to the window.
fn fill(
    conn: &mut PipelinedClient,
    queue: &[usize],
    sent: &mut usize,
    map: &mut BTreeMap<u64, usize>,
    batch: &[(usize, Request)],
) -> Result<()> {
    while *sent < queue.len() && map.len() < MAX_IN_FLIGHT {
        let idx = queue[*sent];
        let corr = conn.send(&batch[idx].1).map_err(AgentsError::Server)?;
        map.insert(corr, idx);
        *sent += 1;
    }
    Ok(())
}

/// Replaces connection `c` and rewinds its cursor so every unanswered
/// request re-sends on the fresh connection.
#[allow(clippy::too_many_arguments)]
fn reconnect(
    conns: &mut [PipelinedClient],
    c: usize,
    addr: SocketAddr,
    config: &ClientConfig,
    queue: &[usize],
    sent: &mut usize,
    map: &mut BTreeMap<u64, usize>,
    reconnects: &mut usize,
) -> Result<()> {
    *reconnects += 1;
    if *reconnects > MAX_RECONNECTS {
        return Err(AgentsError::Protocol(
            "connection kept failing mid-exchange; reconnect budget exhausted".to_string(),
        ));
    }
    conns[c] = PipelinedClient::connect(addr, config).map_err(AgentsError::Server)?;
    // Rewind to the earliest unanswered request: everything at or after
    // it that was answered already stays answered (out[] keeps results;
    // re-received duplicates are ignored by the map lookup).
    let earliest = map.values().copied().min();
    map.clear();
    if let Some(earliest) = earliest {
        if let Some(pos) = queue.iter().position(|&idx| idx == earliest) {
            *sent = pos;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SimHarness;
    use crate::scenario::Scenario;
    use nimbus_market::clock::null_clock;

    #[test]
    fn smoke_scenario_closes_the_loop() {
        let scenario = Scenario::builtin("smoke").expect("catalog");
        let h = SimHarness::start(&scenario, 42).expect("harness");
        let outcome = run_scenario(
            &scenario,
            42,
            h.server.local_addr(),
            &h.marketplace,
            &null_clock(),
        )
        .expect("run completes");
        h.server.shutdown();
        assert_eq!(outcome.records.len() as u64, scenario.ticks);
        let quotes: u64 = outcome.records.iter().map(|r| r.quotes).sum();
        assert_eq!(quotes, scenario.ticks * scenario.agents as u64);
        // The population actually buys, and the loop actually re-prices.
        assert!(outcome.acked_commits() > 0, "no commits ACKed");
        assert!(outcome.reprice_count > 0, "the re-pricer never fired");
        // Every re-price kills that tick's accepted in-flight quotes.
        let expired: u64 = outcome.records.iter().map(|r| r.expired).sum();
        assert!(expired > 0, "epoch-kill path never exercised");
        // Journal revenue matches the ACK stream (summation order
        // differs — per tick vs per listing — so compare to rounding).
        let journal_revenue: f64 = outcome.records.iter().map(|r| r.revenue).sum();
        let acked = outcome.acked_revenue();
        assert!((journal_revenue - acked).abs() <= 1e-9 * acked.max(1.0));
    }
}
