//! Stands up the real serving stack for a simulation run.
//!
//! The simulator is deliberately *not* an in-process mock: agents speak
//! pipelined wire v4 over real TCP to a real [`NimbusServer`] fronting a
//! real [`Marketplace`], so every run doubles as a protocol/serving soak.
//! The harness builds one published listing per [`crate::scenario::ListingSpec`] (small
//! synthetic datasets — the simulation exercises market dynamics, not
//! training scale), starts the server on an ephemeral port, and hands the
//! `Arc<Marketplace>` to the engine so the re-pricer can publish through
//! the same directory the server routes against.

use crate::scenario::Scenario;
use crate::{AgentsError, Result};
use nimbus_core::GaussianMechanism;
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_market::{DemandCurve, ListingBuilder, MarketCurves, Marketplace, Seller, ValueCurve};
use nimbus_ml::LinearRegressionTrainer;
use nimbus_server::{NimbusServer, ServerConfig};
use std::sync::Arc;

/// Menu resolution of harness listings: small enough that a modest agent
/// population covers the grid with observations inside one re-price
/// window, large enough for the DP to have real choices.
const PRICE_POINTS: usize = 16;
/// Rows in the synthetic training set.
const DATASET_ROWS: usize = 400;
/// Stream label separating market seeds from agent seeds.
const MARKET_STREAM: u64 = 0x4D4B_5453;

/// A running marketplace + server pair for one scenario.
pub struct SimHarness {
    /// The marketplace the server routes against; the engine re-prices
    /// through it in-process.
    pub marketplace: Arc<Marketplace>,
    /// The live TCP server. Shut down (or drop) when the run ends.
    pub server: NimbusServer,
}

impl SimHarness {
    /// Builds and publishes the scenario's listings and starts the
    /// server on an ephemeral local port.
    pub fn start(scenario: &Scenario, seed: u64) -> Result<SimHarness> {
        scenario.validate()?;
        let mut builders = Vec::with_capacity(scenario.listings.len());
        for spec in &scenario.listings {
            let mut builder = listing_builder(
                &spec.name,
                nimbus_randkit::split_stream(seed, MARKET_STREAM ^ spec.seed_label),
            )?;
            if let Some(budget) = scenario.buyer_budget {
                builder = builder.buyer_budget(budget);
            }
            builders.push(builder);
        }
        let marketplace =
            Arc::new(Marketplace::open_listings(builders).map_err(AgentsError::Market)?);
        let default_listing = scenario.listings[0].name.clone();
        let config = ServerConfig {
            // Head-room over the engine's pipelining window: the engine
            // keeps at most `connections × MAX_IN_FLIGHT` frames
            // outstanding, and a queue-overflow shed closes the
            // connection, which would cost a reconnect mid-run.
            queue_capacity: 4096,
            ..ServerConfig::default()
        };
        let server =
            NimbusServer::start(marketplace.clone(), default_listing, "127.0.0.1:0", config)
                .map_err(AgentsError::Server)?;
        Ok(SimHarness {
            marketplace,
            server,
        })
    }
}

/// One published listing on a small synthetic regression dataset, square
/// metric (analytic error curve — fast and deterministic).
fn listing_builder(name: &str, market_seed: u64) -> Result<ListingBuilder> {
    let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, DATASET_ROWS)
        .materialize(market_seed)
        .map_err(|e| AgentsError::Config(format!("dataset for listing `{name}`: {e}")))?;
    let seller = Seller::new(
        name,
        tt,
        MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform),
    );
    Ok(ListingBuilder::new(name, seller)
        .trainer(LinearRegressionTrainer::ridge(1e-6))
        .mechanism(GaussianMechanism)
        .model_kind("linear_regression")
        .n_price_points(PRICE_POINTS)
        .error_curve_samples(PRICE_POINTS)
        .seed(market_seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_publishes_and_serves() {
        let scenario = Scenario::builtin("smoke").expect("catalog");
        let h = SimHarness::start(&scenario, 77).expect("harness starts");
        assert_eq!(h.marketplace.names(), vec!["alpha"]);
        let menu = h
            .marketplace
            .route("alpha")
            .and_then(|b| b.posted_menu())
            .expect("published menu");
        assert_eq!(menu.len(), PRICE_POINTS);
        let addr = h.server.local_addr();
        assert_ne!(addr.port(), 0);
        h.server.shutdown();
    }
}
