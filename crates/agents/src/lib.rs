//! # nimbus-agents — adaptive buyer-agent ecology
//!
//! A closed-loop market simulator for the Nimbus model marketplace. A
//! population of heterogeneous, adaptive [`agent::BuyerAgent`]s issues
//! real `MENU`/`QUOTE`/`COMMIT` traffic over TCP (pipelined wire v4)
//! against a live [`nimbus_server::NimbusServer`]; a
//! [`demand::DemandObserver`] aggregates their accepted/rejected quotes
//! into an empirical demand curve per listing; and a
//! [`reprice::Repricer`] periodically re-solves the Algorithm 1 revenue
//! DP against that *observed* demand and hot re-publishes the price
//! table through the marketplace's PUBLISH lifecycle — killing
//! outstanding quotes via the epoch mechanism, which the agents absorb
//! by retrying. The loop is the demonstration the paper's pricing engine
//! cannot give alone: prices chase demand that is itself reacting to
//! prices.
//!
//! Everything is deterministic by construction: the same
//! ([`scenario::Scenario`], seed) pair produces a bitwise-identical tick
//! journal (see [`engine`] for how pipelined I/O is kept out of the
//! deterministic state). Scenarios are plain data — a built-in catalog
//! plus a `key = value` text format — so experiments are configs, not
//! code.

pub mod agent;
pub mod demand;
pub mod engine;
pub mod harness;
pub mod metrics;
pub mod reprice;
pub mod scenario;

use nimbus_market::MarketError;
use nimbus_server::ServerError;
use std::fmt;

pub use agent::{BuyerAgent, BuyerType, Decision, Intent};
pub use demand::{DemandObserver, PointDemand};
pub use engine::{run_scenario, LedgerAck, SimOutcome};
pub use harness::SimHarness;
pub use metrics::{parse_log, render_log, summarize, RepriceDelta, TickRecord};
pub use reprice::{RepriceOutcome, Repricer};
pub use scenario::{AgentMix, ListingSpec, Scenario, SimEvent};

/// Everything that can go wrong in a simulation run.
#[derive(Debug)]
pub enum AgentsError {
    /// The marketplace refused an operation (open, route, re-publish).
    Market(MarketError),
    /// The serving stack failed (connect, transport, server start).
    Server(ServerError),
    /// A scenario or configuration was invalid.
    Config(String),
    /// The server answered with something the engine cannot reconcile.
    Protocol(String),
}

impl fmt::Display for AgentsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentsError::Market(e) => write!(f, "market: {e}"),
            AgentsError::Server(e) => write!(f, "server: {e}"),
            AgentsError::Config(why) => write!(f, "scenario config: {why}"),
            AgentsError::Protocol(why) => write!(f, "protocol: {why}"),
        }
    }
}

impl std::error::Error for AgentsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AgentsError::Market(e) => Some(e),
            AgentsError::Server(e) => Some(e),
            AgentsError::Config(_) | AgentsError::Protocol(_) => None,
        }
    }
}

impl From<MarketError> for AgentsError {
    fn from(e: MarketError) -> Self {
        AgentsError::Market(e)
    }
}

impl From<ServerError> for AgentsError {
    fn from(e: ServerError) -> Self {
        AgentsError::Server(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AgentsError>;
