//! The per-tick metrics journal and its reader.
//!
//! Every tick the engine appends one [`TickRecord`] — traffic counters,
//! revenue, surplus by buyer type, and any re-price deltas — and
//! [`render_log`] serializes the run as JSON Lines. The serializer is
//! hand-rolled (the workspace vendors no serde) with a fixed field order
//! and shortest-round-trip float formatting, so two runs with the same
//! `(scenario, seed)` produce **byte-identical** logs; the determinism
//! e2e compares the strings directly.
//!
//! [`parse_log`] reads the same format back for `nimbus sim report`, and
//! [`summarize`] folds a parsed run into the human-facing report text.

use crate::{AgentsError, Result};
use std::fmt::Write as _;

/// One listing's re-price within a tick.
#[derive(Debug, Clone, PartialEq)]
pub struct RepriceDelta {
    /// Listing that re-priced.
    pub listing: String,
    /// Top-of-menu price before.
    pub old_top: f64,
    /// Top-of-menu price after.
    pub new_top: f64,
}

/// One tick of the simulation, as journaled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickRecord {
    /// Tick number, starting at 0.
    pub tick: u64,
    /// Quotes the engine relayed to agents.
    pub quotes: u64,
    /// Quotes agents chose to commit.
    pub accepts: u64,
    /// Quotes agents declined.
    pub rejects: u64,
    /// Rejections forced by empty wallets (also counted in `rejects`).
    pub wallet_forced: u64,
    /// Commits ACKed by the server this tick.
    pub commits: u64,
    /// Commits killed by a re-price epoch bump (`QuoteExpired`).
    pub expired: u64,
    /// Commits rejected with `BUDGET_EXHAUSTED`: the buyer's per-listing
    /// noise budget ran dry. Never retried — exhaustion is durable.
    pub budget_rejects: u64,
    /// Revenue of this tick's ACKed commits.
    pub revenue: f64,
    /// Realized surplus of ACKed commits by buyer type
    /// `[budget, mainstream, premium]`.
    pub surplus: [f64; 3],
    /// Re-prices applied at the end of this tick.
    pub reprices: Vec<RepriceDelta>,
}

impl TickRecord {
    /// Acceptance rate of the tick's relayed quotes.
    pub fn acceptance_rate(&self) -> f64 {
        if self.quotes == 0 {
            0.0
        } else {
            self.accepts as f64 / self.quotes as f64
        }
    }

    /// Serializes the record as one JSON line, fixed field order.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"tick\":{},\"quotes\":{},\"accepts\":{},\"rejects\":{},\"wallet_forced\":{},\"commits\":{},\"expired\":{},\"budget_rejects\":{},\"revenue\":{},\"surplus\":[{},{},{}],\"reprices\":[",
            self.tick,
            self.quotes,
            self.accepts,
            self.rejects,
            self.wallet_forced,
            self.commits,
            self.expired,
            self.budget_rejects,
            json_f64(self.revenue),
            json_f64(self.surplus[0]),
            json_f64(self.surplus[1]),
            json_f64(self.surplus[2]),
        );
        for (i, r) in self.reprices.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"listing\":\"{}\",\"old_top\":{},\"new_top\":{}}}",
                escape(&r.listing),
                json_f64(r.old_top),
                json_f64(r.new_top),
            );
        }
        s.push_str("]}");
        s
    }
}

/// Serializes a run as JSON Lines (one record per line, trailing newline).
pub fn render_log(records: &[TickRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

/// Finite floats print shortest-round-trip; JSON has no NaN/∞, so
/// non-finite values (which the engine never produces) journal as 0.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` omits a fraction for integral floats; keep valid JSON
        // numbers self-describing as floats is unnecessary — "1" parses
        // fine — so pass through.
        s
    } else {
        "0".to_string()
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Parses a JSONL tick log produced by [`render_log`].
pub fn parse_log(text: &str) -> Result<Vec<TickRecord>> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(idx, line)| {
            parse_record(line.trim())
                .map_err(|why| AgentsError::Config(format!("log line {}: {why}", idx + 1)))
        })
        .collect()
}

fn parse_record(line: &str) -> std::result::Result<TickRecord, String> {
    let mut p = Cursor::new(line);
    let mut rec = TickRecord::default();
    p.expect('{')?;
    loop {
        let key = p.string()?;
        p.expect(':')?;
        match key.as_str() {
            "tick" => rec.tick = p.number()? as u64,
            "quotes" => rec.quotes = p.number()? as u64,
            "accepts" => rec.accepts = p.number()? as u64,
            "rejects" => rec.rejects = p.number()? as u64,
            "wallet_forced" => rec.wallet_forced = p.number()? as u64,
            "commits" => rec.commits = p.number()? as u64,
            "expired" => rec.expired = p.number()? as u64,
            "budget_rejects" => rec.budget_rejects = p.number()? as u64,
            "revenue" => rec.revenue = p.number()?,
            "surplus" => {
                p.expect('[')?;
                for slot in 0..3 {
                    if slot > 0 {
                        p.expect(',')?;
                    }
                    rec.surplus[slot] = p.number()?;
                }
                p.expect(']')?;
            }
            "reprices" => {
                p.expect('[')?;
                if p.peek() == Some(']') {
                    p.expect(']')?;
                } else {
                    loop {
                        rec.reprices.push(parse_reprice(&mut p)?);
                        if p.peek() == Some(',') {
                            p.expect(',')?;
                        } else {
                            break;
                        }
                    }
                    p.expect(']')?;
                }
            }
            other => return Err(format!("unknown field `{other}`")),
        }
        if p.peek() == Some(',') {
            p.expect(',')?;
        } else {
            break;
        }
    }
    p.expect('}')?;
    p.end()?;
    Ok(rec)
}

fn parse_reprice(p: &mut Cursor<'_>) -> std::result::Result<RepriceDelta, String> {
    let mut delta = RepriceDelta {
        listing: String::new(),
        old_top: 0.0,
        new_top: 0.0,
    };
    p.expect('{')?;
    loop {
        let key = p.string()?;
        p.expect(':')?;
        match key.as_str() {
            "listing" => delta.listing = p.string()?,
            "old_top" => delta.old_top = p.number()?,
            "new_top" => delta.new_top = p.number()?,
            other => return Err(format!("unknown re-price field `{other}`")),
        }
        if p.peek() == Some(',') {
            p.expect(',')?;
        } else {
            break;
        }
    }
    p.expect('}')?;
    Ok(delta)
}

/// A minimal scanner over one log line. Only the subset the serializer
/// emits is understood — objects, arrays, strings with `\"`/`\\`
/// escapes, and plain numbers.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Cursor<'a> {
        Cursor {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<char> {
        self.bytes.get(self.pos).map(|&b| b as char)
    }

    fn expect(&mut self, c: char) -> std::result::Result<(), String> {
        match self.peek() {
            Some(got) if got == c => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!("expected `{c}` at byte {}, got {got:?}", self.pos)),
        }
    }

    fn string(&mut self) -> std::result::Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("short \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let s =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty scalar")?;
                    let _ = b;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> std::result::Result<f64, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| e.to_string())
    }

    fn end(&self) -> std::result::Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.pos))
        }
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Folds a parsed run into the `nimbus sim report` text.
pub fn summarize(records: &[TickRecord]) -> String {
    let mut out = String::new();
    let ticks = records.len();
    let quotes: u64 = records.iter().map(|r| r.quotes).sum();
    let accepts: u64 = records.iter().map(|r| r.accepts).sum();
    let commits: u64 = records.iter().map(|r| r.commits).sum();
    let expired: u64 = records.iter().map(|r| r.expired).sum();
    let budget_rejects: u64 = records.iter().map(|r| r.budget_rejects).sum();
    let wallet_forced: u64 = records.iter().map(|r| r.wallet_forced).sum();
    let revenue: f64 = records.iter().map(|r| r.revenue).sum();
    let surplus: [f64; 3] = records.iter().fold([0.0; 3], |mut acc, r| {
        for (slot, s) in r.surplus.iter().enumerate() {
            acc[slot] += s;
        }
        acc
    });
    let rate = if quotes == 0 {
        0.0
    } else {
        accepts as f64 / quotes as f64
    };
    let _ = writeln!(out, "ticks            {ticks}");
    let _ = writeln!(out, "quotes           {quotes}");
    let _ = writeln!(out, "acceptance rate  {rate:.3}");
    let _ = writeln!(out, "commits          {commits}");
    let _ = writeln!(out, "quote-expired    {expired}");
    let _ = writeln!(out, "budget-rejected  {budget_rejects}");
    let _ = writeln!(out, "wallet-forced    {wallet_forced}");
    let _ = writeln!(out, "revenue          {revenue:.4}");
    let _ = writeln!(
        out,
        "surplus          budget {:.4} | mainstream {:.4} | premium {:.4}",
        surplus[0], surplus[1], surplus[2]
    );
    let reprices: Vec<(&u64, &RepriceDelta)> = records
        .iter()
        .flat_map(|r| r.reprices.iter().map(move |d| (&r.tick, d)))
        .collect();
    let _ = writeln!(out, "re-prices        {}", reprices.len());
    for (tick, d) in reprices {
        let _ = writeln!(
            out,
            "  tick {:>4}  {}  top {:.4} -> {:.4}",
            tick, d.listing, d.old_top, d.new_top
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TickRecord {
        TickRecord {
            tick: 3,
            quotes: 100,
            accepts: 60,
            rejects: 40,
            wallet_forced: 5,
            commits: 58,
            expired: 2,
            budget_rejects: 3,
            revenue: 123.456789,
            surplus: [1.25, -0.5, 7.0],
            reprices: vec![RepriceDelta {
                listing: "alpha".to_string(),
                old_top: 2.5,
                new_top: 3.125,
            }],
        }
    }

    #[test]
    fn json_round_trips_bitwise() {
        let rec = sample();
        let line = rec.to_json_line();
        let back = parse_record(&line).expect("parses");
        assert_eq!(back, rec);
        // Bitwise stability: serialize → parse → serialize is identity.
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn render_and_parse_full_log() {
        let records = vec![sample(), TickRecord::default()];
        let log = render_log(&records);
        assert_eq!(log.lines().count(), 2);
        let back = parse_log(&log).expect("parses");
        assert_eq!(back, records);
    }

    #[test]
    fn listing_names_are_escaped() {
        let mut rec = sample();
        rec.reprices[0].listing = "we\"ird\\name".to_string();
        let back = parse_record(&rec.to_json_line()).expect("parses");
        assert_eq!(back.reprices[0].listing, "we\"ird\\name");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_log("{\"tick\":1").is_err());
        assert!(parse_log("{\"nope\":1}").is_err());
        assert!(parse_log("{\"tick\":1}x").is_err());
    }

    #[test]
    fn summary_aggregates() {
        let report = summarize(&[sample(), sample()]);
        assert!(report.contains("ticks            2"));
        assert!(report.contains("quotes           200"));
        assert!(report.contains("commits          116"));
        assert!(report.contains("budget-rejected  6"));
        assert!(report.contains("re-prices        2"));
        assert!(report.contains("alpha"));
    }
}
