//! Demand-fed re-pricing: the actuator half of the closed loop.
//!
//! The [`Repricer`] turns a [`crate::demand::DemandObserver`] window into
//! a [`RevenueProblem`] and hot re-publishes the listing through
//! [`Marketplace::republish_pricing`] — the Algorithm 1 DP re-optimizes
//! the posted table against demand the market *actually expressed*, not
//! the seller's offline market research. Published epochs bump exactly as
//! under an admin re-PUBLISH, so outstanding quotes die with
//! `QuoteExpired` and agents absorb the kill by retrying.
//!
//! The empirical problem for a menu of points `(x_i, p_i)` with windowed
//! counts `(offered_i, accepted_i)`:
//!
//! * demand mass `b_i = offered_i` — how much buyer interest the point
//!   actually drew;
//! * valuation `v_i` brackets the buyers' revealed willingness to pay
//!   around the posted price: an acceptance rate of `r_i` estimates
//!   `v_i = p_i · (lo + (hi − lo) · r_i)` — everyone accepting means the
//!   point was underpriced (`v > p`), everyone balking overpriced
//!   (`v < p`); unobserved points keep `v_i = p_i` (no evidence either
//!   way);
//! * the §5.3 monotonicity assumption (buyers value accuracy) is then
//!   *repaired* rather than assumed: the raw `v_i` estimates pass through
//!   a PAVA isotonic regression weighted by observation counts, so a
//!   noisy window cannot produce an invalid problem.

use crate::demand::PointDemand;
use crate::{AgentsError, Result};
use nimbus_core::isotonic::isotonic_increasing;
use nimbus_market::Marketplace;
use nimbus_optim::RevenueProblem;

/// One completed re-price of one listing.
#[derive(Debug, Clone, PartialEq)]
pub struct RepriceOutcome {
    /// The listing that re-priced.
    pub listing: String,
    /// Top-of-menu price before.
    pub old_top: f64,
    /// Top-of-menu price after.
    pub new_top: f64,
    /// Expected revenue of the new table under the observed demand.
    pub expected_revenue: f64,
}

/// Re-pricing policy: when to trust a window and how wide the revealed
/// willingness-to-pay bracket is.
#[derive(Debug, Clone, Copy)]
pub struct Repricer {
    /// Minimum offered quotes in the window before re-pricing.
    pub min_observations: u64,
    /// Valuation multiple at a 0% acceptance rate (`< 1`).
    pub accept_lo: f64,
    /// Valuation multiple at a 100% acceptance rate (`> 1`).
    pub accept_hi: f64,
}

impl Default for Repricer {
    fn default() -> Self {
        Repricer {
            min_observations: 50,
            accept_lo: 0.6,
            accept_hi: 1.4,
        }
    }
}

impl Repricer {
    /// Builds the empirical revenue problem for one listing from its
    /// posted menu and windowed counts. Returns `None` when the window is
    /// too thin to act on.
    pub fn build_problem(
        &self,
        menu: &[(f64, f64)],
        window: &[PointDemand],
    ) -> Option<RevenueProblem> {
        if menu.is_empty() || menu.len() != window.len() {
            return None;
        }
        let total: u64 = window.iter().map(|p| p.offered).sum();
        if total < self.min_observations {
            return None;
        }
        let a: Vec<f64> = menu.iter().map(|&(x, _)| x).collect();
        let b: Vec<f64> = window.iter().map(|p| p.offered as f64).collect();
        let raw_v: Vec<f64> = menu
            .iter()
            .zip(window)
            .map(|(&(_, price), obs)| {
                if obs.offered == 0 {
                    price
                } else {
                    let rate = obs.acceptance_rate();
                    price * (self.accept_lo + (self.accept_hi - self.accept_lo) * rate)
                }
            })
            .collect();
        // Observation-weighted monotone repair; unobserved points get a
        // token weight so they bend to their neighbours' evidence.
        let weights: Vec<f64> = window.iter().map(|p| (p.offered as f64).max(1.0)).collect();
        let v = isotonic_increasing(&raw_v, &weights);
        RevenueProblem::from_slices(&a, &b, &v).ok()
    }

    /// Re-prices one listing from its observed window. Returns
    /// `Ok(None)` when the window is too thin, `Ok(Some(outcome))` after
    /// a successful hot re-publish.
    pub fn reprice(
        &self,
        marketplace: &Marketplace,
        listing: &str,
        menu: &[(f64, f64)],
        window: &[PointDemand],
    ) -> Result<Option<RepriceOutcome>> {
        let Some(problem) = self.build_problem(menu, window) else {
            return Ok(None);
        };
        let old_top = menu.last().map(|&(_, p)| p).unwrap_or(0.0);
        let expected_revenue = marketplace
            .republish_pricing(listing, problem)
            .map_err(AgentsError::Market)?;
        let new_top = marketplace
            .route(listing)
            .and_then(|broker| broker.posted_menu())
            .map_err(AgentsError::Market)?
            .last()
            .map(|&(_, p)| p)
            .unwrap_or(0.0);
        Ok(Some(RepriceOutcome {
            listing: listing.to_string(),
            old_top,
            new_top,
            expected_revenue,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(counts: &[(u64, u64)]) -> Vec<PointDemand> {
        counts
            .iter()
            .map(|&(offered, accepted)| PointDemand { offered, accepted })
            .collect()
    }

    #[test]
    fn thin_windows_are_refused() {
        let r = Repricer {
            min_observations: 10,
            ..Repricer::default()
        };
        let menu = [(1.0, 1.0), (2.0, 2.0)];
        assert!(r.build_problem(&menu, &window(&[(4, 2), (5, 1)])).is_none());
        assert!(r.build_problem(&menu, &window(&[(10, 2)])).is_none());
        assert!(r.build_problem(&[], &[]).is_none());
    }

    #[test]
    fn universal_acceptance_raises_valuations_above_price() {
        let r = Repricer {
            min_observations: 1,
            ..Repricer::default()
        };
        let menu = [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)];
        let problem = r
            .build_problem(&menu, &window(&[(10, 10), (10, 10), (10, 10)]))
            .expect("thick window");
        let v = problem.valuations();
        for (i, &(_, p)) in menu.iter().enumerate() {
            assert!(v[i] > p, "v[{i}]={} should exceed price {p}", v[i]);
        }
    }

    #[test]
    fn universal_rejection_drops_valuations_below_price() {
        let r = Repricer {
            min_observations: 1,
            ..Repricer::default()
        };
        let menu = [(1.0, 2.0), (2.0, 4.0)];
        let problem = r
            .build_problem(&menu, &window(&[(10, 0), (10, 0)]))
            .expect("thick window");
        let v = problem.valuations();
        assert!(v[0] < 2.0 && v[1] < 4.0);
    }

    #[test]
    fn noisy_windows_still_produce_monotone_valuations() {
        let r = Repricer {
            min_observations: 1,
            ..Repricer::default()
        };
        // Middle point rejected hard: raw v dips, isotonic must repair.
        let menu = [(1.0, 2.0), (2.0, 4.0), (3.0, 4.5)];
        let problem = r
            .build_problem(&menu, &window(&[(10, 10), (10, 0), (10, 10)]))
            .expect("valid problem despite the dip");
        let v = problem.valuations();
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}
