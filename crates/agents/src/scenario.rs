//! Data-driven simulation scenarios.
//!
//! A [`Scenario`] is a plain-data description of one closed-loop run: the
//! listings to stand up, the buyer population (size, type mix, budgets),
//! the tick horizon, the re-pricing cadence, and a script of mid-run
//! [`SimEvent`]s. Everything downstream — agents, demand observation,
//! re-pricing — is a pure function of `(scenario, seed)`, so a scenario is
//! the complete experimental protocol for a run.
//!
//! Scenarios come from two places: the built-in catalog
//! ([`Scenario::builtin`], what `nimbus sim run --scenario <name>` and CI
//! use) and a small `key = value` text format ([`Scenario::parse`]) for
//! ad-hoc experiments without recompiling.

use crate::{AgentsError, Result};

/// One listing the harness stands up for the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ListingSpec {
    /// Listing name agents route by.
    pub name: String,
    /// Per-listing label mixed into the market seed stream, so two
    /// listings in one scenario train on different draws.
    pub seed_label: u64,
}

/// Population fractions by buyer type; normalized at use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentMix {
    /// Price-sensitive, low-valuation buyers.
    pub budget: f64,
    /// Mid-valuation buyers.
    pub mainstream: f64,
    /// Accuracy-hungry, high-valuation buyers.
    pub premium: f64,
}

impl AgentMix {
    /// The default population: a broad middle with thinner tails.
    pub const DEFAULT: AgentMix = AgentMix {
        budget: 0.3,
        mainstream: 0.5,
        premium: 0.2,
    };
}

/// A scripted mid-run perturbation, applied between ticks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// Multiply every agent's willingness-to-pay scale by `factor` at the
    /// start of tick `tick` (a demand shock; `factor > 1` is a boom).
    DemandShock {
        /// Tick the shock lands on.
        tick: u64,
        /// Multiplier on every agent's valuation scale.
        factor: f64,
    },
    /// Replace a deterministic `fraction` of the population with fresh
    /// agents (new learning state, new RNG streams) at tick `tick`.
    Churn {
        /// Tick the churn lands on.
        tick: u64,
        /// Fraction of agents replaced, in `[0, 1]`.
        fraction: f64,
    },
    /// Multiply every agent's per-tick income by `factor` at tick `tick`
    /// (`factor = 0` starts a budget-exhaustion regime).
    IncomeSqueeze {
        /// Tick the squeeze lands on.
        tick: u64,
        /// Multiplier on per-tick income.
        factor: f64,
    },
}

impl SimEvent {
    /// The tick the event fires on.
    pub fn tick(&self) -> u64 {
        match *self {
            SimEvent::DemandShock { tick, .. }
            | SimEvent::Churn { tick, .. }
            | SimEvent::IncomeSqueeze { tick, .. } => tick,
        }
    }
}

/// The complete protocol for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (echoed into reports).
    pub name: String,
    /// Listings the harness publishes before the run.
    pub listings: Vec<ListingSpec>,
    /// Population size.
    pub agents: usize,
    /// Number of discrete ticks to run.
    pub ticks: u64,
    /// Re-price cadence: the [`crate::reprice::Repricer`] fires every
    /// this many ticks (`0` disables re-pricing).
    pub reprice_every: u64,
    /// Minimum observed quotes per listing in the current window before
    /// the re-pricer trusts the empirical curve.
    pub min_observations: u64,
    /// Buyer-type population mix.
    pub mix: AgentMix,
    /// Starting wallet balance per agent, in scale-free units: one unit
    /// is a tenth of the mean anchor (top-of-menu) price at run start,
    /// so scenarios behave identically whatever absolute price level
    /// the listings publish at.
    pub starting_wallet: f64,
    /// Per-tick income per agent, in the same scale-free units.
    pub income_per_tick: f64,
    /// Distinct buyer identities the population commits under: agent `i`
    /// buys as buyer `(i mod buyers) + 1`, so `buyers < agents` makes
    /// agents share (collude on) identities. `0` disables identities —
    /// commits go out anonymous and per-buyer budgets never bind.
    pub buyers: usize,
    /// Per-buyer noise-precision budget (`Σ x` cap) each listing is
    /// published with. In absolute inverse-NCP units — the harness menus
    /// span the default `[1, 100]` support. `None` leaves listings
    /// unmetered.
    pub buyer_budget: Option<f64>,
    /// TCP connections the engine multiplexes agents over.
    pub connections: usize,
    /// Scripted perturbations, applied between ticks.
    pub events: Vec<SimEvent>,
}

impl Scenario {
    /// Names of the built-in scenarios, in catalog order.
    pub const BUILTIN_NAMES: &'static [&'static str] = &[
        "baseline",
        "shock",
        "churn",
        "price-war",
        "exhaustion",
        "budget-exhaustion",
        "colluding-buyers",
        "smoke",
    ];

    fn base(name: &str) -> Scenario {
        Scenario {
            name: name.to_string(),
            listings: vec![ListingSpec {
                name: "alpha".to_string(),
                seed_label: 1,
            }],
            agents: 120,
            ticks: 120,
            reprice_every: 30,
            min_observations: 50,
            mix: AgentMix::DEFAULT,
            // Income high enough that valuations, not wallets, gate
            // acceptance in the default regime: a mainstream agent can
            // afford roughly one mid-menu purchase per tick. Exhaustion
            // scenarios override this downward to make wallets bind.
            starting_wallet: 40.0,
            income_per_tick: 7.0,
            buyers: 0,
            buyer_budget: None,
            connections: 8,
            events: Vec::new(),
        }
    }

    /// Looks up a built-in scenario by name.
    pub fn builtin(name: &str) -> Option<Scenario> {
        let mut s = match name {
            "baseline" => Scenario::base("baseline"),
            "shock" => {
                let mut s = Scenario::base("shock");
                s.ticks = 240;
                s.agents = 160;
                s.reprice_every = 40;
                s.events = vec![SimEvent::DemandShock {
                    tick: 120,
                    factor: 1.6,
                }];
                s
            }
            "churn" => {
                let mut s = Scenario::base("churn");
                s.ticks = 180;
                s.events = vec![SimEvent::Churn {
                    tick: 90,
                    fraction: 0.5,
                }];
                s
            }
            "price-war" => {
                let mut s = Scenario::base("price-war");
                s.listings = vec![
                    ListingSpec {
                        name: "alpha".to_string(),
                        seed_label: 1,
                    },
                    ListingSpec {
                        name: "beta".to_string(),
                        seed_label: 2,
                    },
                ];
                s.agents = 160;
                s.ticks = 200;
                s.reprice_every = 25;
                s
            }
            "exhaustion" => {
                let mut s = Scenario::base("exhaustion");
                s.ticks = 160;
                s.starting_wallet = 25.0;
                s.income_per_tick = 1.0;
                s.events = vec![SimEvent::IncomeSqueeze {
                    tick: 80,
                    factor: 0.0,
                }];
                s
            }
            "budget-exhaustion" => {
                // Every agent is its own metered buyer: wallets are
                // generous (valuations gate acceptance) but the noise
                // budget runs dry mid-run, so the back half of the run
                // exercises the typed `BUDGET_EXHAUSTED` reject path
                // while reads keep flowing.
                let mut s = Scenario::base("budget-exhaustion");
                s.agents = 80;
                s.ticks = 100;
                s.reprice_every = 0;
                s.buyers = 80;
                s.buyer_budget = Some(150.0);
                s
            }
            "colluding-buyers" => {
                // Ten agents per buyer identity burn a shared budget: a
                // collusion ring cannot out-buy one honest buyer because
                // the ledger meters the identity, not the connection.
                let mut s = Scenario::base("colluding-buyers");
                s.agents = 80;
                s.ticks = 100;
                s.reprice_every = 0;
                s.buyers = 8;
                s.buyer_budget = Some(400.0);
                s
            }
            "smoke" => {
                let mut s = Scenario::base("smoke");
                s.agents = 40;
                s.ticks = 40;
                s.reprice_every = 12;
                s.min_observations = 25;
                s.connections = 4;
                s.events = vec![SimEvent::DemandShock {
                    tick: 20,
                    factor: 1.5,
                }];
                s
            }
            _ => return None,
        };
        s.events.sort_by_key(SimEvent::tick);
        Some(s)
    }

    /// Parses the `key = value` scenario format. Unknown keys are errors
    /// (a typo should not silently run the default). Supported keys:
    ///
    /// ```text
    /// name = my-run
    /// listings = alpha, beta        # one listing per comma-separated name
    /// agents = 200                  ticks = 300
    /// reprice_every = 50            min_observations = 50
    /// mix = 0.3, 0.5, 0.2           # budget, mainstream, premium
    /// wallet = 40                   income = 2
    /// buyers = 80                   buyer_budget = 150
    /// connections = 8
    /// event = shock tick=120 factor=1.6
    /// event = churn tick=90 fraction=0.5
    /// event = squeeze tick=80 factor=0
    /// ```
    ///
    /// Blank lines and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<Scenario> {
        let mut s = Scenario::base("custom");
        let bad = |line: usize, why: String| AgentsError::Config(format!("line {line}: {why}"));
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(cut) => &raw[..cut],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(lineno, format!("expected `key = value`, got `{line}`")))?;
            let (key, value) = (key.trim(), value.trim());
            let num = |v: &str| -> Result<f64> {
                v.parse::<f64>()
                    .map_err(|_| bad(lineno, format!("`{key}` needs a number, got `{v}`")))
            };
            let int = |v: &str| -> Result<u64> {
                v.parse::<u64>()
                    .map_err(|_| bad(lineno, format!("`{key}` needs an integer, got `{v}`")))
            };
            match key {
                "name" => s.name = value.to_string(),
                "listings" => {
                    s.listings = value
                        .split(',')
                        .map(str::trim)
                        .filter(|n| !n.is_empty())
                        .enumerate()
                        .map(|(i, n)| ListingSpec {
                            name: n.to_string(),
                            seed_label: i as u64 + 1,
                        })
                        .collect();
                }
                "agents" => s.agents = int(value)? as usize,
                "ticks" => s.ticks = int(value)?,
                "reprice_every" => s.reprice_every = int(value)?,
                "min_observations" => s.min_observations = int(value)?,
                "wallet" => s.starting_wallet = num(value)?,
                "income" => s.income_per_tick = num(value)?,
                "buyers" => s.buyers = int(value)? as usize,
                "buyer_budget" => s.buyer_budget = Some(num(value)?),
                "connections" => s.connections = int(value)? as usize,
                "mix" => {
                    let parts: Vec<f64> = value
                        .split(',')
                        .map(|p| num(p.trim()))
                        .collect::<Result<_>>()?;
                    if parts.len() != 3 {
                        return Err(bad(
                            lineno,
                            "`mix` needs three fractions: budget, mainstream, premium".to_string(),
                        ));
                    }
                    s.mix = AgentMix {
                        budget: parts[0],
                        mainstream: parts[1],
                        premium: parts[2],
                    };
                }
                "event" => s.events.push(parse_event(value, lineno)?),
                other => {
                    return Err(bad(lineno, format!("unknown key `{other}`")));
                }
            }
        }
        s.events.sort_by_key(SimEvent::tick);
        s.validate()?;
        Ok(s)
    }

    /// Structural sanity checks shared by the parser and the engine.
    pub fn validate(&self) -> Result<()> {
        let err = |why: &str| Err(AgentsError::Config(why.to_string()));
        if self.listings.is_empty() {
            return err("a scenario needs at least one listing");
        }
        if self.agents == 0 {
            return err("a scenario needs at least one agent");
        }
        if self.ticks == 0 {
            return err("a scenario needs at least one tick");
        }
        if self.connections == 0 {
            return err("a scenario needs at least one connection");
        }
        let mass = self.mix.budget + self.mix.mainstream + self.mix.premium;
        if !(mass.is_finite() && mass > 0.0) {
            return err("the agent mix must have positive total mass");
        }
        if !(self.starting_wallet.is_finite() && self.starting_wallet >= 0.0) {
            return err("starting wallet must be finite and non-negative");
        }
        if !(self.income_per_tick.is_finite() && self.income_per_tick >= 0.0) {
            return err("income must be finite and non-negative");
        }
        if let Some(budget) = self.buyer_budget {
            if !(budget.is_finite() && budget > 0.0) {
                return err("buyer_budget must be finite and positive");
            }
            if self.buyers == 0 {
                return err("buyer_budget needs buyer identities: set `buyers` > 0");
            }
        }
        Ok(())
    }
}

fn parse_event(value: &str, lineno: usize) -> Result<SimEvent> {
    let bad = |why: String| AgentsError::Config(format!("line {lineno}: {why}"));
    let mut parts = value.split_whitespace();
    let kind = parts
        .next()
        .ok_or_else(|| bad("empty `event`".to_string()))?;
    let mut tick: Option<u64> = None;
    let mut factor: Option<f64> = None;
    let mut fraction: Option<f64> = None;
    for part in parts {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| bad(format!("event field `{part}` is not `key=value`")))?;
        match k {
            "tick" => {
                tick = Some(
                    v.parse()
                        .map_err(|_| bad(format!("bad event tick `{v}`")))?,
                )
            }
            "factor" => {
                factor = Some(
                    v.parse()
                        .map_err(|_| bad(format!("bad event factor `{v}`")))?,
                )
            }
            "fraction" => {
                fraction = Some(
                    v.parse()
                        .map_err(|_| bad(format!("bad event fraction `{v}`")))?,
                )
            }
            other => return Err(bad(format!("unknown event field `{other}`"))),
        }
    }
    let tick = tick.ok_or_else(|| bad("event needs `tick=N`".to_string()))?;
    match kind {
        "shock" => Ok(SimEvent::DemandShock {
            tick,
            factor: factor.ok_or_else(|| bad("shock needs `factor=F`".to_string()))?,
        }),
        "churn" => Ok(SimEvent::Churn {
            tick,
            fraction: fraction.ok_or_else(|| bad("churn needs `fraction=F`".to_string()))?,
        }),
        "squeeze" => Ok(SimEvent::IncomeSqueeze {
            tick,
            factor: factor.ok_or_else(|| bad("squeeze needs `factor=F`".to_string()))?,
        }),
        other => Err(bad(format!("unknown event kind `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_validates() {
        for name in Scenario::BUILTIN_NAMES {
            let s = Scenario::builtin(name).expect("catalog name resolves");
            s.validate().expect("builtin scenario validates");
            assert_eq!(&s.name, name);
        }
        assert!(Scenario::builtin("nope").is_none());
    }

    #[test]
    fn parse_round_trips_the_documented_keys() {
        let s = Scenario::parse(
            "# a comment\n\
             name = war\n\
             listings = alpha, beta\n\
             agents = 50\n\
             ticks = 60\n\
             reprice_every = 20\n\
             min_observations = 10\n\
             mix = 0.2, 0.5, 0.3\n\
             wallet = 30\n\
             income = 1.5\n\
             buyers = 25\n\
             buyer_budget = 120\n\
             connections = 4\n\
             event = shock tick=30 factor=1.4\n\
             event = churn tick=10 fraction=0.25\n",
        )
        .expect("parses");
        assert_eq!(s.name, "war");
        assert_eq!(s.listings.len(), 2);
        assert_eq!(s.listings[1].name, "beta");
        assert_eq!(s.agents, 50);
        assert_eq!(s.ticks, 60);
        assert_eq!(s.buyers, 25);
        assert_eq!(s.buyer_budget, Some(120.0));
        // Events are sorted by tick regardless of file order.
        assert_eq!(
            s.events,
            vec![
                SimEvent::Churn {
                    tick: 10,
                    fraction: 0.25
                },
                SimEvent::DemandShock {
                    tick: 30,
                    factor: 1.4
                },
            ]
        );
    }

    #[test]
    fn parse_rejects_typos_and_bad_shapes() {
        assert!(Scenario::parse("agents 50").is_err());
        assert!(Scenario::parse("agnets = 50").is_err());
        assert!(Scenario::parse("mix = 0.5, 0.5").is_err());
        assert!(Scenario::parse("event = shock factor=2").is_err());
        assert!(Scenario::parse("event = quake tick=3").is_err());
        assert!(Scenario::parse("agents = 0").is_err());
        assert!(Scenario::parse("listings = ").is_err());
        // A budget without identities can never bind — reject the typo.
        assert!(Scenario::parse("buyer_budget = 100").is_err());
        assert!(Scenario::parse("buyers = 4\nbuyer_budget = 0").is_err());
        assert!(Scenario::parse("buyers = 4\nbuyer_budget = 100").is_ok());
    }
}
