//! End-to-end closed-loop simulation: 2 listings, 200 adaptive agents,
//! 300 ticks of live wire-v4 traffic with demand-fed re-pricing.
//!
//! Three independent properties of one scenario family:
//!
//! 1. **Determinism** — the same `(scenario, seed)` produces a
//!    bitwise-identical tick journal on a completely fresh harness
//!    (fresh marketplace, fresh server, fresh port, fresh connections).
//! 2. **Reconciliation** — the server-side ledger and the buyer-side
//!    ACK stream agree exactly: same transaction-id sets, bitwise-equal
//!    price multisets, across every re-price cycle.
//! 3. **Demand response** — a mid-run demand shock moves the optimized
//!    top-of-menu price in the expected direction (up, for a boom).

#![allow(clippy::unwrap_used, clippy::panic)]

use nimbus_agents::engine::run_scenario;
use nimbus_agents::harness::SimHarness;
use nimbus_agents::scenario::{ListingSpec, Scenario, SimEvent};
use nimbus_agents::SimOutcome;
use nimbus_market::clock::null_clock;

/// 2 listings × 200 agents × 300 ticks, re-pricing every 40 ticks with a
/// demand boom landing mid-run — ≥3 full re-price cycles on either side.
fn war_scenario() -> Scenario {
    let mut s = Scenario::builtin("price-war").expect("catalog");
    s.listings = vec![
        ListingSpec {
            name: "alpha".to_string(),
            seed_label: 1,
        },
        ListingSpec {
            name: "beta".to_string(),
            seed_label: 2,
        },
    ];
    s.agents = 200;
    s.ticks = 300;
    s.reprice_every = 40;
    s.min_observations = 50;
    s.events = vec![SimEvent::DemandShock {
        tick: 150,
        factor: 1.6,
    }];
    s
}

fn run(scenario: &Scenario, seed: u64) -> (SimOutcome, SimHarness) {
    let h = SimHarness::start(scenario, seed).expect("harness starts");
    let outcome = run_scenario(
        scenario,
        seed,
        h.server.local_addr(),
        &h.marketplace,
        &null_clock(),
    )
    .expect("run completes");
    (outcome, h)
}

#[test]
fn same_seed_reruns_are_bitwise_identical() {
    let scenario = war_scenario();
    let (first, h1) = run(&scenario, 7);
    h1.server.shutdown();
    let (second, h2) = run(&scenario, 7);
    h2.server.shutdown();
    assert!(!first.log.is_empty());
    assert_eq!(
        first.log, second.log,
        "same (scenario, seed) must journal identically"
    );
    // And a different seed actually changes the run (the log is not a
    // constant).
    let (other, h3) = run(&scenario, 8);
    h3.server.shutdown();
    assert_ne!(first.log, other.log);
}

#[test]
fn ledger_reconciles_exactly_with_agent_acks() {
    let scenario = war_scenario();
    let (outcome, h) = run(&scenario, 11);

    // The run exercised the full loop: sales happened, the re-pricer
    // fired at least 3 times, and re-pricing killed in-flight quotes.
    assert!(outcome.acked_commits() > 0, "no sales at all");
    assert!(
        outcome.reprice_count >= 3,
        "need ≥3 re-price cycles, got {}",
        outcome.reprice_count
    );
    let expired: u64 = outcome.records.iter().map(|r| r.expired).sum();
    assert!(expired > 0, "epoch-kill path never exercised");

    for (li, name) in outcome.listings.iter().enumerate() {
        let broker = h.marketplace.route(name).expect("listing routes");
        let ledger = broker.ledger();
        let transactions = ledger.transactions();
        assert_eq!(
            transactions.len(),
            outcome.acked[li].len(),
            "listing `{name}`: ledger row count != buyer ACK count"
        );
        // Same transaction ids, bitwise-same prices. Sort both sides by
        // sequence: ledger assignment order races across server workers,
        // but the (sequence, price) pairing is exact.
        let mut ledger_side: Vec<(u64, u64)> = transactions
            .iter()
            .map(|t| (t.sequence, t.price.to_bits()))
            .collect();
        let mut acked_side: Vec<(u64, u64)> = outcome.acked[li]
            .iter()
            .map(|a| (a.transaction, a.price.to_bits()))
            .collect();
        ledger_side.sort_unstable();
        acked_side.sort_unstable();
        assert_eq!(
            ledger_side, acked_side,
            "listing `{name}`: ledger and ACK stream disagree"
        );
    }
    h.server.shutdown();
}

#[test]
fn demand_shock_moves_prices_up() {
    let scenario = war_scenario();
    let (outcome, h) = run(&scenario, 13);
    h.server.shutdown();

    let shock_tick = 150;
    // Compare each listing's last re-priced top before the shock with
    // its last re-priced top after: a 1.6× valuation boom must raise the
    // revenue-optimal posted prices.
    for (li, name) in outcome.listings.iter().enumerate() {
        let mut before: Option<f64> = None;
        let mut after: Option<f64> = None;
        for r in &outcome.records {
            for d in &r.reprices {
                if d.listing == *name {
                    if r.tick < shock_tick {
                        before = Some(d.new_top);
                    } else {
                        after = Some(d.new_top);
                    }
                }
            }
        }
        let before = before.unwrap_or_else(|| panic!("listing `{name}` never re-priced pre-shock"));
        let after = after.unwrap_or_else(|| panic!("listing `{name}` never re-priced post-shock"));
        assert!(
            after > before,
            "listing `{name}` ({li}): post-shock top {after} should exceed pre-shock top {before}"
        );
    }
}
