//! End-to-end closed-loop simulation: 2 listings, 200 adaptive agents,
//! 300 ticks of live wire-v4 traffic with demand-fed re-pricing.
//!
//! Three independent properties of one scenario family:
//!
//! 1. **Determinism** — the same `(scenario, seed)` produces a
//!    bitwise-identical tick journal on a completely fresh harness
//!    (fresh marketplace, fresh server, fresh port, fresh connections).
//! 2. **Reconciliation** — the server-side ledger and the buyer-side
//!    ACK stream agree exactly: same transaction-id sets, bitwise-equal
//!    price multisets, across every re-price cycle.
//! 3. **Demand response** — a mid-run demand shock moves the optimized
//!    top-of-menu price in the expected direction (up, for a boom).

#![allow(clippy::unwrap_used, clippy::panic)]

use nimbus_agents::engine::run_scenario;
use nimbus_agents::harness::SimHarness;
use nimbus_agents::scenario::{ListingSpec, Scenario, SimEvent};
use nimbus_agents::SimOutcome;
use nimbus_market::clock::null_clock;

/// 2 listings × 200 agents × 300 ticks, re-pricing every 40 ticks with a
/// demand boom landing mid-run — ≥3 full re-price cycles on either side.
fn war_scenario() -> Scenario {
    let mut s = Scenario::builtin("price-war").expect("catalog");
    s.listings = vec![
        ListingSpec {
            name: "alpha".to_string(),
            seed_label: 1,
        },
        ListingSpec {
            name: "beta".to_string(),
            seed_label: 2,
        },
    ];
    s.agents = 200;
    s.ticks = 300;
    s.reprice_every = 40;
    s.min_observations = 50;
    s.events = vec![SimEvent::DemandShock {
        tick: 150,
        factor: 1.6,
    }];
    s
}

fn run(scenario: &Scenario, seed: u64) -> (SimOutcome, SimHarness) {
    let h = SimHarness::start(scenario, seed).expect("harness starts");
    let outcome = run_scenario(
        scenario,
        seed,
        h.server.local_addr(),
        &h.marketplace,
        &null_clock(),
    )
    .expect("run completes");
    (outcome, h)
}

#[test]
fn same_seed_reruns_are_bitwise_identical() {
    let scenario = war_scenario();
    let (first, h1) = run(&scenario, 7);
    h1.server.shutdown();
    let (second, h2) = run(&scenario, 7);
    h2.server.shutdown();
    assert!(!first.log.is_empty());
    assert_eq!(
        first.log, second.log,
        "same (scenario, seed) must journal identically"
    );
    // And a different seed actually changes the run (the log is not a
    // constant).
    let (other, h3) = run(&scenario, 8);
    h3.server.shutdown();
    assert_ne!(first.log, other.log);
}

#[test]
fn ledger_reconciles_exactly_with_agent_acks() {
    let scenario = war_scenario();
    let (outcome, h) = run(&scenario, 11);

    // The run exercised the full loop: sales happened, the re-pricer
    // fired at least 3 times, and re-pricing killed in-flight quotes.
    assert!(outcome.acked_commits() > 0, "no sales at all");
    assert!(
        outcome.reprice_count >= 3,
        "need ≥3 re-price cycles, got {}",
        outcome.reprice_count
    );
    let expired: u64 = outcome.records.iter().map(|r| r.expired).sum();
    assert!(expired > 0, "epoch-kill path never exercised");

    for (li, name) in outcome.listings.iter().enumerate() {
        let broker = h.marketplace.route(name).expect("listing routes");
        let ledger = broker.ledger();
        let transactions = ledger.transactions();
        assert_eq!(
            transactions.len(),
            outcome.acked[li].len(),
            "listing `{name}`: ledger row count != buyer ACK count"
        );
        // Same transaction ids, bitwise-same prices. Sort both sides by
        // sequence: ledger assignment order races across server workers,
        // but the (sequence, price) pairing is exact.
        let mut ledger_side: Vec<(u64, u64)> = transactions
            .iter()
            .map(|t| (t.sequence, t.price.to_bits()))
            .collect();
        let mut acked_side: Vec<(u64, u64)> = outcome.acked[li]
            .iter()
            .map(|a| (a.transaction, a.price.to_bits()))
            .collect();
        ledger_side.sort_unstable();
        acked_side.sort_unstable();
        assert_eq!(
            ledger_side, acked_side,
            "listing `{name}`: ledger and ACK stream disagree"
        );
    }
    h.server.shutdown();
}

/// Shared assertions for the metered-buyer scenarios: the run must hit
/// budget exhaustion, keep serving afterwards, and the server-side
/// ledger, the buyer-side ACK stream, and the per-buyer accounts must
/// agree exactly — zero mismatches.
fn assert_budgets_reconcile(scenario: &Scenario, outcome: &SimOutcome, h: &SimHarness) {
    let budget = scenario.buyer_budget.expect("metered scenario");
    assert!(outcome.acked_commits() > 0, "no sales before exhaustion");
    assert!(
        outcome.budget_rejects() > 0,
        "budgets never exhausted — the reject path was not exercised"
    );
    // Exhaustion is graceful: the engine kept quoting (reads served) on
    // every tick after the first reject.
    let first_reject = outcome
        .records
        .iter()
        .find(|r| r.budget_rejects > 0)
        .map(|r| r.tick)
        .unwrap();
    for r in outcome.records.iter().filter(|r| r.tick > first_reject) {
        assert!(
            r.quotes > 0,
            "tick {}: reads stopped after exhaustion",
            r.tick
        );
    }

    for (li, name) in outcome.listings.iter().enumerate() {
        let broker = h.marketplace.route(name).expect("listing routes");
        // Ledger ↔ ACK: same transaction ids, bitwise-same prices.
        let ledger = broker.ledger();
        let transactions = ledger.transactions();
        assert_eq!(
            transactions.len(),
            outcome.acked[li].len(),
            "listing `{name}`: ledger row count != buyer ACK count"
        );
        let mut ledger_side: Vec<(u64, u64)> = transactions
            .iter()
            .map(|t| (t.sequence, t.price.to_bits()))
            .collect();
        let mut acked_side: Vec<(u64, u64)> = outcome.acked[li]
            .iter()
            .map(|a| (a.transaction, a.price.to_bits()))
            .collect();
        ledger_side.sort_unstable();
        acked_side.sort_unstable();
        assert_eq!(
            ledger_side, acked_side,
            "listing `{name}`: ledger and ACK stream disagree"
        );

        // Accounts ↔ ledger: every charge came from an ACKed sale, every
        // buyer stayed within budget, and total spend equals the
        // ledger's total precision sold.
        let accounts = broker.accounts();
        assert_eq!(accounts.budget(), Some(budget));
        let snapshot = accounts.snapshot();
        assert!(
            snapshot.len() <= scenario.buyers,
            "listing `{name}`: more charged buyers than identities"
        );
        let mut charged = 0.0f64;
        for &(buyer, spent) in &snapshot {
            assert!(buyer >= 1 && buyer <= scenario.buyers as u64);
            assert!(
                spent <= budget + 1e-9,
                "listing `{name}`: buyer {buyer} over budget: {spent} > {budget}"
            );
            charged += spent;
        }
        let sold: f64 = transactions.iter().map(|t| t.inverse_ncp).sum();
        assert!(
            (charged - sold).abs() <= 1e-9 * sold.max(1.0),
            "listing `{name}`: accounts charged {charged} != ledger sold {sold}"
        );
        assert_eq!(accounts.budget_rejects(), outcome.budget_rejects());
    }
}

#[test]
fn budget_exhaustion_is_graceful_and_reconciles() {
    let scenario = Scenario::builtin("budget-exhaustion").expect("catalog");
    let (outcome, h) = run(&scenario, 21);
    assert_budgets_reconcile(&scenario, &outcome, &h);
    // Every agent is its own buyer, so exhaustion is fleet-wide: the
    // final ticks commit (almost) nothing while still quoting.
    let last = outcome.records.last().unwrap();
    assert!(last.quotes > 0);
    h.server.shutdown();
}

#[test]
fn colluding_buyers_share_one_budget() {
    let scenario = Scenario::builtin("colluding-buyers").expect("catalog");
    let (outcome, h) = run(&scenario, 23);
    assert_budgets_reconcile(&scenario, &outcome, &h);
    // Ten agents share each identity; the ledger meters the identity,
    // so the number of distinct charged buyers is bounded by the ring
    // count, not the population.
    let broker = h.marketplace.route(&outcome.listings[0]).unwrap();
    let snapshot = broker.accounts().snapshot();
    assert!(!snapshot.is_empty());
    assert!(snapshot.len() <= 8, "identities leaked: {}", snapshot.len());
    h.server.shutdown();
}

#[test]
fn demand_shock_moves_prices_up() {
    let scenario = war_scenario();
    let (outcome, h) = run(&scenario, 13);
    h.server.shutdown();

    let shock_tick = 150;
    // Compare each listing's last re-priced top before the shock with
    // its last re-priced top after: a 1.6× valuation boom must raise the
    // revenue-optimal posted prices.
    for (li, name) in outcome.listings.iter().enumerate() {
        let mut before: Option<f64> = None;
        let mut after: Option<f64> = None;
        for r in &outcome.records {
            for d in &r.reprices {
                if d.listing == *name {
                    if r.tick < shock_tick {
                        before = Some(d.new_top);
                    } else {
                        after = Some(d.new_top);
                    }
                }
            }
        }
        let before = before.unwrap_or_else(|| panic!("listing `{name}` never re-priced pre-shock"));
        let after = after.unwrap_or_else(|| panic!("listing `{name}` never re-priced post-shock"));
        assert!(
            after > before,
            "listing `{name}` ({li}): post-shock top {after} should exceed pre-shock top {before}"
        );
    }
}
