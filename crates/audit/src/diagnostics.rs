//! Findings and their two renderings: rustc-style text and JSON.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (kebab-case), e.g. `no-panic`.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, if available (for the caret rendering).
    pub snippet: String,
}

impl Finding {
    /// A finding without a snippet (attached later by the driver).
    pub fn new(rule: &str, file: &str, line: u32, col: u32, message: impl Into<String>) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            col,
            message: message.into(),
            snippet: String::new(),
        }
    }

    /// Renders one finding rustc-style:
    ///
    /// ```text
    /// error[nimbus-audit::no-panic]: `unwrap()` in the serving hot path
    ///   --> crates/server/src/client.rs:257:43
    ///    |
    /// 257 |         let stream = self.stream.as_mut().unwrap();
    ///     |                                           ^
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "error[nimbus-audit::{}]: {}", self.rule, self.message);
        let _ = writeln!(out, "  --> {}:{}:{}", self.file, self.line, self.col);
        if !self.snippet.is_empty() {
            let gutter = self.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, "{pad} |");
            let _ = writeln!(out, "{gutter} | {}", self.snippet);
            // Column is in characters; the snippet is printed verbatim, so
            // place the caret by character count.
            let caret_pad: String = self
                .snippet
                .chars()
                .take(self.col.saturating_sub(1) as usize)
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            let _ = writeln!(out, "{pad} | {caret_pad}^");
        }
        out
    }
}

/// Computes the stable per-finding ID for `f`, the `occurrence`-th
/// finding with identical `(rule, file, message, snippet)` in its report.
///
/// Line and column are deliberately excluded: an unrelated edit that
/// shifts a violation down three lines must not change its identity, or
/// CI baselines churn on every commit. The occurrence counter separates
/// genuinely identical violations (two `unwrap()`s on one line of two
/// different lines with the same snippet) without reintroducing
/// position sensitivity.
pub fn finding_id(f: &Finding, occurrence: usize) -> String {
    // FNV-1a, 64-bit — stable across platforms and releases, no std
    // hasher (RandomState is seeded per process).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(f.rule.as_bytes());
    eat(f.file.as_bytes());
    eat(f.message.as_bytes());
    eat(f.snippet.trim().as_bytes());
    eat(occurrence.to_string().as_bytes());
    format!("{h:016x}")
}

/// The rule-doc anchor for a finding: a stable pointer into the rule
/// reference that CI annotations can link.
pub fn finding_doc(rule: &str) -> String {
    format!("crates/audit/RULES.md#{rule}")
}

/// Renders findings as a JSON document:
/// `{"findings":[…],"count":N}`. Each finding carries a stable `id`
/// ([`finding_id`]) and a `doc` anchor ([`finding_doc`]).
pub fn render_json(findings: &[Finding]) -> String {
    let mut seen: std::collections::BTreeMap<(&str, &str, &str, &str), usize> =
        std::collections::BTreeMap::new();
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let occurrence = {
            let k = (
                f.rule.as_str(),
                f.file.as_str(),
                f.message.as_str(),
                f.snippet.as_str(),
            );
            let n = seen.entry(k).or_insert(0);
            let o = *n;
            *n += 1;
            o
        };
        let _ = write!(
            out,
            "{{\"id\":{},\"rule\":{},\"doc\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"snippet\":{}}}",
            json_string(&finding_id(f, occurrence)),
            json_string(&f.rule),
            json_string(&finding_doc(&f.rule)),
            json_string(&f.file),
            f.line,
            f.col,
            json_string(&f.message),
            json_string(&f.snippet),
        );
    }
    let _ = write!(out, "],\"count\":{}}}", findings.len());
    out
}

/// JSON string escaping per RFC 8259.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_has_location_and_caret() {
        let f = Finding {
            rule: "no-panic".into(),
            file: "crates/server/src/x.rs".into(),
            line: 12,
            col: 5,
            message: "`unwrap()` in the serving hot path".into(),
            snippet: "    a.unwrap();".into(),
        };
        let text = f.render();
        assert!(text.contains("error[nimbus-audit::no-panic]"));
        assert!(text.contains("--> crates/server/src/x.rs:12:5"));
        assert!(text.contains("12 |     a.unwrap();"));
        assert!(text.lines().last().is_some_and(|l| l.ends_with("    ^")));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
