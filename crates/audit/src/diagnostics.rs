//! Findings and their two renderings: rustc-style text and JSON.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (kebab-case), e.g. `no-panic`.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, if available (for the caret rendering).
    pub snippet: String,
}

impl Finding {
    /// A finding without a snippet (attached later by the driver).
    pub fn new(rule: &str, file: &str, line: u32, col: u32, message: impl Into<String>) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            col,
            message: message.into(),
            snippet: String::new(),
        }
    }

    /// Renders one finding rustc-style:
    ///
    /// ```text
    /// error[nimbus-audit::no-panic]: `unwrap()` in the serving hot path
    ///   --> crates/server/src/client.rs:257:43
    ///    |
    /// 257 |         let stream = self.stream.as_mut().unwrap();
    ///     |                                           ^
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "error[nimbus-audit::{}]: {}", self.rule, self.message);
        let _ = writeln!(out, "  --> {}:{}:{}", self.file, self.line, self.col);
        if !self.snippet.is_empty() {
            let gutter = self.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, "{pad} |");
            let _ = writeln!(out, "{gutter} | {}", self.snippet);
            // Column is in characters; the snippet is printed verbatim, so
            // place the caret by character count.
            let caret_pad: String = self
                .snippet
                .chars()
                .take(self.col.saturating_sub(1) as usize)
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            let _ = writeln!(out, "{pad} | {caret_pad}^");
        }
        out
    }
}

/// Renders findings as a JSON document:
/// `{"findings":[…],"count":N}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"snippet\":{}}}",
            json_string(&f.rule),
            json_string(&f.file),
            f.line,
            f.col,
            json_string(&f.message),
            json_string(&f.snippet),
        );
    }
    let _ = write!(out, "],\"count\":{}}}", findings.len());
    out
}

/// JSON string escaping per RFC 8259.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_has_location_and_caret() {
        let f = Finding {
            rule: "no-panic".into(),
            file: "crates/server/src/x.rs".into(),
            line: 12,
            col: 5,
            message: "`unwrap()` in the serving hot path".into(),
            snippet: "    a.unwrap();".into(),
        };
        let text = f.render();
        assert!(text.contains("error[nimbus-audit::no-panic]"));
        assert!(text.contains("--> crates/server/src/x.rs:12:5"));
        assert!(text.contains("12 |     a.unwrap();"));
        assert!(text.lines().last().is_some_and(|l| l.ends_with("    ^")));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
