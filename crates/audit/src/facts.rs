//! Per-function facts extracted from the parsed AST: call sites with
//! their receiver chains, lock-guard scopes, and money-identifier taint.
//!
//! The three dataflow rules consume these:
//!
//! * `lock-order` ([`crate::lockgraph`]) uses call sites + guard scopes
//!   to build the interprocedural lock-acquisition graph;
//! * `durability-order` ([`crate::protocol`]) classifies call sites into
//!   commit-protocol events and checks their token order;
//! * `money-safety` ([`crate::rules`]) uses the taint set to follow money
//!   values through `let` bindings (`let entry = spent.entry(b)…` taints
//!   `entry`).
//!
//! Guard scopes are token ranges, computed with Rust's actual temporary
//! rules in mind: a `let`-bound guard lives to the end of its innermost
//! enclosing block (truncated at `drop(guard)`), a temporary guard lives
//! to the end of its statement — where an `if let`/`match` scrutinee
//! temporary extends over the whole block, the famous condition-guard
//! footgun.

use crate::lexer::{Token, TokenKind};
use crate::parse::{matching_brace, matching_paren, FileAst, FnItem};
use std::collections::BTreeSet;

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Receiver chain identifiers, outermost first (`self.dedup.claim(…)`
    /// → `["self", "dedup"]`; a chained call's name joins the chain, so
    /// `self.lock_journal().append_sales(…)` → `["self", "lock_journal"]`).
    pub chain: Vec<String>,
    /// The called name.
    pub method: String,
    /// Token index of the called name in [`FileAst::code`].
    pub idx: usize,
    /// Source position of the called name.
    pub line: u32,
    pub col: u32,
}

/// Facts for one function.
#[derive(Debug, Default)]
pub struct FnFacts {
    /// Every call site in body token order.
    pub calls: Vec<CallSite>,
    /// Identifiers carrying money values: money-named parameters plus
    /// `let` bindings whose initializer mentions a money identifier.
    pub tainted: BTreeSet<String>,
    /// Whether the body performs any finiteness check (`is_finite` /
    /// `is_nan`) — the marker of a designated validation site.
    pub checks_finiteness: bool,
}

/// Identifier segments that mark a money value.
pub const MONEY_WORDS: &[&str] = &[
    "price", "prices", "payment", "revenue", "budget", "spent", "proceeds", "fee", "paid", "wallet",
];

/// Segments that mark a *count of* money things, not money itself
/// (`budget_rejects`, `n_price_points`, `revenue_bits`, …).
pub const COUNTER_WORDS: &[&str] = &[
    "count", "counts", "counter", "rejects", "rejected", "points", "n", "num", "idx", "index",
    "len", "bits", "every", "id", "ids", "reprice", "sales",
];

/// Whether `name` names a money value under the segment heuristic.
pub fn is_money_ident(name: &str) -> bool {
    let mut money = false;
    for seg in name.split('_') {
        let seg = seg.to_ascii_lowercase();
        if COUNTER_WORDS.contains(&seg.as_str()) {
            return false;
        }
        if MONEY_WORDS.contains(&seg.as_str()) {
            money = true;
        }
    }
    money
}

/// Extracts the facts for one function of `ast`.
pub fn fn_facts(ast: &FileAst, f: &FnItem) -> FnFacts {
    let code = &ast.code;
    let (start, end) = f.body;
    let mut facts = FnFacts::default();

    for i in start + 1..end {
        let t = &code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "is_finite" || t.text == "is_nan" {
            facts.checks_finiteness = true;
        }
        // A call: identifier directly followed by `(` — but not a
        // declaration (`fn name(`) and not a macro (`name!(`).
        if code.get(i + 1).is_some_and(|n| n.text == "(") && i > 0 && code[i - 1].text != "fn" {
            facts.calls.push(CallSite {
                chain: receiver_chain(code, i),
                method: t.text.clone(),
                idx: i,
                line: t.line,
                col: t.col,
            });
        }
    }

    // Money taint: parameters, then a double pass over `let` initializers
    // so order-independent chains still converge.
    for p in &f.params {
        if is_money_ident(p) {
            facts.tainted.insert(p.clone());
        }
    }
    for _ in 0..2 {
        let mut i = start + 1;
        while i < end {
            if code[i].kind == TokenKind::Ident && code[i].text == "let" {
                let condition = i > 0 && matches!(code[i - 1].text.as_str(), "if" | "while");
                if let Some((binding, rhs)) = let_binding_in(code, i, end, condition) {
                    let money = is_money_ident(&binding)
                        || (rhs.0..rhs.1).any(|k| {
                            let t = &code[k];
                            t.kind == TokenKind::Ident
                                && (is_money_ident(&t.text) || facts.tainted.contains(&t.text))
                                && code.get(k + 1).is_none_or(|n| n.text != "(")
                        });
                    if money {
                        facts.tainted.insert(binding);
                    }
                    i = rhs.1;
                    continue;
                }
            }
            i += 1;
        }
    }
    facts
}

/// The receiver chain of the call at `idx`: walks back over `.`-chains,
/// collecting plain identifiers and the names of chained calls, skipping
/// balanced index/call groups (`shards[i].lock()` → `["self", "shards"]`).
fn receiver_chain(code: &[Token], idx: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = idx;
    // Expect a `.` or `::` before each segment; anything else ends the chain.
    while let Some(prev) = j.checked_sub(1) {
        match code[prev].text.as_str() {
            "." | "::" => {}
            _ => break,
        }
        let Some(mut k) = prev.checked_sub(1) else {
            break;
        };
        // `?` propagation between segments: `self.published()?.metric_name()`.
        if code[k].text == "?" {
            let Some(k2) = k.checked_sub(1) else { break };
            k = k2;
        }
        // Skip a balanced `(…)` / `[…]` group back to its head.
        while code[k].text == ")" || code[k].text == "]" {
            let closer = code[k].text.clone();
            let opener = if closer == ")" { "(" } else { "[" };
            let mut depth = 0i32;
            loop {
                let t = &code[k];
                if t.kind == TokenKind::Punct {
                    if t.text == closer {
                        depth += 1;
                    } else if t.text == opener {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
                match k.checked_sub(1) {
                    Some(next) => k = next,
                    None => return chain,
                }
            }
            match k.checked_sub(1) {
                Some(next) => k = next,
                None => return chain,
            }
        }
        if code[k].kind == TokenKind::Ident {
            chain.insert(0, code[k].text.clone());
            j = k;
        } else {
            break;
        }
    }
    chain
}

/// Parses the plain `let` statement at `at`: returns the bound
/// identifier and the initializer token range `(after_eq, semicolon)`.
fn let_binding(code: &[Token], at: usize, end: usize) -> Option<(String, (usize, usize))> {
    let_binding_in(code, at, end, false)
}

/// [`let_binding`], with `condition` selecting `if let`/`while let`
/// handling: a condition-let's scrutinee ends at the block `{`, not at a
/// `;` (which would belong to a later statement entirely).
fn let_binding_in(
    code: &[Token],
    at: usize,
    end: usize,
    condition: bool,
) -> Option<(String, (usize, usize))> {
    // Binding: first identifier after `let`, skipping `mut` and opening
    // pattern punctuation (`(a, b)` binds its first identifier — enough
    // for taint purposes).
    let mut i = at + 1;
    let binding = loop {
        let t = code.get(i)?;
        if i >= end {
            return None;
        }
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "mut") => {}
            (TokenKind::Ident, name) => break name.to_string(),
            (TokenKind::Punct, "(" | "&") => {}
            _ => return None,
        }
        i += 1;
    };
    // Find the `=` at depth 0 (skipping a `: Type` annotation), then the
    // initializer's end: the statement `;` — or, for a condition-let, the
    // block `{`. Angle brackets are NOT depth-tracked (comparison
    // operators would unbalance them); `=` never occurs inside the
    // bracket kinds that are.
    let mut depth = 0i32;
    let mut eq = None;
    while i < end {
        let t = &code[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if !(condition && depth == 0 && eq.is_some()) => depth += 1,
                "}" => depth -= 1,
                "=" if depth == 0 && eq.is_none() => eq = Some(i + 1),
                ";" if depth == 0 && !condition => {
                    return eq.map(|e| (binding, (e, i)));
                }
                "{" => {
                    // Condition-let scrutinee ends at its block.
                    return eq.map(|e| (binding, (e, i)));
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// How the value of a lock call is consumed, which decides its guard's
/// lifetime.
#[derive(Debug, PartialEq, Eq)]
pub enum GuardKind {
    /// `let g = ….lock();` (possibly through `unwrap*`/`match`): the
    /// guard lives to the end of the innermost enclosing block, minus a
    /// `drop(g)`.
    Bound(String),
    /// The guard is a temporary: it lives to the end of its statement —
    /// including the whole block of an `if let`/`match` it is the
    /// scrutinee of.
    Temporary,
}

/// Methods through which a guard value passes unchanged.
const PASSTHROUGH: &[&str] = &["unwrap", "unwrap_or_else", "expect"];

/// Computes the live token range of the guard produced by the lock call
/// at `call_idx` (the called name's index). Returns `(kind, scope_end)`,
/// with `scope_end` inclusive and clamped to `body_end`.
pub fn guard_scope(code: &[Token], call_idx: usize, body_end: usize) -> (GuardKind, usize) {
    // End of the call expression: past the argument list and any
    // passthrough chain.
    let Some(args_open) = (call_idx + 1 < code.len()).then_some(call_idx + 1) else {
        return (GuardKind::Temporary, body_end);
    };
    let mut k = match matching_paren(code, args_open) {
        Some(close) => close + 1,
        None => return (GuardKind::Temporary, body_end),
    };
    let passthrough_tail;
    loop {
        match code.get(k).map(|t| t.text.as_str()) {
            Some("?") => k += 1,
            Some(".")
                if code
                    .get(k + 1)
                    .is_some_and(|n| PASSTHROUGH.contains(&n.text.as_str()))
                    && code.get(k + 2).is_some_and(|n| n.text == "(") =>
            {
                k = match matching_paren(code, k + 2) {
                    Some(close) => close + 1,
                    None => return (GuardKind::Temporary, body_end),
                };
            }
            _ => {
                passthrough_tail = !matches!(code.get(k).map(|t| t.text.as_str()), Some("."));
                break;
            }
        }
    }

    // Statement start: walk back, skipping balanced groups, to the
    // nearest `;`, `{` or `}`.
    let mut s = call_idx;
    while let Some(prev) = s.checked_sub(1) {
        let t = &code[prev];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                ";" | "{" | "}" => break,
                ")" | "]" => {
                    // Skip the balanced group.
                    let closer = t.text.clone();
                    let opener = if closer == ")" { "(" } else { "[" };
                    let mut depth = 0i32;
                    let mut b = prev;
                    loop {
                        let bt = &code[b];
                        if bt.kind == TokenKind::Punct {
                            if bt.text == closer {
                                depth += 1;
                            } else if bt.text == opener {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                        }
                        match b.checked_sub(1) {
                            Some(n) => b = n,
                            None => break,
                        }
                    }
                    s = b;
                    continue;
                }
                _ => {}
            }
        }
        s = prev;
    }

    // Is this a binding statement whose bound value is the guard?
    // `let g = <acquire>;`, `g = <acquire>;`, or the acquire as a
    // `match`/`if let` scrutinee that flows into the binding.
    let stmt_is_let = code.get(s).is_some_and(|t| t.text == "let");
    let stmt_is_assign = code.get(s).is_some_and(|t| t.kind == TokenKind::Ident)
        && code.get(s + 1).is_some_and(|t| t.text == "=");
    let guard_reaches_binding =
        passthrough_tail && matches!(code.get(k).map(|t| t.text.as_str()), Some(";") | Some("{"));
    if (stmt_is_let || stmt_is_assign) && guard_reaches_binding {
        let binding = if stmt_is_let {
            let_binding(code, s, body_end.min(code.len()))
                .map(|(b, _)| b)
                .unwrap_or_default()
        } else {
            code[s].text.clone()
        };
        // Scope: the innermost block enclosing the statement start.
        let mut scope_end = enclosing_block_end(code, s, body_end);
        // Truncate at `drop(binding)`.
        for d in call_idx..scope_end {
            if code[d].kind == TokenKind::Ident
                && code[d].text == "drop"
                && code.get(d + 1).is_some_and(|n| n.text == "(")
                && code.get(d + 2).is_some_and(|n| n.text == binding)
                && code.get(d + 3).is_some_and(|n| n.text == ")")
            {
                scope_end = d;
                break;
            }
        }
        return (GuardKind::Bound(binding), scope_end);
    }

    // Temporary: to the end of the statement. Scan forward from the end
    // of the call expression for a `;` at relative depth 0, or a `{`
    // opening a block-statement (if/match) — the temporary then lives to
    // that block's `}`.
    let mut depth = 0i32;
    let mut j = k;
    while j <= body_end && j < code.len() {
        let t = &code[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth <= 0 => return (GuardKind::Temporary, j),
                "{" if depth <= 0 => {
                    let end = matching_brace(code, j).unwrap_or(body_end);
                    return (GuardKind::Temporary, end.min(body_end));
                }
                "}" if depth <= 0 => return (GuardKind::Temporary, j),
                _ => {}
            }
        }
        j += 1;
    }
    (GuardKind::Temporary, body_end)
}

/// The index of the `}` closing the innermost block that encloses token
/// `at`, found by forward-scanning from `at` for the first unmatched `}`.
fn enclosing_block_end(code: &[Token], at: usize, body_end: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(at).take(body_end + 1 - at) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    body_end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn facts_of(src: &str) -> (FileAst, Vec<FnFacts>) {
        let ast = parse_file(&lex(src));
        let facts = ast.fns.iter().map(|f| fn_facts(&ast, f)).collect();
        (ast, facts)
    }

    #[test]
    fn receiver_chains_walk_dots_indexes_and_calls() {
        let (_, facts) = facts_of(
            "impl B {\n    fn f(&self) {\n        self.dedup.claim(k);\n        self.shards[i % N].lock().record(x);\n        self.lock_journal().append_sales(&r);\n    }\n}\n",
        );
        let calls = &facts[0].calls;
        let find = |m: &str| calls.iter().find(|c| c.method == m).unwrap();
        assert_eq!(find("claim").chain, vec!["self", "dedup"]);
        assert_eq!(find("lock").chain, vec!["self", "shards"]);
        assert_eq!(find("record").chain, vec!["self", "shards", "lock"]);
        assert_eq!(find("append_sales").chain, vec!["self", "lock_journal"]);
    }

    #[test]
    fn money_taint_flows_through_let_bindings() {
        let (_, facts) = facts_of(
            "fn charge(&self, buyer: u64, x: f64) {\n    let mut spent = self.lock_spent();\n    let entry = spent.entry(buyer).or_insert(0.0);\n    *entry += x;\n}\n",
        );
        assert!(facts[0].tainted.contains("spent"));
        assert!(facts[0].tainted.contains("entry"));
        assert!(!facts[0].tainted.contains("buyer"));
    }

    #[test]
    fn money_params_seed_the_taint() {
        let (_, facts) = facts_of("fn f(payment: f64, n: usize) { let p2 = payment * 2.0; }\n");
        assert!(facts[0].tainted.contains("payment"));
        assert!(facts[0].tainted.contains("p2"));
    }

    #[test]
    fn let_bound_guard_scopes_to_block_and_drop_truncates() {
        let src = "fn f(&self) {\n    let g = self.state.lock();\n    use_it(&g);\n    drop(g);\n    after();\n}\n";
        let ast = parse_file(&lex(src));
        let facts = fn_facts(&ast, &ast.fns[0]);
        let lock = facts.calls.iter().find(|c| c.method == "lock").unwrap();
        let (kind, end) = guard_scope(&ast.code, lock.idx, ast.fns[0].body.1);
        assert_eq!(kind, GuardKind::Bound("g".into()));
        let after = facts.calls.iter().find(|c| c.method == "after").unwrap();
        let use_it = facts.calls.iter().find(|c| c.method == "use_it").unwrap();
        assert!(use_it.idx <= end, "guard covers use_it");
        assert!(after.idx > end, "drop(g) ends the guard before after()");
    }

    #[test]
    fn temporary_guard_scopes_to_statement() {
        let src = "fn f(&self) {\n    self.shards[i].lock().record(x);\n    after();\n}\n";
        let ast = parse_file(&lex(src));
        let facts = fn_facts(&ast, &ast.fns[0]);
        let lock = facts.calls.iter().find(|c| c.method == "lock").unwrap();
        let (kind, end) = guard_scope(&ast.code, lock.idx, ast.fns[0].body.1);
        assert_eq!(kind, GuardKind::Temporary);
        let record = facts.calls.iter().find(|c| c.method == "record").unwrap();
        let after = facts.calls.iter().find(|c| c.method == "after").unwrap();
        assert!(record.idx <= end);
        assert!(after.idx > end);
    }

    #[test]
    fn if_let_scrutinee_temporary_extends_over_the_block_only() {
        // The double-checked read: the `read()` temporary must cover the
        // `if let` block but NOT the `write()` after it.
        let src = "fn f(&self) -> u32 {\n    if let Some(m) = self.optimal.read().as_ref() {\n        return m.clone();\n    }\n    let mut guard = self.optimal.write();\n    0\n}\n";
        let ast = parse_file(&lex(src));
        let facts = fn_facts(&ast, &ast.fns[0]);
        let read = facts.calls.iter().find(|c| c.method == "read").unwrap();
        let write = facts.calls.iter().find(|c| c.method == "write").unwrap();
        let (_, end) = guard_scope(&ast.code, read.idx, ast.fns[0].body.1);
        assert!(write.idx > end, "read guard must end before the write");
    }

    #[test]
    fn match_bound_guard_is_recognized() {
        // The std-mutex poisoning idiom from the server worker loop.
        let src = "fn f(&self) {\n    let next = {\n        let mut queue = match shard.queue.lock() {\n            Ok(g) => g,\n            Err(p) => p.into_inner(),\n        };\n        queue.pop_front()\n    };\n    execute(next);\n}\n";
        let ast = parse_file(&lex(src));
        let facts = fn_facts(&ast, &ast.fns[0]);
        let lock = facts.calls.iter().find(|c| c.method == "lock").unwrap();
        let (kind, end) = guard_scope(&ast.code, lock.idx, ast.fns[0].body.1);
        assert_eq!(kind, GuardKind::Bound("queue".into()));
        let execute = facts.calls.iter().find(|c| c.method == "execute").unwrap();
        assert!(execute.idx > end, "guard dies with the inner block");
    }
}
