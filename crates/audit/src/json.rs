//! A minimal JSON value model + parser, used to round-trip the `--json`
//! output in tests (the workspace vendors no serde). Parses exactly the
//! subset the emitter produces — objects, arrays, strings with the
//! standard escapes, integers, booleans, null — which is also all of
//! RFC 8259 minus float edge cases.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; the emitter only writes integers).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (sorted keys — deterministic iteration).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access helper.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Array content, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON document. Returns a message describing the first error.
pub fn parse(src: &str) -> Result<Value, String> {
    let chars: Vec<char> = src.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{c}` at offset {}, found {:?}",
                self.pos,
                self.peek()
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => self.string().map(Value::Str),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('b') => out.push('\u{8}'),
                        Some('f') => out.push('\u{c}'),
                        Some('u') => {
                            let hex: String = self.chars[self.pos + 1..].iter().take(4).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_emitter_shape() {
        let v = parse(r#"{"findings":[{"rule":"no-panic","line":3}],"count":1}"#).unwrap();
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(1));
        let arr = v.get("findings").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].get("rule").and_then(Value::as_str), Some("no-panic"));
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse(r#"{"m":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(v.get("m").and_then(Value::as_str), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, ").is_err());
    }
}
