//! A small hand-rolled Rust lexer, just deep enough for token-level rules.
//!
//! The rules in this crate are string matchers over *token streams*, not
//! ASTs — so the one job of this lexer is to never hand a rule a token
//! that was actually inside a comment, a string, a raw string, a byte
//! string, or a character literal, and to never confuse a lifetime with a
//! character literal. Everything else (types, expressions, precedence) is
//! deliberately out of scope.
//!
//! Covered syntax:
//!
//! * line comments (`//`, `///`, `//!`) and block comments (`/* */`,
//!   including **nesting**, which Rust allows);
//! * string literals with escapes (`"\" still a string"`), raw strings
//!   with any number of hashes (`r"…"`, `r#"…"#`, `r##"…"##`), byte
//!   strings (`b"…"`, `br#"…"#`), and raw identifiers (`r#fn`);
//! * character literals vs. lifetimes (`'a'` vs. `'a`), including
//!   escaped (`'\n'`, `'\u{1F600}'`) and non-ASCII (`'é'`) chars;
//! * numbers, classified int vs. float (`1.0`, `1.`, `1e-9`, `1.5e3`,
//!   `0xFF`, suffixes) without swallowing ranges (`0..n`) or method
//!   calls on integers (`1.max(2)`);
//! * multi-char operators relevant to the rules (`::`, `==`, `!=`, …),
//!   greedily matched so `<=` never yields a stray `=`.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the rules treat keywords by name).
    Ident,
    /// A lifetime such as `'a` or `'static` (leading quote included).
    Lifetime,
    /// Integer literal, any base, with or without suffix.
    Int,
    /// Float literal (`1.0`, `1.`, `1e-9`, `2f64`).
    Float,
    /// String / raw string / byte string literal (content opaque).
    Str,
    /// Character or byte literal (`'a'`, `b'x'`).
    Char,
    /// Line or block comment, text preserved for SAFETY/suppression scans.
    Comment,
    /// Punctuation / operator, possibly multi-char (`::`, `==`, `!=`).
    Punct,
}

/// One lexeme with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// Exact source text (comments keep their delimiters).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

/// Lexes `src` into a token stream. Never fails: unterminated constructs
/// run to end of input, unknown bytes become single-char `Punct` tokens —
/// a linter must keep going where a compiler would stop.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

/// Multi-char operators the rules care about (and their lookalikes, so
/// greedy matching never fabricates a spurious `==` out of `<=` + `=`).
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn emit(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let (line, col) = (self.line, self.col);
            if c == '/' && self.peek(1) == Some('/') {
                let text = self.line_comment();
                self.emit(TokenKind::Comment, text, line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                let text = self.block_comment();
                self.emit(TokenKind::Comment, text, line, col);
            } else if c == 'r' && self.raw_string_hashes(1).is_some() {
                let text = self.raw_string(false);
                self.emit(TokenKind::Str, text, line, col);
            } else if c == 'b' && self.peek(1) == Some('r') && self.raw_string_hashes(2).is_some() {
                let text = self.raw_string(true);
                self.emit(TokenKind::Str, text, line, col);
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.bump();
                let text = self.string_literal('b');
                self.emit(TokenKind::Str, text, line, col);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.bump();
                let text = self.char_literal('b');
                self.emit(TokenKind::Char, text, line, col);
            } else if c == 'r'
                && self.peek(1) == Some('#')
                && self.peek(2).is_some_and(is_ident_start)
            {
                // Raw identifier r#fn: lex as the identifier alone.
                self.bump();
                self.bump();
                let text = self.ident();
                self.emit(TokenKind::Ident, text, line, col);
            } else if is_ident_start(c) {
                let text = self.ident();
                self.emit(TokenKind::Ident, text, line, col);
            } else if c.is_ascii_digit() {
                let (text, is_float) = self.number();
                let kind = if is_float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                };
                self.emit(kind, text, line, col);
            } else if c == '"' {
                let text = self.string_literal('\0');
                self.emit(TokenKind::Str, text, line, col);
            } else if c == '\'' {
                let (kind, text) = self.quote();
                self.emit(kind, text, line, col);
            } else {
                let text = self.operator();
                self.emit(TokenKind::Punct, text, line, col);
            }
        }
        self.tokens
    }

    fn line_comment(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        text
    }

    /// Block comment with nesting: `/* outer /* inner */ still outer */`.
    fn block_comment(&mut self) -> String {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push(c);
                self.bump();
                text.push('*');
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push(c);
                self.bump();
                text.push('/');
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        text
    }

    /// If the chars at `offset` are `#`* followed by `"`, returns the hash
    /// count — i.e. `offset` sits at the start of a raw-string body prefix.
    fn raw_string_hashes(&self, offset: usize) -> Option<usize> {
        let mut hashes = 0;
        while self.peek(offset + hashes) == Some('#') {
            hashes += 1;
        }
        (self.peek(offset + hashes) == Some('"')).then_some(hashes)
    }

    /// Raw (byte) string: `r#"…"#` with any hash count; the closing quote
    /// must be followed by the same number of hashes.
    fn raw_string(&mut self, byte: bool) -> String {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('r')); // 'r' or 'b'
        if byte {
            text.push(self.bump().unwrap_or('r')); // 'r'
        }
        let mut hashes = 0;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump();
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let mut trailing = 0;
                while trailing < hashes && self.peek(1 + trailing) == Some('#') {
                    trailing += 1;
                }
                if trailing == hashes {
                    text.push('"');
                    self.bump();
                    for _ in 0..hashes {
                        text.push('#');
                        self.bump();
                    }
                    break;
                }
            }
            text.push(c);
            self.bump();
        }
        text
    }

    /// Cooked string literal; `prefix` is `'b'` for byte strings. Escapes
    /// are consumed blindly (`\"` never terminates the string).
    fn string_literal(&mut self, prefix: char) -> String {
        let mut text = String::new();
        if prefix != '\0' {
            text.push(prefix);
        }
        text.push('"');
        self.bump();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                text.push('"');
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        text
    }

    fn char_literal(&mut self, prefix: char) -> String {
        let mut text = String::new();
        if prefix != '\0' {
            text.push(prefix);
        }
        text.push('\'');
        self.bump();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '\'' {
                text.push('\'');
                self.bump();
                break;
            } else if c == '\n' {
                break; // unterminated; don't eat the rest of the file
            } else {
                text.push(c);
                self.bump();
            }
        }
        text
    }

    /// A bare `'`: lifetime (`'a`, `'static`), char literal (`'a'`,
    /// `'\n'`, `'é'`), or — degenerate — a lone quote.
    fn quote(&mut self) -> (TokenKind, String) {
        match self.peek(1) {
            Some('\\') => (TokenKind::Char, self.char_literal('\0')),
            Some(c) if is_ident_start(c) => {
                if self.peek(2) == Some('\'') {
                    // 'a' — one ident-char then a closing quote.
                    (TokenKind::Char, self.char_literal('\0'))
                } else {
                    let mut text = String::from('\'');
                    self.bump();
                    text.push_str(&self.ident());
                    (TokenKind::Lifetime, text)
                }
            }
            Some(_) if self.peek(2) == Some('\'') => (TokenKind::Char, self.char_literal('\0')),
            _ => {
                self.bump();
                (TokenKind::Punct, "'".to_string())
            }
        }
    }

    fn ident(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text
    }

    /// Number literal. Floats are decimal literals with a fractional part
    /// (`1.0`, `1.`), an exponent (`1e-9`), or an `f32`/`f64` suffix. A
    /// `.` followed by another `.` (range) or an identifier char (method
    /// call) belongs to the *next* token.
    fn number(&mut self) -> (String, bool) {
        let mut text = String::new();
        let mut is_float = false;
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'))
        {
            text.push(self.bump().unwrap_or('0'));
            if let Some(radix) = self.bump() {
                text.push(radix);
            }
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            return (text, false);
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if self.peek(0) == Some('.') {
            let after = self.peek(1);
            let dot_belongs_to_number =
                !matches!(after, Some('.')) && !after.is_some_and(is_ident_start);
            if dot_belongs_to_number {
                is_float = true;
                text.push('.');
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        if matches!(self.peek(0), Some('e' | 'E')) {
            // Exponent only if digits (with optional sign) follow;
            // otherwise `e` starts an identifier (`2em` is not Rust, but
            // `1e` alone would be a parse error — stay permissive).
            let (sign, first_digit) = match self.peek(1) {
                Some('+' | '-') => (1, self.peek(2)),
                other => (0, other),
            };
            if first_digit.is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                text.push(self.bump().unwrap_or('e'));
                for _ in 0..sign {
                    if let Some(s) = self.bump() {
                        text.push(s);
                    }
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix: `1f64` is a float, `1u32` an int.
        if self.peek(0).is_some_and(is_ident_start) {
            let suffix = self.ident();
            if suffix.starts_with("f3") || suffix.starts_with("f6") {
                is_float = true;
            }
            text.push_str(&suffix);
        }
        (text, is_float)
    }

    /// Greedy longest-match over [`OPERATORS`], else one char.
    fn operator(&mut self) -> String {
        for op in OPERATORS {
            let mut matches = true;
            for (i, oc) in op.chars().enumerate() {
                if self.peek(i) != Some(oc) {
                    matches = false;
                    break;
                }
            }
            if matches {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                return (*op).to_string();
            }
        }
        self.bump().map(String::from).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"unwrap() " inside"#; x()"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap()")));
        // The `unwrap` inside the raw string is not an Ident token.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        // Lexer resyncs: `x` after the raw string is a plain ident.
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* panic!() */ still comment */ real");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert!(toks[0].1.contains("still comment"));
        assert_eq!(toks[1], (TokenKind::Ident, "real".to_string()));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"let m = b"NIMBUSJ1"; let c = b'\n';"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("NIMBUSJ1")));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Char));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].1, "'a'");
    }

    #[test]
    fn escaped_chars_and_unicode() {
        let toks = kinds(r"let a = '\n'; let b = '\u{1F600}'; let c = 'é'; let d: &'static str;");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            3
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            1
        );
    }

    #[test]
    fn line_comment_markers_inside_strings() {
        let toks = kinds(r#"let url = "https://example.com"; after()"#);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Comment)
                .count(),
            0
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "after"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = kinds(r#"let s = "he said \"unwrap()\" loudly"; next"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "next"));
    }

    #[test]
    fn numbers_floats_ranges_methods() {
        let toks = kinds("0..n; 1.max(2); 1.0; 1.; 1e-9; 2.5e3; 0xFF; 3f64; 7u32");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["1.0", "1.", "1e-9", "2.5e3", "3f64"]);
        // `0..n` keeps the range operator intact.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && t == ".."));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Int && t == "0xFF"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Int && t == "7u32"));
    }

    #[test]
    fn comparison_operators_are_units() {
        let toks = kinds("a <= b; c == d; e != f; g >= h; i << 2");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(puncts.contains(&"<="));
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"!="));
        assert!(puncts.contains(&">="));
        assert!(puncts.contains(&"<<"));
        assert!(!puncts.contains(&"="));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#fn = 1; r#"); // trailing junk stays harmless
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let toks = lex("let x = 1;\n  y.unwrap();\n");
        let unwrap = toks.iter().find(|t| t.text == "unwrap").expect("token");
        assert_eq!(unwrap.line, 2);
        assert_eq!(unwrap.col, 5);
    }
}
