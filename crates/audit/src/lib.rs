//! `nimbus-audit` — a workspace invariant linter for the Nimbus serving
//! path.
//!
//! The market's paper-level guarantees rest on code-level invariants the
//! compiler cannot see: arbitrage-freeness and idempotent replay require
//! noise to be a pure function of `(seed, tx_id, x)` (no ambient clocks,
//! RNG, or hash-order dependence), and the lock-free snapshot plus WAL
//! serving path must stay panic-free under load. This crate pins the
//! implementation to that spec on every CI run:
//!
//! ```text
//! cargo run -p nimbus-audit -- check          # human diagnostics
//! cargo run -p nimbus-audit -- check --json   # machine-readable
//! ```
//!
//! See [`rules`] for the rule set and scopes, [`suppress`] for the
//! mandatory-reason suppression syntax, and [`wire_sync`] for the
//! DESIGN.md protocol-table cross-check. The lexer underneath
//! ([`lexer`]) is a purpose-built Rust tokenizer that never matches
//! rule patterns inside comments, strings, raw strings, or char
//! literals.

pub mod diagnostics;
pub mod facts;
pub mod json;
pub mod lexer;
pub mod lockgraph;
pub mod parse;
pub mod protocol;
pub mod rules;
pub mod suppress;
pub mod testmap;
pub mod wire_sync;
pub mod workspace;

pub use diagnostics::{render_json, Finding};
pub use workspace::{audit_workspace, find_root, AuditReport};
