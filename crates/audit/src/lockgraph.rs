//! Rule `lock-order`: the static lock-acquisition graph.
//!
//! Builds the workspace's lock inventory from struct declarations
//! (`Mutex`/`RwLock`-typed fields), finds every acquisition site —
//! direct `.lock()`/`.read()`/`.write()` calls and calls to
//! guard-returning wrapper helpers like `lock_state()` — computes each
//! guard's live token range ([`crate::facts::guard_scope`]), and then:
//!
//! 1. **cycles**: an edge `L → M` is recorded when `M` is acquired
//!    (directly, or transitively through a called local function) while
//!    a guard on `L` is live. Any cycle — including a self-edge, the
//!    non-reentrant-mutex self-deadlock — is a finding.
//! 2. **durability under a lock**: a call to `append_sale` /
//!    `append_sales` / `checkpoint` / `sync_all` / `sync_data` (or to a
//!    local function that transitively reaches one) while any guard is
//!    live is a finding. Holding a lock across an fsync serializes every
//!    committer behind the disk; where that *is* the design (the
//!    group-commit journal mutex), a reasoned suppression documents it.
//!
//! Lock identities are `Struct.field` when the receiver resolves against
//! the inventory (`self.shards` in a `Broker` impl → `Broker.shards`; a
//! bare `shards[i].lock()` resolves by unique field name). Unresolvable
//! `.lock()` receivers still participate in the durability check but are
//! kept out of the cycle graph — a per-site pseudo-identity cannot be
//! matched across functions and would fabricate edges.

use crate::facts::{fn_facts, guard_scope, FnFacts};
use crate::lexer::lex;
use crate::parse::{parse_file, FileAst};
use crate::suppress;
use crate::testmap::TestMap;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Path prefixes whose files join the lock graph.
pub const LOCK_SCOPE_PREFIXES: &[&str] = &["crates/market/src/", "crates/server/src/"];

/// Calls that make (or transitively reach) a durability barrier.
const DURABLE_NAMES: &[&str] = &[
    "append_sale",
    "append_sales",
    "checkpoint",
    "sync_all",
    "sync_data",
    "fsync",
];

/// Lock-acquiring method names.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Whether a call site may resolve to a local function for
/// interprocedural propagation. Bare-name resolution is only sound for
/// `self.method()` and free `method()` calls — resolving `records.len()`
/// against *some* local `len` would fabricate lock and durability
/// summaries out of std method names.
fn resolvable(c: &crate::facts::CallSite) -> bool {
    c.chain.is_empty() || c.chain == ["self"]
}

/// One analyzed file.
struct FileModel {
    path: String,
    ast: FileAst,
    facts: Vec<FnFacts>,
    tests: TestMap,
}

/// One lock acquisition with its guard's live range.
struct Acquire {
    /// Resolved `Struct.field` identity, or `None` for an anonymous
    /// `.lock()` receiver (durability check only).
    lock: Option<String>,
    /// Display name for messages (resolved identity or raw receiver).
    label: String,
    idx: usize,
    scope_end: usize,
    line: u32,
    col: u32,
}

/// Runs the lock-order rule over `(path, src)` pairs, filtering findings
/// through each file's inline suppressions. Returns the surviving
/// findings plus the number of suppressions that fired.
pub fn check_files(files: &[(&str, &str)]) -> (Vec<Finding>, usize) {
    let mut models = Vec::new();
    for (path, src) in files {
        let tokens = lex(src);
        let tests = if path.contains("/tests/") || path.contains("/benches/") {
            TestMap::whole_file()
        } else {
            TestMap::from_tokens(&tokens)
        };
        let ast = parse_file(&tokens);
        let facts: Vec<FnFacts> = ast.fns.iter().map(|f| fn_facts(&ast, f)).collect();
        models.push(FileModel {
            path: path.to_string(),
            ast,
            facts,
            tests,
        });
    }

    let raw = analyze(&models);

    // Suppression filtering, per file.
    let mut out = Vec::new();
    let mut used = 0usize;
    for (path, src) in files {
        let tokens = lex(src);
        let mut scratch = Vec::new(); // malformed-suppression findings belong to the per-file pass
        let sups = suppress::collect(&tokens, path, &mut scratch);
        for f in raw.iter().filter(|f| f.file == *path) {
            if suppress::is_suppressed(&sups, &f.rule, f.line) {
                used += 1;
            } else {
                let mut f = f.clone();
                crate::rules::attach_snippets(src, std::slice::from_mut(&mut f));
                out.push(f);
            }
        }
    }
    (out, used)
}

fn analyze(models: &[FileModel]) -> Vec<Finding> {
    // 1. Global lock inventory: field name → declaring structs.
    let mut fields: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for m in models {
        for lf in &m.ast.lock_fields {
            fields.entry(&lf.field).or_default().insert(&lf.owner);
        }
    }
    let resolve = |owner: Option<&str>, chain: &[String]| -> Option<String> {
        let field = chain.last()?;
        let owners = fields.get(field.as_str())?;
        if chain.first().map(String::as_str) == Some("self") {
            if let Some(o) = owner {
                if owners.contains(o) {
                    return Some(format!("{o}.{field}"));
                }
            }
        }
        if owners.len() == 1 {
            let o = owners.iter().next().unwrap();
            return Some(format!("{o}.{field}"));
        }
        None
    };

    // 2. Guard-returning wrappers: (name → lock id) for helpers whose
    //    body performs one resolvable acquisition.
    let mut wrappers: BTreeMap<&str, String> = BTreeMap::new();
    for m in models {
        for (f, facts) in m.ast.fns.iter().zip(&m.facts) {
            if !f.returns_guard {
                continue;
            }
            let mut acquired = facts.calls.iter().filter_map(|c| {
                if LOCK_METHODS.contains(&c.method.as_str()) {
                    resolve(f.owner.as_deref(), &c.chain)
                } else {
                    None
                }
            });
            if let Some(id) = acquired.next() {
                wrappers.insert(&f.name, id);
            }
        }
    }

    // 3. Per-function acquisitions with guard scopes, plus the local-fn
    //    call graph for transitive lock sets and durability.
    let mut fn_names: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new(); // name → (model, fn) indices
    for (mi, m) in models.iter().enumerate() {
        for (fi, f) in m.ast.fns.iter().enumerate() {
            fn_names.entry(&f.name).or_default().push((mi, fi));
        }
    }
    let acquires: Vec<Vec<Vec<Acquire>>> = models
        .iter()
        .map(|m| {
            m.ast
                .fns
                .iter()
                .zip(&m.facts)
                .map(|(f, facts)| {
                    let mut list = Vec::new();
                    for c in &facts.calls {
                        let (lock, label) = if LOCK_METHODS.contains(&c.method.as_str()) {
                            let resolved = resolve(f.owner.as_deref(), &c.chain);
                            // `.read()`/`.write()` are too common as I/O
                            // methods: only a resolved receiver counts.
                            if resolved.is_none() && c.method != "lock" {
                                continue;
                            }
                            let label = resolved
                                .clone()
                                .unwrap_or_else(|| c.chain.join(".").to_string());
                            (resolved, label)
                        } else if let Some(id) = wrappers.get(c.method.as_str()) {
                            // A wrapper's own body acquisition is the
                            // return value, not a held guard.
                            if wrappers.contains_key(f.name.as_str()) {
                                continue;
                            }
                            (Some(id.clone()), id.clone())
                        } else {
                            continue;
                        };
                        let (_kind, scope_end) = guard_scope(&m.ast.code, c.idx, f.body.1);
                        list.push(Acquire {
                            lock,
                            label,
                            idx: c.idx,
                            scope_end,
                            line: c.line,
                            col: c.col,
                        });
                    }
                    list
                })
                .collect()
        })
        .collect();

    // 4. Fixpoint: per-fn transitive lock set + durability flag.
    let mut lockset: BTreeMap<(usize, usize), BTreeSet<String>> = BTreeMap::new();
    let mut durable: BTreeMap<(usize, usize), bool> = BTreeMap::new();
    for (mi, m) in models.iter().enumerate() {
        for (fi, fn_acquires) in acquires[mi].iter().enumerate() {
            let set: BTreeSet<String> = fn_acquires.iter().filter_map(|a| a.lock.clone()).collect();
            let dur = m.facts[fi]
                .calls
                .iter()
                .any(|c| DURABLE_NAMES.contains(&c.method.as_str()));
            lockset.insert((mi, fi), set);
            durable.insert((mi, fi), dur);
        }
    }
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 32 {
        changed = false;
        rounds += 1;
        for (mi, m) in models.iter().enumerate() {
            for (fi, facts) in m.facts.iter().enumerate() {
                for c in &facts.calls {
                    if !resolvable(c) {
                        continue;
                    }
                    let Some(callees) = fn_names.get(c.method.as_str()) else {
                        continue;
                    };
                    for &(cm, cf) in callees {
                        if (cm, cf) == (mi, fi) {
                            continue;
                        }
                        let (add_locks, add_dur) = (
                            lockset.get(&(cm, cf)).cloned().unwrap_or_default(),
                            durable.get(&(cm, cf)).copied().unwrap_or(false),
                        );
                        let entry = lockset.get_mut(&(mi, fi)).unwrap();
                        for l in add_locks {
                            if entry.insert(l) {
                                changed = true;
                            }
                        }
                        if add_dur && !durable[&(mi, fi)] {
                            durable.insert((mi, fi), true);
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    // 5. Findings.
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(String, String), (String, u32, u32, String)> = BTreeMap::new();
    for (mi, m) in models.iter().enumerate() {
        for (fi, f) in m.ast.fns.iter().enumerate() {
            if m.tests.is_test_line(f.line) {
                continue;
            }
            let facts = &m.facts[fi];
            for a in &acquires[mi][fi] {
                if m.tests.is_test_line(a.line) {
                    continue;
                }
                // Durability calls under the guard.
                for c in &facts.calls {
                    if c.idx <= a.idx || c.idx > a.scope_end {
                        continue;
                    }
                    let call_durable = DURABLE_NAMES.contains(&c.method.as_str())
                        || (resolvable(c)
                            && fn_names.get(c.method.as_str()).is_some_and(|callees| {
                                callees
                                    .iter()
                                    .any(|k| durable.get(k).copied().unwrap_or(false))
                            }));
                    if call_durable {
                        findings.push(Finding::new(
                            "lock-order",
                            &m.path,
                            c.line,
                            c.col,
                            format!(
                                "lock `{}` held across durability call `{}` in `{}` — an fsync under a lock serializes every committer behind the disk; restructure, or suppress with the design argument",
                                a.label,
                                c.method,
                                qualified(f.owner.as_deref(), &f.name),
                            ),
                        ));
                    }
                }
                // Edges into the cycle graph (resolved identities only).
                let Some(src) = &a.lock else { continue };
                let via = qualified(f.owner.as_deref(), &f.name);
                for b in &acquires[mi][fi] {
                    if b.idx > a.idx && b.idx <= a.scope_end {
                        if let Some(dst) = &b.lock {
                            record_edge(&mut edges, src, dst, &m.path, b.line, b.col, &via);
                        }
                    }
                }
                for c in &facts.calls {
                    if c.idx <= a.idx || c.idx > a.scope_end || !resolvable(c) {
                        continue;
                    }
                    if let Some(callees) = fn_names.get(c.method.as_str()) {
                        for &(cm, cf) in callees {
                            if (cm, cf) == (mi, fi) {
                                continue;
                            }
                            for dst in lockset.get(&(cm, cf)).into_iter().flatten() {
                                record_edge(&mut edges, src, dst, &m.path, c.line, c.col, &via);
                            }
                        }
                    }
                }
            }
        }
    }

    // Self-edges: re-acquiring a held, non-reentrant lock.
    for ((src, dst), (file, line, col, via)) in &edges {
        if src == dst {
            findings.push(Finding::new(
                "lock-order",
                file,
                *line,
                *col,
                format!(
                    "lock `{src}` acquired while already held in `{via}` — self-deadlock on a non-reentrant lock"
                ),
            ));
        }
    }
    // Cycles among distinct locks: DFS over the edge set.
    let graph: BTreeMap<&str, Vec<&str>> = {
        let mut g: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (src, dst) in edges.keys() {
            if src != dst {
                g.entry(src.as_str()).or_default().push(dst.as_str());
            }
        }
        g
    };
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for &start in graph.keys() {
        let mut stack = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            for &next in graph.get(node).into_iter().flatten() {
                if next == start {
                    let members: BTreeSet<String> = path.iter().map(|s| s.to_string()).collect();
                    if reported.insert(members) {
                        let (file, line, col, via) = &edges[&(node.to_string(), next.to_string())];
                        let cycle = path.join(" → ");
                        findings.push(Finding::new(
                            "lock-order",
                            file,
                            *line,
                            *col,
                            format!(
                                "lock-acquisition cycle {cycle} → {start} (closing edge in `{via}`) — concurrent threads taking these locks in different orders can deadlock"
                            ),
                        ));
                    }
                } else if !path.contains(&next) && path.len() < 8 {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    findings
}

fn record_edge(
    edges: &mut BTreeMap<(String, String), (String, u32, u32, String)>,
    src: &str,
    dst: &str,
    file: &str,
    line: u32,
    col: u32,
    via: &str,
) {
    edges
        .entry((src.to_string(), dst.to_string()))
        .or_insert_with(|| (file.to_string(), line, col, via.to_string()));
}

fn qualified(owner: Option<&str>, name: &str) -> String {
    match owner {
        Some(o) => format!("{o}::{name}"),
        None => name.to_string(),
    }
}
