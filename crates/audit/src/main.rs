//! CLI for the workspace invariant linter.
//!
//! ```text
//! nimbus-audit check [--root DIR] [--json] [--diff BASE] [--bench-json PATH]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use nimbus_audit::{audit_workspace, find_root, render_json};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
nimbus-audit — workspace invariant linter for the Nimbus serving path

USAGE:
    nimbus-audit check [--root DIR] [--json] [--diff BASE] [--bench-json PATH]

OPTIONS:
    --json              machine-readable findings with stable ids + doc anchors
    --root DIR          workspace root (default: walk up from the cwd)
    --diff BASE         incremental mode: analyze the full workspace (the lock
                        graph is whole-program), but report only findings in
                        files changed since the git ref BASE (plus untracked)
    --bench-json PATH   write audit runtime (files/s, findings) as JSON

RULES:
    determinism       no wall-clock / ambient RNG / env reads / HashMap order
                      in the deterministic quote-commit-noise modules
    no-panic          no unwrap/expect/panic!/todo!/unimplemented!/indexing
                      in the non-test serving hot path
    unsafe-safety     every `unsafe` carries an adjacent // SAFETY: comment
    float-eq          no ==/!= against float literals in pricing code
    wire-sync         wire.rs opcode + ErrorCode tables match DESIGN.md
    lock-order        no lock-acquisition cycles; no lock held across fsync
    durability-order  commit paths follow charge -> append -> record, with
                      refund on journal failure and dedup claims resolved
    money-safety      no unguarded f64 money arithmetic (int casts, exact
                      equality, accumulation without finiteness checks)

Rule reference: crates/audit/RULES.md

SUPPRESSION (reason mandatory):
    // nimbus-audit: allow(rule-name) — why this is sound
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut command: Option<String> = None;
    let mut diff_base: Option<String> = None;
    let mut bench_json: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("error: --root needs a directory argument\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--diff" => {
                i += 1;
                match args.get(i) {
                    Some(base) => diff_base = Some(base.clone()),
                    None => {
                        eprintln!("error: --diff needs a git ref argument\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--bench-json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => bench_json = Some(PathBuf::from(path)),
                    None => {
                        eprintln!("error: --bench-json needs a file argument\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "check" if command.is_none() => command = Some("check".to_string()),
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if command.as_deref() != Some("check") {
        eprintln!("error: expected the `check` subcommand\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
        Some(r) => r,
        None => {
            eprintln!("error: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let mut report = match audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: audit failed: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();

    if let Some(base) = &diff_base {
        let changed = match changed_files(&root, base) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: --diff {base}: {e}");
                return ExitCode::from(2);
            }
        };
        report
            .findings
            .retain(|f| changed.contains(f.file.as_str()) || f.file == "DESIGN.md");
        eprintln!(
            "nimbus-audit: diff mode vs {base}: {} changed file(s) in scope",
            changed.len()
        );
    }

    if let Some(path) = &bench_json {
        let elapsed_ms = elapsed.as_secs_f64() * 1e3;
        let files_per_sec = report.files_scanned as f64 / elapsed.as_secs_f64().max(1e-9);
        let body = format!(
            "{{\"bench\":\"audit_workspace\",\"files_scanned\":{},\"findings\":{},\"suppressions\":{},\"elapsed_ms\":{:.3},\"files_per_sec\":{:.1}}}\n",
            report.files_scanned,
            report.findings.len(),
            report.suppressions_used,
            elapsed_ms,
            files_per_sec,
        );
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: --bench-json {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        println!("{}", render_json(&report.findings));
    } else {
        for f in &report.findings {
            eprint!("{}", f.render());
            eprintln!();
        }
        eprintln!(
            "nimbus-audit: {} file(s) scanned, {} finding(s), {} suppression(s) honored",
            report.files_scanned,
            report.findings.len(),
            report.suppressions_used
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Workspace-relative paths changed since `base`: `git diff --name-only
/// <base>` plus untracked files. The analysis itself always runs on the
/// whole workspace (the lock graph is interprocedural); only reporting
/// is filtered.
fn changed_files(root: &Path, base: &str) -> Result<std::collections::BTreeSet<String>, String> {
    let mut out = std::collections::BTreeSet::new();
    for extra in [
        &["diff", "--name-only", base][..],
        &["ls-files", "--others", "--exclude-standard"][..],
    ] {
        let cmd = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(extra)
            .output()
            .map_err(|e| format!("failed to run git: {e}"))?;
        if !cmd.status.success() {
            return Err(format!(
                "git {} failed: {}",
                extra.join(" "),
                String::from_utf8_lossy(&cmd.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&cmd.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                out.insert(line.to_string());
            }
        }
    }
    Ok(out)
}
