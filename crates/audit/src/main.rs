//! CLI for the workspace invariant linter.
//!
//! ```text
//! nimbus-audit check [--root DIR] [--json]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use nimbus_audit::{audit_workspace, find_root, render_json};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
nimbus-audit — workspace invariant linter for the Nimbus serving path

USAGE:
    nimbus-audit check [--root DIR] [--json]

RULES:
    determinism    no wall-clock / ambient RNG / env reads / HashMap order
                   in the deterministic quote-commit-noise modules
    no-panic       no unwrap/expect/panic!/todo!/unimplemented!/indexing
                   in the non-test serving hot path
    unsafe-safety  every `unsafe` carries an adjacent // SAFETY: comment
    float-eq       no ==/!= against float literals in pricing code
    wire-sync      wire.rs opcode + ErrorCode tables match DESIGN.md

SUPPRESSION (reason mandatory):
    // nimbus-audit: allow(rule-name) — why this is sound
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut command: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("error: --root needs a directory argument\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "check" if command.is_none() => command = Some("check".to_string()),
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if command.as_deref() != Some("check") {
        eprintln!("error: expected the `check` subcommand\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
        Some(r) => r,
        None => {
            eprintln!("error: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: audit failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", render_json(&report.findings));
    } else {
        for f in &report.findings {
            eprint!("{}", f.render());
            eprintln!();
        }
        eprintln!(
            "nimbus-audit: {} file(s) scanned, {} finding(s), {} suppression(s) honored",
            report.files_scanned,
            report.findings.len(),
            report.suppressions_used
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
