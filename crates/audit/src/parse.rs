//! A lightweight recursive-descent item parser over the token stream.
//!
//! This is not a Rust grammar — it recovers exactly the structure the
//! dataflow rules need from [`crate::lexer`]'s tokens: `impl` blocks (so
//! functions get a qualified owner), `fn` items with their body token
//! ranges and parameter names, and `struct` fields whose declared type is
//! a `Mutex`/`RwLock` (the workspace's lock inventory). Everything else —
//! expressions, closures, match arms — stays a flat token range inside
//! the owning function's body, which is what the fact extractor
//! ([`crate::facts`]) walks.
//!
//! The parser is resilient by construction: it only reacts to the `impl`,
//! `struct`, and `fn` keywords and otherwise tracks brace depth, so
//! macros, attributes, and future syntax flow through untouched.

use crate::lexer::{Token, TokenKind};

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The `impl` type the function lives in, if any.
    pub owner: Option<String>,
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword (1-based).
    pub line: u32,
    /// Parameter identifiers, in order (excluding `self`).
    pub params: Vec<String>,
    /// Whether the declared return type mentions a `*Guard` type — the
    /// signature of a lock-wrapper helper like `lock_state()`.
    pub returns_guard: bool,
    /// Body token range into [`FileAst::code`]: `(open_brace, close_brace)`,
    /// both inclusive.
    pub body: (usize, usize),
}

/// A struct field declared as a lock (`Mutex<…>` / `RwLock<…>` /
/// `StdMutex<…>`, possibly nested as in `Vec<Mutex<…>>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockField {
    /// The declaring struct.
    pub owner: String,
    /// The field name.
    pub field: String,
}

/// The parsed shape of one file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// Code tokens (comments stripped), the index space every range uses.
    pub code: Vec<Token>,
    /// All parsed functions, in source order.
    pub fns: Vec<FnItem>,
    /// Lock-typed struct fields declared in this file.
    pub lock_fields: Vec<LockField>,
}

/// Type names that make a struct field part of the lock inventory.
const LOCK_TYPES: &[&str] = &["Mutex", "RwLock", "StdMutex", "StdRwLock"];

/// Angle-bracket depth delta of one punct token. The lexer merges
/// operators greedily, so `Vec<Mutex<T>>` ends in a single `>>` token.
fn angle(text: &str) -> i32 {
    match text {
        "<" => 1,
        ">" => -1,
        "<<" => 2,
        ">>" => -2,
        _ => 0,
    }
}

/// Parses one file's token stream into its [`FileAst`].
pub fn parse_file(tokens: &[Token]) -> FileAst {
    let code: Vec<Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .cloned()
        .collect();
    let mut ast = FileAst {
        fns: Vec::new(),
        lock_fields: Vec::new(),
        code,
    };
    // (owner, body_end) for every impl block seen, innermost-last lookup.
    let mut impls: Vec<(String, usize, usize)> = Vec::new();

    let n = ast.code.len();
    let mut i = 0;
    while i < n {
        let t = &ast.code[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                if let Some((owner, open)) = impl_header(&ast.code, i) {
                    if let Some(close) = matching_brace(&ast.code, open) {
                        impls.push((owner, open, close));
                    }
                    // Descend into the impl body for its fns.
                    i = open + 1;
                    continue;
                }
            }
            "struct" => {
                if let Some(next) = struct_fields(&ast.code, i, &mut ast.lock_fields) {
                    i = next;
                    continue;
                }
            }
            "fn" => {
                if let Some((item, next)) = fn_item(&ast.code, i, &impls) {
                    ast.fns.push(item);
                    // Descend into the body: nested fns are still items.
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Owners for fns parsed before their impl's close index was known are
    // resolved below (impl_header pushes before the fn scan reaches the
    // body), so re-resolve every fn against the final impl list.
    for f in &mut ast.fns {
        f.owner = impls
            .iter()
            .filter(|(_, open, close)| (*open..=*close).contains(&f.body.0))
            .min_by_key(|(_, open, close)| close - open)
            .map(|(owner, _, _)| owner.clone());
    }
    ast
}

/// The index of the `}` matching the `{` at `open`, if balanced.
pub fn matching_brace(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in code.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.checked_sub(1)?;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Parses `impl [<…>] Type [for Type]` starting at the `impl` keyword,
/// returning the implemented type name and the index of the body `{`.
fn impl_header(code: &[Token], at: usize) -> Option<(String, usize)> {
    let mut i = at + 1;
    let mut depth = 0i32;
    let mut after_for: Option<usize> = None;
    let open = loop {
        let t = code.get(i)?;
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "->") => {}
            (TokenKind::Punct, p) if angle(p) != 0 => depth += angle(p),
            (TokenKind::Ident, "for") if depth == 0 => after_for = Some(i + 1),
            (TokenKind::Punct, "{") if depth <= 0 => break i,
            (TokenKind::Punct, ";") => return None, // `impl Trait for T;` — not a block
            _ => {}
        }
        i += 1;
    };
    // The implemented type: first plain identifier after `for` (trait
    // impls) or after the impl generics (inherent impls).
    let start = after_for.unwrap_or(at + 1);
    let mut depth = 0i32;
    for t in code.iter().take(open).skip(start) {
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, p) if angle(p) != 0 => depth += angle(p),
            (TokenKind::Ident, "dyn" | "where" | "for") => {}
            (TokenKind::Ident, name) if depth == 0 => return Some((name.to_string(), open)),
            _ => {}
        }
    }
    None
}

/// Collects lock-typed fields of `struct Name { … }`. Returns the index
/// just past the struct body, or `None` for tuple/unit structs.
fn struct_fields(code: &[Token], at: usize, out: &mut Vec<LockField>) -> Option<usize> {
    let name = code.get(at + 1)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    // Find the body `{` before any `;` (unit/tuple structs end with `;`).
    let mut i = at + 2;
    let mut adepth = 0i32;
    let open = loop {
        let t = code.get(i)?;
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, p) if angle(p) != 0 => adepth += angle(p),
            (TokenKind::Punct, "{") if adepth <= 0 => break i,
            (TokenKind::Punct, ";" | "(") => return None,
            _ => {}
        }
        i += 1;
    };
    let close = matching_brace(code, open)?;
    // Fields: `ident :` at depth 1; the type runs to the `,` at depth 1.
    let mut depth = 0i32;
    let mut i = open;
    while i < close {
        let t = &code[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                _ => {}
            }
        }
        if depth == 1
            && code[i].kind == TokenKind::Ident
            && code.get(i + 1).is_some_and(|n| n.text == ":")
        {
            // Scan the type until the field separator.
            let mut j = i + 2;
            let mut tdepth = 0i32;
            let mut is_lock = false;
            while j < close {
                let ty = &code[j];
                if ty.kind == TokenKind::Punct {
                    match ty.text.as_str() {
                        "(" | "[" => tdepth += 1,
                        ")" | "]" => tdepth -= 1,
                        "," if tdepth <= 0 => break,
                        p => tdepth += angle(p),
                    }
                } else if ty.kind == TokenKind::Ident && LOCK_TYPES.contains(&ty.text.as_str()) {
                    is_lock = true;
                }
                j += 1;
            }
            if is_lock {
                out.push(LockField {
                    owner: name.text.clone(),
                    field: code[i].text.clone(),
                });
            }
            i = j;
            continue;
        }
        i += 1;
    }
    Some(close + 1)
}

/// Parses one `fn` item starting at the `fn` keyword. Returns the item
/// and the index just past the signature (inside the body, so nested
/// items are still discovered).
fn fn_item(code: &[Token], at: usize, impls: &[(String, usize, usize)]) -> Option<(FnItem, usize)> {
    let name = code.get(at + 1)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    // Skip generics to the parameter list.
    let mut i = at + 2;
    let mut adepth = 0i32;
    loop {
        let t = code.get(i)?;
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "(") if adepth <= 0 => break,
            (TokenKind::Punct, "{" | ";") => return None,
            (TokenKind::Punct, p) if angle(p) != 0 => adepth += angle(p),
            _ => {}
        }
        i += 1;
    }
    let params_open = i;
    let params_close = matching_paren(code, params_open)?;
    // Parameter names: `ident :` at paren depth 1.
    let mut params = Vec::new();
    let mut depth = 0i32;
    for k in params_open..params_close {
        let t = &code[k];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                p => depth += angle(p),
            }
        }
        if depth == 1
            && t.kind == TokenKind::Ident
            && t.text != "self"
            && t.text != "mut"
            && code.get(k + 1).is_some_and(|n| n.text == ":")
        {
            params.push(t.text.clone());
        }
    }
    // Return type tokens run from the `)` to the body `{` (or a `;` for
    // bodyless trait methods).
    let mut j = params_close + 1;
    let mut adepth = 0i32;
    let mut returns_guard = false;
    let open = loop {
        let t = code.get(j)?;
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "{") if adepth <= 0 => break j,
            (TokenKind::Punct, ";") if adepth <= 0 => return None,
            (TokenKind::Punct, p) if angle(p) != 0 => adepth += angle(p),
            (TokenKind::Ident, text) if text.ends_with("Guard") => returns_guard = true,
            _ => {}
        }
        j += 1;
    };
    let close = matching_brace(code, open)?;
    let owner = impls
        .iter()
        .filter(|(_, o, c)| (*o..=*c).contains(&open))
        .min_by_key(|(_, o, c)| c - o)
        .map(|(owner, _, _)| owner.clone());
    Some((
        FnItem {
            owner,
            name: name.text.clone(),
            line: code[at].line,
            params,
            returns_guard,
            body: (open, close),
        },
        open + 1,
    ))
}

/// The index of the `)` matching the `(` at `open`.
pub fn matching_paren(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in code.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth = depth.checked_sub(1)?;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileAst {
        parse_file(&lex(src))
    }

    #[test]
    fn fn_items_get_their_impl_owner() {
        let ast = parse(
            "struct A;\nimpl A {\n    fn one(&self) -> u32 { 1 }\n    pub fn two(x: u64, mut y: f64) -> f64 { y }\n}\nfn free() {}\n",
        );
        let names: Vec<(Option<&str>, &str)> = ast
            .fns
            .iter()
            .map(|f| (f.owner.as_deref(), f.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![(Some("A"), "one"), (Some("A"), "two"), (None, "free")]
        );
        assert_eq!(ast.fns[1].params, vec!["x", "y"]);
    }

    #[test]
    fn trait_impls_resolve_to_the_implementing_type() {
        let ast = parse("impl Drop for Server {\n    fn drop(&mut self) {}\n}\n");
        assert_eq!(ast.fns[0].owner.as_deref(), Some("Server"));
    }

    #[test]
    fn generic_impls_and_fns_parse() {
        let ast = parse(
            "impl<T: Clone> Holder<T> {\n    fn get<U: Into<T>>(&self, u: U) -> T { u.into() }\n}\n",
        );
        assert_eq!(ast.fns[0].owner.as_deref(), Some("Holder"));
        assert_eq!(ast.fns[0].name, "get");
        assert_eq!(ast.fns[0].params, vec!["u"]);
    }

    #[test]
    fn lock_fields_are_collected_including_nested() {
        let ast = parse(
            "struct Broker {\n    optimal: RwLock<Option<Model>>,\n    shards: Vec<Mutex<Shard>>,\n    plain: u64,\n    journal: Option<GroupCommit>,\n}\nstruct G { inner: StdMutex<Q> }\n",
        );
        assert_eq!(
            ast.lock_fields,
            vec![
                LockField {
                    owner: "Broker".into(),
                    field: "optimal".into()
                },
                LockField {
                    owner: "Broker".into(),
                    field: "shards".into()
                },
                LockField {
                    owner: "G".into(),
                    field: "inner".into()
                },
            ]
        );
    }

    #[test]
    fn guard_returning_wrappers_are_flagged() {
        let ast = parse(
            "impl T {\n    fn lock_state(&self) -> std::sync::MutexGuard<'_, S> { self.state.lock().unwrap() }\n    fn plain(&self) -> u64 { 0 }\n}\n",
        );
        assert!(ast.fns[0].returns_guard);
        assert!(!ast.fns[1].returns_guard);
    }

    #[test]
    fn bodyless_trait_methods_are_skipped() {
        let ast = parse(
            "trait T {\n    fn decl(&self) -> u32;\n    fn with_default(&self) -> u32 { 1 }\n}\n",
        );
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "with_default");
    }
}
