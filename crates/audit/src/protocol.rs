//! Rule `durability-order`: the commit protocol as a checked state machine.
//!
//! The broker's money-durability contract (DESIGN.md §Static analysis &
//! invariants) is:
//!
//! ```text
//!   charge(budget) ──► journal append (fsync) ──► dedup resolve ──► ACK
//!        │                    │
//!        │                    └─ journal failure ──► refund(budget)
//!        └─ insufficient budget ──► reject (no journal write)
//! ```
//!
//! This pass classifies every call site in `broker.rs` into protocol
//! events, folds called local functions' events into their callers
//! (fixpoint over the file's call graph, events inheriting the call
//! site's position), and then checks each `commit*` entry point's event
//! sequence:
//!
//! - **C1** no budget charge after the journal append — money must be
//!   reserved before bytes are durable, or a crash double-spends.
//! - **C2** an append must be followed by a ledger `record_*`; recording
//!   before the append would ACK a sale the journal never saw.
//! - **C3** a path that charges and appends must carry a refund edge
//!   (the journal-failure arm) at/after the append.
//! - **C4** no dedup claim after the append — claims gate duplicate
//!   work, so they precede durability.
//! - **C5** dedup resolution happens at/after the ledger record — a
//!   resolve published before the record hands waiters an unrecorded
//!   sale.
//! - **C6** a claim with no resolution on any arm leaks the claim and
//!   wedges every duplicate submitter forever.
//!
//! Positions compare with ≤/≥ so a pure delegating wrapper — all events
//! inherited at one call site — trivially satisfies the ordering.

use crate::facts::{fn_facts, FnFacts};
use crate::parse::FileAst;
use crate::testmap::TestMap;
use crate::Finding;
use std::collections::BTreeMap;

/// Files subject to the durability-order rule.
pub fn in_scope(path: &str) -> bool {
    path.ends_with("market/src/broker.rs") || path.contains("durability_order")
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Event {
    Charge,
    Refund,
    Claim,
    Resolve,
    Append,
    Record,
}

/// Classify a direct call site into a protocol event, if any.
fn classify(chain: &[String], method: &str) -> Option<Event> {
    let chain_has = |needle: &str| chain.iter().any(|s| s.contains(needle));
    let m = method;
    if (m.starts_with("charge") || m.starts_with("try_charge")) && chain_has("account") {
        return Some(Event::Charge);
    }
    if m.starts_with("refund") && chain_has("account") {
        return Some(Event::Refund);
    }
    if m.starts_with("claim") && chain_has("dedup") {
        return Some(Event::Claim);
    }
    if m.starts_with("resolve") && chain_has("dedup") {
        return Some(Event::Resolve);
    }
    if (m == "append_sale" || m == "append_sales") && chain_has("journal") {
        return Some(Event::Append);
    }
    if m == "record_prepared" || m == "record_assigned" {
        return Some(Event::Record);
    }
    None
}

/// Run the durability-order rule over one parsed file. Findings are
/// unfiltered — the caller applies suppressions.
pub fn check(path: &str, ast: &FileAst, tests: &TestMap, out: &mut Vec<Finding>) {
    if !in_scope(path) {
        return;
    }
    let facts: Vec<FnFacts> = ast.fns.iter().map(|f| fn_facts(ast, f)).collect();

    // Direct events per function, positioned at the call token index.
    let mut events: Vec<Vec<(Event, usize, u32, u32)>> = ast
        .fns
        .iter()
        .zip(&facts)
        .map(|(_, ff)| {
            ff.calls
                .iter()
                .filter_map(|c| classify(&c.chain, &c.method).map(|e| (e, c.idx, c.line, c.col)))
                .collect()
        })
        .collect();

    // Fixpoint: fold callee summaries into callers. A call to a local
    // fn that (transitively) performs events contributes those events at
    // the call site's own position — ordering inside the callee is the
    // callee's responsibility, checked when the callee is itself a root
    // or folded transparently here for wrappers.
    let by_name: BTreeMap<&str, Vec<usize>> = {
        let mut m: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in ast.fns.iter().enumerate() {
            m.entry(f.name.as_str()).or_default().push(i);
        }
        m
    };
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 16 {
        changed = false;
        rounds += 1;
        for i in 0..ast.fns.len() {
            let mut add = Vec::new();
            for c in &facts[i].calls {
                // Bare-name resolution is only sound for `self.method()`
                // and free calls (see `lockgraph`): `prepare.events.len()`
                // must not fold a local `len`'s summary in.
                if !(c.chain.is_empty() || c.chain == ["self"]) {
                    continue;
                }
                let Some(callees) = by_name.get(c.method.as_str()) else {
                    continue;
                };
                for &j in callees {
                    if j == i {
                        continue;
                    }
                    for (e, _, _, _) in events[j].clone() {
                        if !events[i]
                            .iter()
                            .chain(add.iter())
                            .any(|(e2, idx2, _, _)| *e2 == e && *idx2 == c.idx)
                        {
                            add.push((e, c.idx, c.line, c.col));
                        }
                    }
                }
            }
            if !add.is_empty() {
                events[i].extend(add);
                changed = true;
            }
        }
    }

    // Check every commit* entry point.
    for (i, f) in ast.fns.iter().enumerate() {
        if !f.name.starts_with("commit") || tests.is_test_line(f.line) {
            continue;
        }
        let evs = &events[i];
        if evs.is_empty() {
            continue;
        }
        let pos = |e: Event| -> Vec<usize> {
            evs.iter()
                .filter(|(k, ..)| *k == e)
                .map(|(_, idx, ..)| *idx)
                .collect()
        };
        let at = |e: Event, idx: usize| -> (u32, u32) {
            evs.iter()
                .find(|(k, i2, ..)| *k == e && *i2 == idx)
                .map(|(_, _, l, c)| (*l, *c))
                .unwrap_or((f.line, 1))
        };
        let name = &f.name;
        let appends = pos(Event::Append);
        let first_append = appends.iter().min().copied();

        if let Some(ap) = first_append {
            // C1: charge strictly after the append.
            for &ch in pos(Event::Charge).iter().filter(|&&ch| ch > ap) {
                let (l, c) = at(Event::Charge, ch);
                out.push(Finding::new("durability-order", path, l, c, format!(
                    "`{name}` charges the buyer budget after the journal append — budget must be reserved before bytes are durable (charge → append → refund-on-failure)"
                )));
            }
            // C2: an append must be followed by a ledger record; a
            // record strictly before the append ACKs an unjournaled sale.
            let records = pos(Event::Record);
            if records.is_empty() {
                let (l, c) = at(Event::Append, ap);
                out.push(Finding::new("durability-order", path, l, c, format!(
                    "`{name}` journals a sale but never records it in the ledger — the commit path must end in `record_prepared`/`record_assigned` after the append"
                )));
            }
            for &r in records.iter().filter(|&&r| r < ap) {
                let (l, c) = at(Event::Record, r);
                out.push(Finding::new("durability-order", path, l, c, format!(
                    "`{name}` records the sale in the ledger before the journal append — a crash between record and append ACKs a sale the journal never saw"
                )));
            }
            // C3: charge + append ⇒ refund edge at/after the append.
            if !pos(Event::Charge).is_empty() && !pos(Event::Refund).iter().any(|&r| r >= ap) {
                let (l, c) = at(Event::Append, ap);
                out.push(Finding::new("durability-order", path, l, c, format!(
                    "`{name}` charges the budget and journals, but has no refund on the journal-failure edge — a failed append permanently eats the buyer's money"
                )));
            }
            // C4: dedup claim strictly after the append.
            for &cl in pos(Event::Claim).iter().filter(|&&cl| cl > ap) {
                let (l, c) = at(Event::Claim, cl);
                out.push(Finding::new("durability-order", path, l, c, format!(
                    "`{name}` claims the dedup slot after the journal append — duplicates must be fenced before durable work, not after"
                )));
            }
        }
        // C5: resolve must not precede the ledger record when both exist.
        let records = pos(Event::Record);
        let resolves = pos(Event::Resolve);
        if let (Some(&first_record), false) = (records.iter().min(), resolves.is_empty()) {
            if !resolves.iter().any(|&r| r >= first_record) {
                let (l, c) = at(Event::Resolve, *resolves.iter().max().unwrap());
                out.push(Finding::new("durability-order", path, l, c, format!(
                    "`{name}` resolves the dedup claim before recording the sale — waiters observe a sale the ledger doesn't have yet"
                )));
            }
        }
        // C6: claim without any resolution wedges duplicate submitters.
        if !pos(Event::Claim).is_empty() && resolves.is_empty() {
            let &cl = pos(Event::Claim).iter().min().unwrap();
            let (l, c) = at(Event::Claim, cl);
            out.push(Finding::new("durability-order", path, l, c, format!(
                "`{name}` claims a dedup slot but never resolves it on any arm — duplicate submitters park on the condvar forever"
            )));
        }
    }
}
