//! The domain-invariant rules and their scopes.
//!
//! | rule | scope | invariant |
//! |---|---|---|
//! | `determinism` | designated deterministic modules | noise/replay is a pure function of `(seed, tx_id, x)`: no wall-clock, ambient RNG, env reads, or hash-order dependence |
//! | `no-panic` | serving hot path, non-test | admission control must answer, not abort: no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/indexing |
//! | `unsafe-safety` | whole workspace | every `unsafe` carries an adjacent `// SAFETY:` comment |
//! | `float-eq` | pricing code (`core`, `optim`), non-test | no `==`/`!=` against float literals (menus are grids, compare with tolerances) |
//! | `wire-sync` | `wire.rs`/`error.rs` vs `DESIGN.md` | opcode and error-code tables cannot drift from the documented protocol |
//! | `lock-order` | `market` + `server`, non-test | no lock-acquisition cycles; no lock held across an fsync ([`crate::lockgraph`]) |
//! | `durability-order` | `broker.rs` commit paths | charge → append → record, refund on failure, claims resolved ([`crate::protocol`]) |
//! | `money-safety` | `market` + `server`, non-test | no unguarded f64 money arithmetic: int casts, exact equality, unchecked accumulation |
//!
//! Scopes are path prefixes relative to the workspace root. The first
//! five rules are token matchers — see [`crate::lexer`] for what keeps
//! them honest; the last three run on the parsed AST ([`crate::parse`])
//! with per-function dataflow facts ([`crate::facts`]).

use crate::facts::{fn_facts, is_money_ident};
use crate::lexer::{Token, TokenKind};
use crate::parse::parse_file;
use crate::suppress;
use crate::testmap::TestMap;
use crate::Finding;

/// All rule names, for suppression validation and `--help`.
pub const RULE_NAMES: &[&str] = &[
    "determinism",
    "no-panic",
    "unsafe-safety",
    "float-eq",
    "wire-sync",
    "lock-order",
    "durability-order",
    "money-safety",
    "suppression",
];

/// Files whose code must be deterministic: the quote/commit/noise path
/// and everything replay depends on. `market::simulation` qualifies since
/// its wall-clock moved behind a caller-supplied clock closure, and
/// `server::event` since its deadline timers run on an injected clock.
/// `randkit::snapped` and `market::account` joined with the privacy
/// hardening: the snapped sampler promises bitwise-identical draws for a
/// given `(seed, tx_id, x)`, and budget accounting must replay to the
/// same ledger from the journal alone.
pub const DETERMINISTIC_FILES: &[&str] = &[
    "crates/core/src/mechanism.rs",
    "crates/core/src/curve_provider.rs",
    "crates/market/src/account.rs",
    "crates/market/src/broker.rs",
    "crates/market/src/journal.rs",
    "crates/market/src/ledger.rs",
    "crates/market/src/marketplace.rs",
    "crates/market/src/simulation.rs",
    "crates/randkit/src/snapped.rs",
    "crates/server/src/event.rs",
];

/// Whole-directory determinism scopes. The agent-ecology simulator
/// promises bitwise-identical journals for the same `(scenario, seed)`,
/// so every source file in it is under the same discipline as the
/// serving path (wall-clock only via the injected clock, ordered maps,
/// seeded RNG streams).
pub const DETERMINISTIC_PREFIXES: &[&str] = &["crates/agents/src/"];

/// The serving hot path: panic here kills a worker thread under load.
pub const HOT_PATH_PREFIXES: &[&str] = &["crates/server/src/"];

/// Hot-path files outside the prefix list. `account.rs` is here because
/// the budget check runs inside every metered commit before durability.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/market/src/account.rs",
    "crates/market/src/broker.rs",
    "crates/market/src/journal.rs",
    "crates/market/src/ledger.rs",
    "crates/market/src/marketplace.rs",
];

/// Pricing code under float discipline.
pub const FLOAT_SCOPE_PREFIXES: &[&str] = &["crates/core/src/", "crates/optim/src/"];

/// Money-handling code: everything that touches budgets, prices, or
/// revenue between the wire and the journal.
pub const MONEY_SCOPE_PREFIXES: &[&str] = &["crates/market/src/", "crates/server/src/"];

/// Integer types a money value must never be `as`-cast into (truncation
/// and NaN-to-zero are both silent).
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Keywords that may legitimately precede `[` without it being an index
/// expression (slice patterns, array types after `mut`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "in", "return", "if", "else", "match", "move", "as", "let", "static", "const",
    "break", "continue", "dyn", "where", "unsafe", "loop", "while", "for", "box", "yield",
];

fn uses_path(path: &str, prefixes: &[&str], files: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p)) || files.contains(&path)
}

/// Runs every token-level rule over one file. `path` is workspace-relative
/// with `/` separators; it selects which rules apply. Returns unsuppressed
/// findings plus the number of suppressions that actually fired.
pub fn check_file(path: &str, src: &str) -> (Vec<Finding>, usize) {
    let tokens = crate::lexer::lex(src);
    let test_map =
        if path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/") {
            TestMap::whole_file()
        } else {
            TestMap::from_tokens(&tokens)
        };

    let mut findings = Vec::new();
    let suppressions = suppress::collect(&tokens, path, &mut findings);

    let mut raw = Vec::new();
    if uses_path(path, DETERMINISTIC_PREFIXES, DETERMINISTIC_FILES) {
        determinism(path, &tokens, &test_map, &mut raw);
    }
    if uses_path(path, HOT_PATH_PREFIXES, HOT_PATH_FILES) {
        no_panic(path, &tokens, &test_map, &mut raw);
    }
    unsafe_safety(path, src, &tokens, &mut raw);
    if uses_path(path, FLOAT_SCOPE_PREFIXES, &[]) {
        float_eq(path, &tokens, &test_map, &mut raw);
    }
    if uses_path(path, MONEY_SCOPE_PREFIXES, &[]) {
        money_safety(path, &tokens, &test_map, &mut raw);
    }
    if crate::protocol::in_scope(path) {
        let ast = parse_file(&tokens);
        crate::protocol::check(path, &ast, &test_map, &mut raw);
    }

    // One finding per (rule, line): `HashSet::new()` names the marker
    // twice on one line but is one violation to fix.
    raw.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    let mut used = 0usize;
    for f in raw {
        if suppress::is_suppressed(&suppressions, &f.rule, f.line) {
            used += 1;
        } else {
            findings.push(f);
        }
    }
    attach_snippets(src, &mut findings);
    (findings, used)
}

/// Fills each finding's snippet from the source text.
pub fn attach_snippets(src: &str, findings: &mut [Finding]) {
    let lines: Vec<&str> = src.lines().collect();
    for f in findings {
        if f.snippet.is_empty() {
            if let Some(line) = lines.get(f.line as usize - 1) {
                f.snippet = line.to_string();
            }
        }
    }
}

/// Code tokens only (comments out), preserving order.
fn code(tokens: &[Token]) -> Vec<&Token> {
    tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect()
}

/// Rule `determinism`: no wall-clock (`SystemTime::now`, `Instant::now`),
/// no ambient RNG (`thread_rng`), no env reads (`env::var*`), and no
/// randomly-seeded `HashMap`/`HashSet` (iteration order would vary per
/// process, breaking replay) in the designated modules.
fn determinism(path: &str, tokens: &[Token], tests: &TestMap, out: &mut Vec<Finding>) {
    let code = code(tokens);
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || tests.is_test_line(t.line) {
            continue;
        }
        let next_is = |k: usize, text: &str| code.get(i + k).is_some_and(|n| n.text == text);
        match t.text.as_str() {
            "SystemTime" | "Instant" if next_is(1, "::") && next_is(2, "now") => {
                out.push(Finding::new(
                    "determinism",
                    path,
                    t.line,
                    t.col,
                    format!(
                        "`{}::now()` in a deterministic module: noise and replay must be pure in `(seed, tx_id, x)` — take the clock as a caller-supplied closure",
                        t.text
                    ),
                ));
            }
            "thread_rng" => out.push(Finding::new(
                "determinism",
                path,
                t.line,
                t.col,
                "ambient `thread_rng` in a deterministic module: derive a stream from the market seed instead",
            )),
            "HashMap" | "HashSet" => out.push(Finding::new(
                "determinism",
                path,
                t.line,
                t.col,
                format!(
                    "`{}` in a deterministic module: iteration order is seeded per-process; use `BTreeMap`/`BTreeSet` or a fixed-seed hasher",
                    t.text
                ),
            )),
            "env" if next_is(1, "::")
                && code
                    .get(i + 2)
                    .is_some_and(|n| matches!(n.text.as_str(), "var" | "vars" | "var_os" | "vars_os")) =>
            {
                out.push(Finding::new(
                    "determinism",
                    path,
                    t.line,
                    t.col,
                    "environment read in a deterministic module: thread configuration through explicit parameters",
                ));
            }
            _ => {}
        }
    }
}

/// Rule `no-panic`: `unwrap(`, `expect(`, `panic!`, `todo!`,
/// `unimplemented!`, and index/slice expressions (`expr[...]`) in
/// non-test hot-path code. Indexing is recognized as a `[` directly
/// preceded by an identifier (not a binding keyword), `)`, or `]`.
fn no_panic(path: &str, tokens: &[Token], tests: &TestMap, out: &mut Vec<Finding>) {
    let code = code(tokens);
    for (i, t) in code.iter().enumerate() {
        if tests.is_test_line(t.line) {
            continue;
        }
        let next = code.get(i + 1);
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "unwrap" | "expect" if next.is_some_and(|n| n.text == "(") => {
                    out.push(Finding::new(
                        "no-panic",
                        path,
                        t.line,
                        t.col,
                        format!(
                            "`{}()` in the serving hot path: convert to a typed error — a panic here kills a worker under load",
                            t.text
                        ),
                    ));
                }
                "panic" | "todo" | "unimplemented" if next.is_some_and(|n| n.text == "!") => {
                    out.push(Finding::new(
                        "no-panic",
                        path,
                        t.line,
                        t.col,
                        format!(
                            "`{}!` in the serving hot path: return a typed error instead",
                            t.text
                        ),
                    ));
                }
                _ => {}
            }
        }
        if t.text == "[" && i > 0 {
            let prev = code[i - 1];
            let is_index_base = match prev.kind {
                TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokenKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if is_index_base {
                out.push(Finding::new(
                    "no-panic",
                    path,
                    t.line,
                    t.col,
                    format!(
                        "index/slice `{}[…]` in the serving hot path: out-of-bounds panics; use `.get(…)` or suppress with the bounds invariant",
                        prev.text
                    ),
                ));
            }
        }
    }
}

/// Rule `unsafe-safety`: every `unsafe` token needs a `// SAFETY:` comment
/// on the same line or in the contiguous comment block directly above.
fn unsafe_safety(path: &str, src: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let src_lines: Vec<&str> = src.lines().collect();
    let comment_on = |line: u32| -> Option<&Token> {
        tokens
            .iter()
            .find(|t| t.kind == TokenKind::Comment && t.line == line)
    };
    let code_on = |line: u32| -> bool {
        tokens
            .iter()
            .any(|t| t.kind != TokenKind::Comment && t.line == line)
    };
    for t in tokens {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        // Same line (block comments may span down onto it).
        let mut justified = tokens.iter().any(|c| {
            c.kind == TokenKind::Comment
                && c.text.contains("SAFETY:")
                && (c.line..=c.line + c.text.matches('\n').count() as u32).contains(&t.line)
        });
        // Otherwise scan the contiguous comment-only block above.
        let mut line = t.line.saturating_sub(1);
        while !justified && line >= 1 {
            match comment_on(line) {
                Some(c) if !code_on(line) => {
                    if c.text.contains("SAFETY:") {
                        justified = true;
                    }
                    line -= 1;
                }
                _ => break,
            }
        }
        if !justified {
            let snippet = src_lines
                .get(t.line as usize - 1)
                .copied()
                .unwrap_or("")
                .to_string();
            let mut f = Finding::new(
                "unsafe-safety",
                path,
                t.line,
                t.col,
                "`unsafe` without an adjacent `// SAFETY:` comment stating the proof obligation",
            );
            f.snippet = snippet;
            out.push(f);
        }
    }
}

/// Rule `money-safety`: unguarded f64 arithmetic on money identifiers
/// (price/payment/budget/revenue/… names, plus `let` bindings tainted by
/// them — see [`crate::facts::is_money_ident`]). Three shapes:
///
/// 1. `money as u64` — an `as` cast to an integer type silently
///    truncates and maps NaN to zero, losing money;
/// 2. `money == x` / `money != x` — exact float equality on a money
///    value is either a bug or needs the exactness argument;
/// 3. `… += money` — accumulating money in a function with no
///    `is_finite`/`is_nan` check lets one NaN poison the running total.
///
/// A function that checks finiteness anywhere is a designated validation
/// site for accumulation; casts and equality are flagged regardless.
fn money_safety(path: &str, tokens: &[Token], tests: &TestMap, out: &mut Vec<Finding>) {
    let ast = parse_file(tokens);
    for f in &ast.fns {
        if tests.is_test_line(f.line) {
            continue;
        }
        let facts = fn_facts(&ast, f);
        let code = &ast.code;
        let money = |name: &str| is_money_ident(name) || facts.tainted.contains(name);
        let money_tok = |t: &Token| t.kind == TokenKind::Ident && money(&t.text);
        for i in f.body.0 + 1..f.body.1 {
            let t = &code[i];
            if tests.is_test_line(t.line) {
                continue;
            }
            // 1. `money as <int>`.
            if t.kind == TokenKind::Ident && t.text == "as" && i > 0 {
                let prev = &code[i - 1];
                let to_int = code
                    .get(i + 1)
                    .is_some_and(|n| INT_TYPES.contains(&n.text.as_str()));
                if money_tok(prev) && to_int {
                    out.push(Finding::new(
                        "money-safety",
                        path,
                        t.line,
                        t.col,
                        format!(
                            "`{} as {}` casts a money value to an integer — truncation and NaN→0 are silent; round explicitly and validate first",
                            prev.text,
                            code[i + 1].text
                        ),
                    ));
                }
            }
            // 2. `money ==` / `== money`.
            if t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!=") {
                let neighbor = [i.checked_sub(1), Some(i + 1)]
                    .into_iter()
                    .flatten()
                    .filter_map(|j| code.get(j))
                    .find(|n| money_tok(n));
                if let Some(n) = neighbor {
                    out.push(Finding::new(
                        "money-safety",
                        path,
                        t.line,
                        t.col,
                        format!(
                            "exact float `{}` on money value `{}` — compare with a tolerance, or suppress with the exactness argument",
                            t.text, n.text
                        ),
                    ));
                }
            }
            // 3. `lhs += money-rhs` or `money-lhs += …` without a
            //    finiteness check anywhere in the function.
            if t.kind == TokenKind::Punct && t.text == "+=" && !facts.checks_finiteness {
                let mut money_name = None;
                // LHS: walk back over the place expression.
                let mut j = i;
                while let Some(prev) = j.checked_sub(1) {
                    let p = &code[prev];
                    match (p.kind, p.text.as_str()) {
                        (TokenKind::Ident, name) => {
                            if money(name) {
                                money_name = Some(name.to_string());
                            }
                            j = prev;
                        }
                        (TokenKind::Punct, "." | "::" | "*" | "&") => j = prev,
                        (TokenKind::Punct, ")" | "]") => {
                            let closer = p.text.clone();
                            let opener = if closer == ")" { "(" } else { "[" };
                            let mut depth = 0i32;
                            let mut b = prev;
                            loop {
                                let bt = &code[b];
                                if bt.kind == TokenKind::Punct {
                                    if bt.text == closer {
                                        depth += 1;
                                    } else if bt.text == opener {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                } else if money_tok(bt) {
                                    money_name = Some(bt.text.clone());
                                }
                                match b.checked_sub(1) {
                                    Some(n2) => b = n2,
                                    None => break,
                                }
                            }
                            j = b;
                        }
                        _ => break,
                    }
                }
                // RHS up to the statement `;`: a money source makes an
                // int-counter LHS flagged too (`total += price`).
                if money_name.is_none() {
                    let mut k2 = i + 1;
                    let mut depth = 0i32;
                    while let Some(n) = code.get(k2) {
                        if n.kind == TokenKind::Punct {
                            match n.text.as_str() {
                                "(" | "[" => depth += 1,
                                ")" | "]" => depth -= 1,
                                ";" if depth <= 0 => break,
                                _ => {}
                            }
                        } else if money_tok(n) && code.get(k2 + 1).is_none_or(|x| x.text != "(") {
                            // A field access decides by the field, not
                            // the (possibly tainted) base: `row.sales`
                            // accumulates a count even when `row` also
                            // carries revenue.
                            let field_access = code.get(k2 + 1).is_some_and(|x| x.text == ".")
                                && code.get(k2 + 2).is_some_and(|x| x.kind == TokenKind::Ident);
                            if !field_access {
                                money_name = Some(n.text.clone());
                            }
                        }
                        if k2 >= f.body.1 {
                            break;
                        }
                        k2 += 1;
                    }
                }
                if let Some(name) = money_name {
                    out.push(Finding::new(
                        "money-safety",
                        path,
                        t.line,
                        t.col,
                        format!(
                            "accumulation of money value `{name}` with no finiteness check in the function — one NaN poisons the running total; guard with `is_finite` or suppress with the upstream-validation argument",
                        ),
                    ));
                }
            }
        }
    }
}

/// Rule `float-eq`: `==` or `!=` with a float literal on either side in
/// pricing code. Prices and errors live on interpolated grids — exact
/// equality is either a bug or needs a documented suppression.
fn float_eq(path: &str, tokens: &[Token], tests: &TestMap, out: &mut Vec<Finding>) {
    let code = code(tokens);
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        if tests.is_test_line(t.line) {
            continue;
        }
        let float_neighbor = [i.checked_sub(1), Some(i + 1)]
            .into_iter()
            .flatten()
            .filter_map(|j| code.get(j))
            .any(|n| n.kind == TokenKind::Float);
        if float_neighbor {
            out.push(Finding::new(
                "float-eq",
                path,
                t.line,
                t.col,
                format!(
                    "float `{}` comparison in pricing code: compare with a tolerance, or suppress with the exactness argument",
                    t.text
                ),
            ));
        }
    }
}
