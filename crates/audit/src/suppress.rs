//! Inline suppression comments.
//!
//! Syntax: `// nimbus-audit: allow(no-panic) — index is masked` — the
//! allow-list names one or more rules (comma-separated), and everything
//! after the closing paren (minus a leading `—`/`-`/`:`) is the reason.
//! The reason is **mandatory** — a suppression without one is itself a
//! finding, as is a suppression naming an unknown rule.
//!
//! A suppression covers its own line and the line immediately below it,
//! so both styles work:
//!
//! ```text
//! shards[i].lock() // nimbus-audit: allow(no-panic) — i is idx % N
//!
//! // nimbus-audit: allow(no-panic) — i is idx % N, always in bounds
//! shards[i].lock()
//! ```

use crate::lexer::{Token, TokenKind};
use crate::rules::RULE_NAMES;
use crate::Finding;

const MARKER: &str = "nimbus-audit:";

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules this comment silences.
    pub rules: Vec<String>,
    /// Line the comment starts on; it covers this line and the next.
    pub line: u32,
}

/// Extracts suppressions from a token stream. Malformed suppressions
/// (missing reason, unknown rule, unparsable allow-list) are appended to
/// `findings` under the `suppression` pseudo-rule and do **not** silence
/// anything.
pub fn collect(tokens: &[Token], file: &str, findings: &mut Vec<Finding>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::Comment {
            continue;
        }
        let Some(marker_at) = t.text.find(MARKER) else {
            continue;
        };
        let after = &t.text[marker_at + MARKER.len()..];
        if after.starts_with(':') {
            // `nimbus-audit::rule` — a rendered diagnostic id quoted in a
            // comment, not a suppression attempt.
            continue;
        }
        let rest = after.trim_start();
        let Some(args) = rest.strip_prefix("allow") else {
            findings.push(Finding::new(
                "suppression",
                file,
                t.line,
                t.col,
                "malformed suppression: expected `nimbus-audit: allow(rule) — reason`",
            ));
            continue;
        };
        let args = args.trim_start();
        let Some(close) = args.find(')') else {
            findings.push(Finding::new(
                "suppression",
                file,
                t.line,
                t.col,
                "malformed suppression: unclosed `allow(` list",
            ));
            continue;
        };
        let list = args.strip_prefix('(').map(|s| &s[..close - 1]);
        let Some(list) = list else {
            findings.push(Finding::new(
                "suppression",
                file,
                t.line,
                t.col,
                "malformed suppression: expected `(` after `allow`",
            ));
            continue;
        };
        let rules: Vec<String> = list
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let unknown: Vec<&String> = rules
            .iter()
            .filter(|r| !RULE_NAMES.contains(&r.as_str()))
            .collect();
        if rules.is_empty() || !unknown.is_empty() {
            let what = unknown
                .first()
                .map(|r| format!("unknown rule `{r}` in allow()"))
                .unwrap_or_else(|| "empty allow() list".to_string());
            findings.push(Finding::new(
                "suppression",
                file,
                t.line,
                t.col,
                format!("{what}; known rules: {}", RULE_NAMES.join(", ")),
            ));
            continue;
        }
        // Everything after the `)` — minus connective punctuation — is
        // the reason, and it is mandatory.
        let reason = args[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '-', ':', '–'])
            .trim();
        if reason.is_empty() {
            findings.push(Finding::new(
                "suppression",
                file,
                t.line,
                t.col,
                "suppression without a reason: write `allow(rule) — why this is sound`",
            ));
            continue;
        }
        out.push(Suppression {
            rules,
            line: t.line,
        });
    }
    out
}

/// Whether `finding` (by rule + line) is covered by a suppression.
pub fn is_suppressed(suppressions: &[Suppression], rule: &str, line: u32) -> bool {
    suppressions
        .iter()
        .any(|s| (s.line == line || s.line + 1 == line) && s.rules.iter().any(|r| r == rule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_reasoned_suppression() {
        let src = "// nimbus-audit: allow(no-panic) — index is masked\nx[i];\n";
        let mut findings = Vec::new();
        let sup = collect(&lex(src), "f.rs", &mut findings);
        assert!(findings.is_empty());
        assert_eq!(sup.len(), 1);
        assert!(is_suppressed(&sup, "no-panic", 1));
        assert!(is_suppressed(&sup, "no-panic", 2));
        assert!(!is_suppressed(&sup, "no-panic", 3));
        assert!(!is_suppressed(&sup, "determinism", 2));
    }

    #[test]
    fn reason_is_mandatory() {
        let src = "// nimbus-audit: allow(no-panic)\nx[i];\n";
        let mut findings = Vec::new();
        let sup = collect(&lex(src), "f.rs", &mut findings);
        assert!(sup.is_empty());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("without a reason"));
    }

    #[test]
    fn unknown_rule_is_reported() {
        let src = "// nimbus-audit: allow(made-up) — because\n";
        let mut findings = Vec::new();
        let sup = collect(&lex(src), "f.rs", &mut findings);
        assert!(sup.is_empty());
        assert!(findings[0].message.contains("unknown rule"));
    }

    #[test]
    fn multiple_rules_one_comment() {
        let src = "// nimbus-audit: allow(no-panic, determinism) — fixture\n";
        let mut findings = Vec::new();
        let sup = collect(&lex(src), "f.rs", &mut findings);
        assert!(findings.is_empty());
        assert!(is_suppressed(&sup, "no-panic", 2));
        assert!(is_suppressed(&sup, "determinism", 2));
    }
}
