//! Marks the line ranges of test-only code so rules can skip it.
//!
//! Two sources of "test code":
//!
//! * whole files under `tests/`, `benches/`, or `examples/` directories;
//! * items behind `#[cfg(test)]` (including `#[cfg(all(test, …))]`) or
//!   `#[test]` attributes — typically the `mod tests { … }` tail of a
//!   module, found by matching the braces of the attributed item.
//!
//! `#[cfg(not(test))]` is *not* test code: the scan skips `not(…)` groups
//! when looking for the `test` marker.

use crate::lexer::{Token, TokenKind};

/// Inclusive 1-based line ranges of test-only code in one file.
#[derive(Debug, Default, Clone)]
pub struct TestMap {
    ranges: Vec<(u32, u32)>,
    whole_file: bool,
}

impl TestMap {
    /// A map marking the entire file as test code.
    pub fn whole_file() -> Self {
        TestMap {
            ranges: Vec::new(),
            whole_file: true,
        }
    }

    /// Whether `line` falls inside test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.whole_file || self.ranges.iter().any(|&(s, e)| (s..=e).contains(&line))
    }

    /// Builds the map from a token stream (comments included or not —
    /// they are skipped internally).
    pub fn from_tokens(tokens: &[Token]) -> Self {
        let code: Vec<&Token> = tokens
            .iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < code.len() {
            if code[i].text == "#" && code.get(i + 1).is_some_and(|t| t.text == "[") {
                let (attr_tokens, after_attr) = attribute_group(&code, i + 2);
                if attr_is_test(&attr_tokens) {
                    let start_line = code[i].line;
                    let end = item_end(&code, after_attr);
                    let end_line = code
                        .get(end.saturating_sub(1))
                        .map(|t| t.line)
                        .unwrap_or(start_line);
                    ranges.push((start_line, end_line));
                    i = end;
                    continue;
                }
                i = after_attr;
            } else {
                i += 1;
            }
        }
        TestMap {
            ranges,
            whole_file: false,
        }
    }
}

/// Collects the tokens inside `#[ … ]` starting just past the `[`;
/// returns them plus the index just past the closing `]`.
fn attribute_group<'a>(code: &[&'a Token], mut i: usize) -> (Vec<&'a Token>, usize) {
    let mut depth = 1usize;
    let mut inner = Vec::new();
    while i < code.len() && depth > 0 {
        match code[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (inner, i + 1);
                }
            }
            _ => {}
        }
        inner.push(code[i]);
        i += 1;
    }
    (inner, i)
}

/// Whether an attribute token stream marks a test item: a bare `test`
/// (`#[test]`, `#[tokio::test]`) or a `cfg(…)` whose predicate mentions
/// `test` outside of any `not(…)` group.
fn attr_is_test(attr: &[&Token]) -> bool {
    let mut i = 0;
    while i < attr.len() {
        let t = attr[i];
        if t.kind == TokenKind::Ident && t.text == "not" {
            // Skip the balanced `not( … )` group entirely.
            if attr.get(i + 1).is_some_and(|t| t.text == "(") {
                let mut depth = 0usize;
                i += 1;
                while i < attr.len() {
                    match attr[i].text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
        } else if t.kind == TokenKind::Ident && t.text == "test" {
            return true;
        }
        i += 1;
    }
    false
}

/// Index just past the end of the item starting at `i`: skips any further
/// attributes, then runs to the first `;` at depth 0 or through the
/// matching `}` of the first `{`.
fn item_end(code: &[&Token], mut i: usize) -> usize {
    while i < code.len() && code[i].text == "#" && code.get(i + 1).is_some_and(|t| t.text == "[") {
        let (_, after) = attribute_group(code, i + 2);
        i = after;
    }
    let mut depth = 0usize;
    while i < code.len() {
        match code[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            ";" if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn live2() {}\n";
        let map = TestMap::from_tokens(&lex(src));
        assert!(!map.is_test_line(1));
        assert!(map.is_test_line(2));
        assert!(map.is_test_line(4));
        assert!(!map.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn shipped() {}\n#[cfg(all(test, unix))]\nfn gated() {}\n";
        let map = TestMap::from_tokens(&lex(src));
        assert!(!map.is_test_line(2));
        assert!(map.is_test_line(4));
    }

    #[test]
    fn test_attribute_fn() {
        let src = "#[test]\nfn check() { x.unwrap(); }\nfn live() {}\n";
        let map = TestMap::from_tokens(&lex(src));
        assert!(map.is_test_line(2));
        assert!(!map.is_test_line(3));
    }
}
