//! Rule `wire-sync`: the wire protocol's opcode and error-code tables in
//! code must match the tables documented in `DESIGN.md`.
//!
//! From the Rust side it lexes `crates/server/src/wire.rs` (and
//! `error.rs`, in case constants migrate) and extracts:
//!
//! * `const OP_<NAME>: u8 = 0x…;` — opcode constants (`OP_` stripped);
//! * the `enum ErrorCode { Variant = n, … }` discriminants.
//!
//! From the docs side it parses `DESIGN.md` markdown table rows of the
//! shapes `` | `0xNN` | `NAME` | `` and `` | n | `Variant` | ``. Any
//! one-sided entry or value drift is a finding — pointing at the exact
//! `DESIGN.md` row or source constant, so the fix is one edit away.

use crate::lexer::{lex, Token, TokenKind};
use crate::Finding;

/// A named numeric entry with the location it was declared at.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Uppercase opcode name (`MENU`, `R_BUSY`) or ErrorCode variant.
    pub name: String,
    /// Numeric value.
    pub value: u64,
    /// File the entry came from.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// Opcode constants (`OP_` prefix stripped) from lexed Rust source.
pub fn opcodes_from_source(file: &str, src: &str) -> Vec<Entry> {
    let tokens: Vec<Token> = lex(src)
        .into_iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        // const OP_X : u8 = <int> ;
        let window = |k: usize| tokens.get(i + k);
        let is = |k: usize, s: &str| window(k).is_some_and(|t| t.text == s);
        if tokens[i].text == "const"
            && window(1).is_some_and(|t| t.kind == TokenKind::Ident && t.text.starts_with("OP_"))
            && is(2, ":")
            && is(3, "u8")
            && is(4, "=")
            && window(5).is_some_and(|t| t.kind == TokenKind::Int)
        {
            if let (Some(name_tok), Some(val_tok)) = (window(1), window(5)) {
                if let Some(value) = parse_int(&val_tok.text) {
                    out.push(Entry {
                        name: name_tok.text.trim_start_matches("OP_").to_string(),
                        value,
                        file: file.to_string(),
                        line: name_tok.line,
                    });
                }
            }
        }
    }
    out
}

/// `ErrorCode` enum discriminants from lexed Rust source.
pub fn error_codes_from_source(file: &str, src: &str) -> Vec<Entry> {
    let tokens: Vec<Token> = lex(src)
        .into_iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "enum" && tokens.get(i + 1).is_some_and(|t| t.text == "ErrorCode") {
            // Walk the brace-delimited body collecting `Variant = n`.
            let mut j = i + 2;
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if depth == 1
                    && tokens[j].kind == TokenKind::Ident
                    && tokens.get(j + 1).is_some_and(|t| t.text == "=")
                    && tokens.get(j + 2).is_some_and(|t| t.kind == TokenKind::Int)
                {
                    if let Some(value) = tokens.get(j + 2).and_then(|t| parse_int(&t.text)) {
                        out.push(Entry {
                            name: tokens[j].text.clone(),
                            value,
                            file: file.to_string(),
                            line: tokens[j].line,
                        });
                    }
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    out
}

fn parse_int(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(
            hex.trim_end_matches(|c: char| c.is_ascii_alphabetic() && !c.is_ascii_hexdigit()),
            16,
        )
        .ok()
    } else {
        t.trim_end_matches(|c: char| c.is_ascii_alphabetic())
            .parse()
            .ok()
    }
}

/// Parses the two protocol tables out of `DESIGN.md`: returns
/// `(opcode rows, error-code rows)`.
pub fn tables_from_design(file: &str, md: &str) -> (Vec<Entry>, Vec<Entry>) {
    let mut opcodes = Vec::new();
    let mut errors = Vec::new();
    let mut in_code_fence = false;
    for (idx, raw) in md.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("```") {
            in_code_fence = !in_code_fence;
            continue;
        }
        if in_code_fence || !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim().trim_matches('`').trim())
            .collect();
        if cells.len() < 2 || cells[1].is_empty() {
            continue;
        }
        let name_ok = cells[1]
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_');
        if !name_ok {
            continue;
        }
        let lineno = idx as u32 + 1;
        if let Some(hex) = cells[0]
            .strip_prefix("0x")
            .or_else(|| cells[0].strip_prefix("0X"))
        {
            if let Ok(value) = u64::from_str_radix(hex, 16) {
                opcodes.push(Entry {
                    name: cells[1].to_string(),
                    value,
                    file: file.to_string(),
                    line: lineno,
                });
            }
        } else if let Ok(value) = cells[0].parse::<u64>() {
            errors.push(Entry {
                name: cells[1].to_string(),
                value,
                file: file.to_string(),
                line: lineno,
            });
        }
    }
    (opcodes, errors)
}

/// Cross-checks code entries against documented entries, both directions.
pub fn cross_check(kind: &str, in_code: &[Entry], in_docs: &[Entry], out: &mut Vec<Finding>) {
    for c in in_code {
        match in_docs.iter().find(|d| d.name == c.name) {
            None => out.push(Finding::new(
                "wire-sync",
                &c.file,
                c.line,
                1,
                format!(
                    "{kind} `{}` (= {:#x}) is not documented in DESIGN.md's protocol table",
                    c.name, c.value
                ),
            )),
            Some(d) if d.value != c.value => out.push(Finding::new(
                "wire-sync",
                &d.file,
                d.line,
                1,
                format!(
                    "{kind} `{}` drifted: code says {:#x} ({}:{}), DESIGN.md says {:#x}",
                    c.name, c.value, c.file, c.line, d.value
                ),
            )),
            _ => {}
        }
    }
    for d in in_docs {
        if !in_code.iter().any(|c| c.name == d.name) {
            out.push(Finding::new(
                "wire-sync",
                &d.file,
                d.line,
                1,
                format!(
                    "{kind} `{}` (= {:#x}) is documented in DESIGN.md but absent from the code",
                    d.name, d.value
                ),
            ));
        }
    }
}

/// Full wire-sync check over in-memory sources. `rust_sources` is
/// `(path, contents)` for `wire.rs` and `error.rs`.
pub fn check_wire_sync(rust_sources: &[(&str, &str)], design: (&str, &str)) -> Vec<Finding> {
    let mut opcodes = Vec::new();
    let mut codes = Vec::new();
    for (path, src) in rust_sources {
        opcodes.extend(opcodes_from_source(path, src));
        codes.extend(error_codes_from_source(path, src));
    }
    let (doc_opcodes, doc_codes) = tables_from_design(design.0, design.1);
    let mut findings = Vec::new();
    if opcodes.is_empty() {
        findings.push(Finding::new(
            "wire-sync",
            rust_sources.first().map(|(p, _)| *p).unwrap_or("wire.rs"),
            1,
            1,
            "no `const OP_*: u8` opcode constants found — wire.rs moved or changed shape",
        ));
    }
    if codes.is_empty() {
        findings.push(Finding::new(
            "wire-sync",
            rust_sources.first().map(|(p, _)| *p).unwrap_or("wire.rs"),
            1,
            1,
            "no `enum ErrorCode` discriminants found — wire.rs moved or changed shape",
        ));
    }
    cross_check("opcode", &opcodes, &doc_opcodes, &mut findings);
    cross_check("error code", &codes, &doc_codes, &mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIRE: &str = "
const OP_MENU: u8 = 0x01;
const OP_R_BUSY: u8 = 0xBB;
pub enum ErrorCode {
    /// Malformed frame.
    BadFrame = 1,
    Internal = 11,
}
";

    #[test]
    fn extracts_code_entries() {
        let ops = opcodes_from_source("wire.rs", WIRE);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].name, "MENU");
        assert_eq!(ops[0].value, 0x01);
        assert_eq!(ops[1].value, 0xBB);
        let codes = error_codes_from_source("wire.rs", WIRE);
        assert_eq!(codes.len(), 2);
        assert_eq!(
            codes[1],
            Entry {
                name: "Internal".into(),
                value: 11,
                file: "wire.rs".into(),
                line: 7,
            }
        );
    }

    #[test]
    fn in_sync_tables_are_clean() {
        let md = "| opcode | message |\n|---|---|\n| `0x01` | `MENU` |\n| `0xBB` | `R_BUSY` |\n\n| code | error |\n|---|---|\n| 1 | `BadFrame` |\n| 11 | `Internal` |\n";
        let findings = check_wire_sync(&[("wire.rs", WIRE)], ("DESIGN.md", md));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn drifted_opcode_is_flagged() {
        let md =
            "| `0x02` | `MENU` |\n| `0xBB` | `R_BUSY` |\n| 1 | `BadFrame` |\n| 11 | `Internal` |\n";
        let findings = check_wire_sync(&[("wire.rs", WIRE)], ("DESIGN.md", md));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("drifted"));
        assert_eq!(findings[0].file, "DESIGN.md");
    }

    #[test]
    fn missing_entries_both_directions() {
        let md =
            "| `0x01` | `MENU` |\n| `0x07` | `GHOST` |\n| 1 | `BadFrame` |\n| 11 | `Internal` |\n";
        let findings = check_wire_sync(&[("wire.rs", WIRE)], ("DESIGN.md", md));
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs
            .iter()
            .any(|m| m.contains("`R_BUSY`") && m.contains("not documented")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("`GHOST`") && m.contains("absent from the code")));
    }
}
