//! Walks the workspace and drives every rule over it.

use crate::lockgraph;
use crate::rules;
use crate::wire_sync;
use crate::Finding;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Result of auditing a whole workspace.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Unsuppressed findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Suppressions that actually silenced a finding.
    pub suppressions_used: usize,
}

impl AuditReport {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Directories under the root that are walked for Rust sources.
const SCAN_ROOTS: &[&str] = &["crates", "vendor", "examples", "tests"];

/// Path components that end a walk: build output and the audit's own
/// deliberately-violating fixture corpus.
const SKIP_COMPONENTS: &[&str] = &["target", "fixtures"];

/// Audits the workspace rooted at `root`. Walks `crates/`, `vendor/`,
/// `examples/` and `tests/` for `.rs` files, runs the token rules on
/// each, then cross-checks the wire tables against `DESIGN.md`.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let mut report = AuditReport::default();
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        let dir = root.join(dir);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut lock_scope: Vec<(String, String)> = Vec::new();
    for path in &files {
        let rel = relative(root, path);
        let src = fs::read_to_string(path)?;
        let (findings, used) = rules::check_file(&rel, &src);
        report.findings.extend(findings);
        report.suppressions_used += used;
        report.files_scanned += 1;
        if lockgraph::LOCK_SCOPE_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p))
        {
            lock_scope.push((rel, src));
        }
    }

    // The lock-acquisition graph is a whole-program property: it needs
    // every in-scope file's lock inventory and call graph at once.
    let pairs: Vec<(&str, &str)> = lock_scope
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    let (lock_findings, lock_used) = lockgraph::check_files(&pairs);
    report.findings.extend(lock_findings);
    report.suppressions_used += lock_used;

    // Wire-table sync: code vs DESIGN.md.
    let wire = root.join("crates/server/src/wire.rs");
    let error = root.join("crates/server/src/error.rs");
    let design = root.join("DESIGN.md");
    if wire.is_file() && design.is_file() {
        let wire_src = fs::read_to_string(&wire)?;
        let error_src = if error.is_file() {
            fs::read_to_string(&error)?
        } else {
            String::new()
        };
        let design_src = fs::read_to_string(&design)?;
        let mut findings = wire_sync::check_wire_sync(
            &[
                ("crates/server/src/wire.rs", &wire_src),
                ("crates/server/src/error.rs", &error_src),
            ],
            ("DESIGN.md", &design_src),
        );
        for f in &mut findings {
            let src = if f.file == "DESIGN.md" {
                &design_src
            } else if f.file.ends_with("error.rs") {
                &error_src
            } else {
                &wire_src
            };
            rules::attach_snippets(src, std::slice::from_mut(f));
        }
        report.findings.extend(findings);
    } else {
        report.findings.push(Finding::new(
            "wire-sync",
            "DESIGN.md",
            1,
            1,
            "cannot cross-check protocol tables: crates/server/src/wire.rs or DESIGN.md missing",
        ));
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_COMPONENTS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Finds the workspace root: walks up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
