//! Fixture-corpus tests: every rule's hit / miss / suppression cases,
//! the JSON round-trip, and wire-table drift detection.
//!
//! Fixtures live under `tests/fixtures/<rule>/`. They are checked through
//! [`nimbus_audit::rules::check_file`] with pseudo-paths that put them in
//! the rule's scope (the real workspace walk skips `fixtures/`
//! directories, so the deliberate violations never pollute the gate).

use nimbus_audit::json::{self, Value};
use nimbus_audit::rules::check_file;
use nimbus_audit::wire_sync::check_wire_sync;
use nimbus_audit::{render_json, Finding};
use std::fs;
use std::path::PathBuf;

fn fixture(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lines on which findings of `rule` were reported.
fn lines_of(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// ---------------------------------------------------------------- no-panic

#[test]
fn no_panic_hit_flags_every_marker() {
    let (findings, used) = check_file("crates/server/src/fixture.rs", &fixture("no_panic/hit.rs"));
    assert_eq!(used, 0);
    assert_eq!(lines_of(&findings, "no-panic"), vec![3, 4, 6, 9, 12, 14]);
    assert_eq!(findings.len(), 6, "{findings:#?}");
    // Findings carry their source line for the caret rendering.
    assert!(findings.iter().all(|f| !f.snippet.is_empty()));
}

#[test]
fn no_panic_miss_is_clean() {
    let (findings, used) = check_file("crates/server/src/fixture.rs", &fixture("no_panic/miss.rs"));
    assert_eq!(used, 0);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn no_panic_out_of_scope_path_is_clean() {
    // The same violating source outside the hot path produces nothing.
    let (findings, _) = check_file("crates/optim/src/fixture.rs", &fixture("no_panic/hit.rs"));
    assert!(lines_of(&findings, "no-panic").is_empty(), "{findings:#?}");
}

#[test]
fn no_panic_suppressions_and_reasonless_rejection() {
    let (findings, used) = check_file(
        "crates/server/src/fixture.rs",
        &fixture("no_panic/suppressed.rs"),
    );
    // Two reasoned suppressions (line-above and same-line forms) fired.
    assert_eq!(used, 2);
    // The reasonless suppression on line 7 silences nothing: it is itself
    // a finding, and the indexing below it still fires.
    assert_eq!(lines_of(&findings, "suppression"), vec![7]);
    assert_eq!(lines_of(&findings, "no-panic"), vec![8]);
    assert_eq!(findings.len(), 2, "{findings:#?}");
}

// ------------------------------------------------------------- determinism

#[test]
fn determinism_hit_flags_every_marker() {
    let (findings, used) = check_file(
        "crates/core/src/mechanism.rs",
        &fixture("determinism/hit.rs"),
    );
    assert_eq!(used, 0);
    // Line 2 (`use …::{HashMap, HashSet}`) dedupes to one finding.
    assert_eq!(
        lines_of(&findings, "determinism"),
        vec![2, 6, 7, 8, 9, 10, 11]
    );
    assert_eq!(findings.len(), 7, "{findings:#?}");
}

#[test]
fn determinism_miss_is_clean() {
    let (findings, used) = check_file(
        "crates/core/src/mechanism.rs",
        &fixture("determinism/miss.rs"),
    );
    assert_eq!(used, 0);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn determinism_only_applies_to_designated_files() {
    let (findings, _) = check_file(
        "crates/core/src/menu.rs", // real module, not on the deterministic list
        &fixture("determinism/hit.rs"),
    );
    assert!(
        lines_of(&findings, "determinism").is_empty(),
        "{findings:#?}"
    );
}

#[test]
fn determinism_covers_the_whole_agents_crate() {
    // The simulator promises bitwise-identical journals, so every source
    // file under `crates/agents/src/` is in scope by prefix — including
    // ones that do not exist yet.
    let (findings, _) = check_file(
        "crates/agents/src/some_future_module.rs",
        &fixture("determinism/hit.rs"),
    );
    assert!(
        !lines_of(&findings, "determinism").is_empty(),
        "agents crate must be under the determinism rule"
    );
}

#[test]
fn determinism_suppression_with_reason_is_honored() {
    let (findings, used) = check_file(
        "crates/core/src/mechanism.rs",
        &fixture("determinism/suppressed.rs"),
    );
    assert_eq!(used, 1);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ---------------------------------------------------------------- float-eq

#[test]
fn float_eq_hit_flags_literal_comparisons() {
    let (findings, used) = check_file("crates/optim/src/fixture.rs", &fixture("float_eq/hit.rs"));
    assert_eq!(used, 0);
    assert_eq!(lines_of(&findings, "float-eq"), vec![3, 6, 9, 10]);
    assert_eq!(findings.len(), 4, "{findings:#?}");
}

#[test]
fn float_eq_miss_is_clean() {
    let (findings, used) = check_file("crates/optim/src/fixture.rs", &fixture("float_eq/miss.rs"));
    assert_eq!(used, 0);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn float_eq_suppression_with_reason_is_honored() {
    let (findings, used) = check_file(
        "crates/optim/src/fixture.rs",
        &fixture("float_eq/suppressed.rs"),
    );
    assert_eq!(used, 1);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ----------------------------------------------------------- unsafe-safety

#[test]
fn unsafe_safety_hit_flags_unjustified_unsafe() {
    // unsafe-safety is workspace-wide: any path is in scope.
    let (findings, used) = check_file(
        "crates/market/src/fixture.rs",
        &fixture("unsafe_safety/hit.rs"),
    );
    assert_eq!(used, 0);
    assert_eq!(lines_of(&findings, "unsafe-safety"), vec![4, 7]);
    assert_eq!(findings.len(), 2, "{findings:#?}");
}

#[test]
fn unsafe_safety_miss_accepts_adjacent_justifications() {
    let (findings, used) = check_file(
        "crates/market/src/fixture.rs",
        &fixture("unsafe_safety/miss.rs"),
    );
    assert_eq!(used, 0);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn unsafe_safety_suppression_with_reason_is_honored() {
    let (findings, used) = check_file(
        "crates/market/src/fixture.rs",
        &fixture("unsafe_safety/suppressed.rs"),
    );
    assert_eq!(used, 1);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ------------------------------------------------------------------- lexer

#[test]
fn lexer_edge_cases_yield_exactly_the_one_real_violation() {
    // The fixture buries forbidden markers in raw strings (1 and 2 hashes),
    // byte strings, raw byte strings, nested block comments, char escapes,
    // and `//`-in-string traps — then commits one real `unwrap()`. Finding
    // exactly that one proves the lexer resynchronizes after every trick.
    let (findings, used) = check_file(
        "crates/server/src/fixture.rs",
        &fixture("lexer/edge_cases.rs"),
    );
    assert_eq!(used, 0);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "no-panic");
    assert_eq!(findings[0].line, 20);
    assert!(findings[0].snippet.contains("REAL-VIOLATION-LINE"));
}

// ------------------------------------------------------------------- JSON

#[test]
fn json_output_round_trips() {
    let (findings, _) = check_file("crates/server/src/fixture.rs", &fixture("no_panic/hit.rs"));
    assert!(!findings.is_empty());
    let rendered = render_json(&findings);
    let parsed = json::parse(&rendered).expect("emitter output must parse");

    assert_eq!(
        parsed.get("count").and_then(Value::as_u64),
        Some(findings.len() as u64)
    );
    let arr = parsed
        .get("findings")
        .and_then(Value::as_arr)
        .expect("findings array");
    assert_eq!(arr.len(), findings.len());
    for (v, f) in arr.iter().zip(&findings) {
        assert_eq!(v.get("rule").and_then(Value::as_str), Some(f.rule.as_str()));
        assert_eq!(v.get("file").and_then(Value::as_str), Some(f.file.as_str()));
        assert_eq!(v.get("line").and_then(Value::as_u64), Some(f.line as u64));
        assert_eq!(v.get("col").and_then(Value::as_u64), Some(f.col as u64));
        assert_eq!(
            v.get("message").and_then(Value::as_str),
            Some(f.message.as_str())
        );
        assert_eq!(
            v.get("snippet").and_then(Value::as_str),
            Some(f.snippet.as_str())
        );
    }
}

// ------------------------------------------------------------- lock-order

#[test]
fn lock_order_hit_flags_inversion_and_lock_across_fsync() {
    let src = fixture("lock_order/hit.rs");
    let (findings, used) =
        nimbus_audit::lockgraph::check_files(&[("crates/market/src/fixture.rs", &src)]);
    assert_eq!(used, 0);
    assert!(findings.iter().all(|f| f.rule == "lock-order"));
    let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    // The A→B / B→A inversion between the two commit paths.
    assert!(
        msgs.iter().any(|m| m.contains("lock-acquisition cycle")
            && m.contains("Ledger.stripes")
            && m.contains("Accounts.spent")),
        "{msgs:?}"
    );
    // The guard held across `append_sale`.
    assert!(
        msgs.iter()
            .any(|m| m.contains("held across durability call `append_sale`")
                && m.contains("flush_holding_lock")),
        "{msgs:?}"
    );
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| !f.snippet.is_empty()));
}

#[test]
fn lock_order_miss_is_clean() {
    let src = fixture("lock_order/miss.rs");
    let (findings, used) =
        nimbus_audit::lockgraph::check_files(&[("crates/market/src/fixture.rs", &src)]);
    assert_eq!(used, 0);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn lock_order_suppression_fires() {
    let src = fixture("lock_order/suppressed.rs");
    let (findings, used) =
        nimbus_audit::lockgraph::check_files(&[("crates/market/src/fixture.rs", &src)]);
    assert_eq!(used, 1);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ------------------------------------------------------- durability-order

#[test]
fn durability_order_hit_flags_every_protocol_violation() {
    let (findings, used) = check_file(
        "crates/market/src/broker.rs",
        &fixture("durability_order/hit.rs"),
    );
    assert_eq!(used, 0);
    let msgs: Vec<&str> = findings
        .iter()
        .filter(|f| f.rule == "durability-order")
        .map(|f| f.message.as_str())
        .collect();
    // Reordered commit: ledger record before the journal append.
    assert!(
        msgs.iter()
            .any(|m| m.contains("`commit_reordered`") && m.contains("before the journal append")),
        "{msgs:?}"
    );
    // Budget charged after durability.
    assert!(
        msgs.iter().any(|m| m.contains("`commit_charge_late`")
            && m.contains("charges the buyer budget after the journal append")),
        "{msgs:?}"
    );
    // Charge + append with no refund edge.
    assert!(
        msgs.iter().any(|m| m.contains("`commit_charge_late`")
            && m.contains("no refund on the journal-failure edge")),
        "{msgs:?}"
    );
    // Claim never resolved on any arm.
    assert!(
        msgs.iter()
            .any(|m| m.contains("`commit_leaky`") && m.contains("never resolves")),
        "{msgs:?}"
    );
    assert_eq!(msgs.len(), 4, "{findings:#?}");
}

#[test]
fn durability_order_miss_is_clean() {
    let (findings, used) = check_file(
        "crates/market/src/broker.rs",
        &fixture("durability_order/miss.rs"),
    );
    assert_eq!(used, 0);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn durability_order_suppression_fires() {
    let (findings, used) = check_file(
        "crates/market/src/broker.rs",
        &fixture("durability_order/suppressed.rs"),
    );
    assert_eq!(used, 1);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ----------------------------------------------------------- money-safety

#[test]
fn money_safety_hit_flags_cast_equality_and_accumulation() {
    let (findings, used) = check_file(
        "crates/market/src/fixture.rs",
        &fixture("money_safety/hit.rs"),
    );
    assert_eq!(used, 0);
    assert_eq!(lines_of(&findings, "money-safety"), vec![5, 6, 9]);
    let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("`price as u64`")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("exact float `==`")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("accumulation of money value `price`")),
        "{msgs:?}"
    );
    assert_eq!(findings.len(), 3, "{findings:#?}");
}

#[test]
fn money_safety_miss_is_clean() {
    // Finiteness-guarded accumulation and counter identifiers
    // (`n_price_points`, `budget_rejects`) stay unflagged.
    let (findings, used) = check_file(
        "crates/market/src/fixture.rs",
        &fixture("money_safety/miss.rs"),
    );
    assert_eq!(used, 0);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn money_safety_out_of_scope_path_is_clean() {
    let (findings, _) = check_file(
        "crates/optim/src/fixture.rs",
        &fixture("money_safety/hit.rs"),
    );
    assert!(
        lines_of(&findings, "money-safety").is_empty(),
        "{findings:#?}"
    );
}

#[test]
fn money_safety_suppression_fires() {
    let (findings, used) = check_file(
        "crates/market/src/fixture.rs",
        &fixture("money_safety/suppressed.rs"),
    );
    assert_eq!(used, 1);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ------------------------------------------------------------- finding ids

#[test]
fn finding_ids_are_stable_and_occurrence_aware() {
    let (findings, _) = check_file("crates/server/src/fixture.rs", &fixture("no_panic/hit.rs"));
    assert!(!findings.is_empty());
    // Deterministic: the same report renders byte-identically.
    assert_eq!(render_json(&findings), render_json(&findings));
    let parsed = json::parse(&render_json(&findings)).expect("parse");
    let arr = parsed.get("findings").and_then(Value::as_arr).unwrap();
    let ids: Vec<&str> = arr
        .iter()
        .map(|v| v.get("id").and_then(Value::as_str).unwrap())
        .collect();
    // Unique per finding, even for repeated identical violations.
    let unique: std::collections::BTreeSet<&&str> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len(), "{ids:?}");
    // Doc anchors point into the rule reference.
    for v in arr {
        let doc = v.get("doc").and_then(Value::as_str).unwrap();
        let rule = v.get("rule").and_then(Value::as_str).unwrap();
        assert_eq!(doc, format!("crates/audit/RULES.md#{rule}"));
    }
    // Position-independent: shifting the finding down a line keeps its id.
    let mut shifted = findings.clone();
    for f in &mut shifted {
        f.line += 3;
    }
    let reparsed = json::parse(&render_json(&shifted)).expect("parse");
    let shifted_ids: Vec<String> = reparsed
        .get("findings")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .map(|v| v.get("id").and_then(Value::as_str).unwrap().to_string())
        .collect();
    assert_eq!(ids, shifted_ids);
}

// -------------------------------------------------------------- wire-sync

#[test]
fn wire_sync_in_sync_fixture_is_clean() {
    let wire = fixture("wire_sync/wire.rs");
    let ok = fixture("wire_sync/DESIGN_ok.md");
    let findings = check_wire_sync(&[("wire.rs", &wire)], ("DESIGN.md", &ok));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn wire_sync_drift_fixture_reports_every_divergence() {
    let wire = fixture("wire_sync/wire.rs");
    let drift = fixture("wire_sync/DESIGN_drift.md");
    let findings = check_wire_sync(&[("wire.rs", &wire)], ("DESIGN.md", &drift));
    let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();

    // 0x07 vs 0x02: value drift, anchored at the DESIGN.md row.
    let quote = findings
        .iter()
        .find(|f| f.message.contains("`QUOTE`"))
        .expect("drifted QUOTE reported");
    assert!(quote.message.contains("drifted"), "{msgs:?}");
    assert_eq!(quote.file, "DESIGN.md");

    // GHOST documented but absent from code.
    assert!(
        msgs.iter()
            .any(|m| m.contains("`GHOST`") && m.contains("absent from the code")),
        "{msgs:?}"
    );
    // UnknownOpcode in code but dropped from the docs, anchored at source.
    let missing = findings
        .iter()
        .find(|f| f.message.contains("`UnknownOpcode`"))
        .expect("undocumented error code reported");
    assert!(missing.message.contains("not documented"), "{msgs:?}");
    assert_eq!(missing.file, "wire.rs");

    assert_eq!(findings.len(), 3, "{findings:#?}");
}

#[test]
fn wire_sync_fenced_rows_are_ignored() {
    // DESIGN_ok.md carries a decoy `0x99 | INSIDE_FENCE` row inside a
    // ```-fence; if table parsing ever reads through fences, that row
    // becomes a spurious "absent from the code" finding.
    let wire = fixture("wire_sync/wire.rs");
    let ok = fixture("wire_sync/DESIGN_ok.md");
    let findings = check_wire_sync(&[("wire.rs", &wire)], ("DESIGN.md", &ok));
    assert!(
        findings.iter().all(|f| !f.message.contains("INSIDE_FENCE")),
        "{findings:#?}"
    );
}
