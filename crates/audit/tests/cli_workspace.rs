//! End-to-end CLI tests: build a scratch workspace in a temp directory,
//! run the `nimbus-audit` binary against it, and check exit codes,
//! rustc-style diagnostics, `--json` output, and wire-table desync.

use nimbus_audit::json::{self, Value};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const CLEAN_HANDLER: &str = "\
pub fn serve(x: Option<u32>) -> Result<u32, &'static str> {
    x.ok_or(\"missing\")
}
";

const PANICKY_HANDLER: &str = "\
pub fn serve(x: Option<u32>) -> u32 {
    x.unwrap()
}
";

/// Creates a minimal workspace the auditor fully understands: a manifest,
/// a serving crate with the wire fixture, and an in-sync DESIGN.md.
fn scratch_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("nimbus-audit-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let server_src = root.join("crates/server/src");
    fs::create_dir_all(&server_src).expect("mkdir scratch workspace");
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = []\nresolver = \"2\"\n",
    )
    .expect("write Cargo.toml");
    let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wire_sync");
    fs::copy(fixtures.join("wire.rs"), server_src.join("wire.rs")).expect("copy wire fixture");
    fs::copy(fixtures.join("DESIGN_ok.md"), root.join("DESIGN.md")).expect("copy design fixture");
    fs::write(server_src.join("handler.rs"), CLEAN_HANDLER).expect("write handler");
    root
}

fn run_audit(root: &Path, extra: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nimbus-audit"));
    cmd.arg("check").arg("--root").arg(root);
    cmd.args(extra);
    cmd.output().expect("spawn nimbus-audit")
}

#[test]
fn clean_workspace_exits_zero_then_violation_fails() {
    let root = scratch_workspace("clean-dirty");

    let out = run_audit(&root, &[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("0 finding(s)"), "stderr: {stderr}");

    // Introduce a hot-path panic: exit flips to 1 with a rustc-style
    // diagnostic pointing at the exact location.
    fs::write(root.join("crates/server/src/handler.rs"), PANICKY_HANDLER).expect("write handler");
    let out = run_audit(&root, &[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("error[nimbus-audit::no-panic]"),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains("--> crates/server/src/handler.rs:2:7"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("x.unwrap()"), "stderr: {stderr}");

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn json_mode_emits_parseable_findings() {
    let root = scratch_workspace("json");
    fs::write(root.join("crates/server/src/handler.rs"), PANICKY_HANDLER).expect("write handler");

    let out = run_audit(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let parsed = json::parse(stdout.trim()).expect("--json output must parse");
    assert_eq!(parsed.get("count").and_then(Value::as_u64), Some(1));
    let arr = parsed
        .get("findings")
        .and_then(Value::as_arr)
        .expect("array");
    assert_eq!(arr[0].get("rule").and_then(Value::as_str), Some("no-panic"));
    assert_eq!(
        arr[0].get("file").and_then(Value::as_str),
        Some("crates/server/src/handler.rs")
    );
    assert_eq!(arr[0].get("line").and_then(Value::as_u64), Some(2));

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn desynced_design_opcode_fails_wire_sync() {
    let root = scratch_workspace("desync");

    // Flip QUOTE's documented opcode from 0x02 to 0x09.
    let design = root.join("DESIGN.md");
    let md = fs::read_to_string(&design).expect("read DESIGN.md");
    assert!(md.contains("`0x02`"));
    fs::write(&design, md.replace("`0x02`", "`0x09`")).expect("write DESIGN.md");

    let out = run_audit(&root, &[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("error[nimbus-audit::wire-sync]"),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains("`QUOTE` drifted") && stderr.contains("0x9"),
        "stderr: {stderr}"
    );

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_nimbus-audit"))
        .arg("--bogus")
        .output()
        .expect("spawn nimbus-audit");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}
