// Fixture: every determinism marker fires in a deterministic module.
use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

fn noise_path() -> u64 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let mut rng = thread_rng();
    let seen: HashSet<u64> = HashSet::new();
    let table: HashMap<u64, u64> = HashMap::new();
    let home = std::env::var("HOME");
    let _ = (t0, wall, rng, seen, table, home);
    0
}
