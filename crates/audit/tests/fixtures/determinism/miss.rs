// Fixture: deterministic idiom — seeded streams, ordered maps, injected
// clocks — plus markers hidden in strings/comments/tests that must not fire.
use std::collections::{BTreeMap, BTreeSet};

fn noise_path(seed: u64, tx_id: u64, clock: &dyn Fn() -> u64) -> u64 {
    // Instant::now() would be wrong here; the caller supplies `clock`.
    let msg = "SystemTime::now and thread_rng and HashMap in a string";
    let started = clock();
    let mut dedup: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    dedup.insert((seed, tx_id), started);
    seen.insert(tx_id);
    let _ = msg;
    seed ^ tx_id
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_use_the_wall_clock() {
        let t = Instant::now();
        let set: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let _ = (t, set, std::env::var("HOME"));
    }
}
