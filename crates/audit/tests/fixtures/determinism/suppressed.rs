// Fixture: a reasoned suppression for a keyed-lookup-only map.
fn dedup_table() -> usize {
    // nimbus-audit: allow(determinism) — keyed lookups only; iteration order never observed
    let table: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    table.len()
}
