//! Deliberately reordered commit protocols: record-before-append,
//! charge-after-append with no refund edge, and a leaked dedup claim.

impl Broker {
    fn commit_reordered(&self, r: SaleRecord) -> Result<(), MarketError> {
        self.ledger.record_prepared(r);
        self.journal.append_sale(r)?;
        Ok(())
    }

    fn commit_charge_late(&self, buyer: u64, x: f64) -> Result<(), MarketError> {
        self.journal.append_sale(x)?;
        self.accounts.charge(buyer, x)?;
        self.ledger.record_prepared(x);
        Ok(())
    }

    fn commit_leaky(&self, nonce: u64) -> Result<(), MarketError> {
        self.dedup.claim(nonce);
        self.journal.append_sale(nonce)?;
        self.ledger.record_prepared(nonce);
        Ok(())
    }
}
