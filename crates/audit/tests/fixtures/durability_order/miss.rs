//! The commit protocol done right: claim, charge, append with a refund
//! on the failure edge, record, resolve.

impl Broker {
    fn commit_correct(&self, buyer: u64, x: f64, nonce: u64) -> Result<(), MarketError> {
        self.dedup.claim(nonce);
        self.accounts.charge(buyer, x)?;
        if let Err(e) = self.journal.append_sale(x) {
            self.accounts.refund(buyer, x);
            self.dedup.resolve(nonce, None);
            return Err(e.into());
        }
        self.ledger.record_prepared(x);
        self.dedup.resolve(nonce, Some(x));
        Ok(())
    }

    fn commit_thin_wrapper(&self, buyer: u64, x: f64) -> Result<(), MarketError> {
        self.commit_correct(buyer, x, 0)
    }
}
