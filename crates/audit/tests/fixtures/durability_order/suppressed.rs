//! A reordered commit silenced by a reasoned suppression (a migration
//! shim replaying pre-protocol journals).

impl Broker {
    fn commit_replay_shim(&self, r: SaleRecord) -> Result<(), MarketError> {
        // nimbus-audit: allow(durability-order) — replay shim: the record was already durable in the legacy journal being migrated
        self.ledger.record_prepared(r);
        self.journal.append_sale(r)?;
        Ok(())
    }
}
