// Fixture: float-literal equality in pricing code must fire.
fn price(total: f64, norm2: f64) -> f64 {
    if total == 0.0 {
        return 0.0;
    }
    if norm2 != 1.0 {
        return total;
    }
    let exact = 2.5e-3 == total;
    let suffixed = total != 1f64;
    if exact || suffixed {
        total
    } else {
        norm2
    }
}
