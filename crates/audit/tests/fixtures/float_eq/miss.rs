// Fixture: tolerance comparisons, integer equality, grid-value equality
// between non-literals, ranges, and tuple access must not fire.
fn price(total: f64, n: usize, points: &[(f64, f64)]) -> bool {
    let close = (total - 1.0).abs() < 1e-9; // tolerance idiom, no ==
    let ints = n == 0 || n != 3;
    // Float == between two *expressions* is outside the literal heuristic:
    let grid = points.len() > 1 && points[0].0 == points[1].0;
    let ranged = (0..n).len() == n;
    let msg = "1.0 == x inside a string";
    let _ = msg;
    close && ints && grid && ranged
}

#[cfg(test)]
mod tests {
    #[test]
    fn exactness_asserts_are_test_only() {
        // Bitwise-identical replay checks legitimately use float ==.
        assert!(1.0 == 1.0);
        assert!(0.5 != 0.25);
    }
}
