// Fixture: a reasoned suppression for an exact-zero sentinel guard.
fn price(total: f64) -> f64 {
    // nimbus-audit: allow(float-eq) — exact-zero guard: total is a sum of non-negative masses
    if total == 0.0 {
        return 0.0;
    }
    1.0 / total
}
