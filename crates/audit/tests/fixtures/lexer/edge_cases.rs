// Fixture: lexer edge cases. Every forbidden marker below is inside a
// string, raw string, byte string, char context, or comment — EXCEPT the
// single real `unwrap()` at the clearly marked line near the end, which
// proves the lexer resynchronizes after each tricky construct.
fn edge_cases(opt: Option<u32>) -> u32 {
    let raw_hashes = r#"unwrap() and panic!("x") inside r#-string"#;
    let raw_more = r##"nested "quote"# then unwrap() still string"##;
    let byte_str = b"panic!() in a byte string";
    let raw_byte = br#"expect("x") in a raw byte string"#;
    /* block comment with unwrap()
       /* nested block comment with panic!() */
       still the outer comment: expect("x")
    */
    let lifetime_not_char: &'static str = "x";
    let ch: char = 'a';
    let escaped: char = '\'';
    let unicode: char = '\u{1F600}';
    let slashes = "//unwrap() this is not a comment";
    let backslash_quote = "escaped \" then unwrap() still string";
    let real = opt.unwrap(); // REAL-VIOLATION-LINE
    let _ = (
        raw_hashes,
        raw_more,
        byte_str,
        raw_byte,
        lifetime_not_char,
        ch,
        escaped,
        unicode,
        slashes,
        backslash_quote,
    );
    real
}
