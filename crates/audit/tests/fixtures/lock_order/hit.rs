//! Deliberate lock-order violations: an inversion between two commit
//! paths (cycle), and a guard held across a durability call.

struct Ledger {
    stripes: Mutex<Vec<u64>>,
}

struct Accounts {
    spent: Mutex<f64>,
}

struct Broker {
    ledger: Ledger,
    accounts: Accounts,
}

impl Broker {
    fn commit_forward(&self) {
        let stripes = self.ledger.stripes.lock().unwrap();
        let spent = self.accounts.spent.lock().unwrap();
        drop(spent);
        drop(stripes);
    }

    fn commit_backward(&self) {
        let spent = self.accounts.spent.lock().unwrap();
        let stripes = self.ledger.stripes.lock().unwrap();
        drop(stripes);
        drop(spent);
    }

    fn flush_holding_lock(&self, journal: &Journal) {
        let spent = self.accounts.spent.lock().unwrap();
        journal.append_sale(*spent);
    }
}
