//! Clean locking: every path acquires stripes before spent (one global
//! order), and the guard is dropped before the durability call.

struct Ledger {
    stripes: Mutex<Vec<u64>>,
}

struct Accounts {
    spent: Mutex<f64>,
}

struct Broker {
    ledger: Ledger,
    accounts: Accounts,
}

impl Broker {
    fn commit_forward(&self) {
        let stripes = self.ledger.stripes.lock().unwrap();
        let spent = self.accounts.spent.lock().unwrap();
        drop(spent);
        drop(stripes);
    }

    fn commit_also_forward(&self) {
        let stripes = self.ledger.stripes.lock().unwrap();
        drop(stripes);
        let spent = self.accounts.spent.lock().unwrap();
        drop(spent);
    }

    fn flush_after_unlock(&self, journal: &Journal) {
        let spent = self.accounts.spent.lock().unwrap();
        let snapshot = *spent;
        drop(spent);
        journal.append_sale(snapshot);
    }
}
