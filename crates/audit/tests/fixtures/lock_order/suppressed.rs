//! A lock held across a durability call, silenced by a reasoned
//! suppression (the group-commit-leader design argument).

struct Batcher {
    journal: Mutex<Journal>,
}

impl Batcher {
    fn flush(&self, records: &[u64]) {
        let journal = self.journal.lock().unwrap();
        // nimbus-audit: allow(lock-order) — the leader holds the journal mutex exactly for the group fsync
        journal.append_sales(records);
    }
}
