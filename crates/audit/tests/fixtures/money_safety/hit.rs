//! Unguarded money arithmetic: an integer cast, exact equality, and an
//! accumulation with no finiteness check in the function.

fn settle(price: f64, budget: f64, total: &mut f64) {
    let cents = price as u64;
    if budget == 0.0 {
        return;
    }
    *total += price;
    let _ = cents;
}
