//! Guarded or non-money arithmetic the rule must not flag: a finiteness
//! check makes the function a designated validation site, and counter
//! identifiers (`n_price_points`, `budget_rejects`) are not money.

fn tally(report: &mut Report, price: f64, n_price_points: usize) {
    if price.is_finite() {
        report.revenue += price;
    }
    let grid = n_price_points as u64;
    let budget_rejects = 3u64;
    report.rejects += budget_rejects;
    let _ = grid;
}
