//! An unguarded accumulation silenced by a reasoned suppression (the
//! upstream-validation argument).

fn aggregate(total: &mut f64, revenue: f64) {
    // nimbus-audit: allow(money-safety) — revenue was validated finite by the journal commit path upstream
    *total += revenue;
}
