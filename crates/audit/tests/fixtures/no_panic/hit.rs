// Fixture: every no-panic marker in non-test hot-path code must fire.
fn serve(opt: Option<u32>, v: Vec<u32>, i: usize) -> u32 {
    let a = opt.unwrap();
    let b = opt.expect("present");
    if a > b {
        panic!("impossible");
    }
    if b == 0 {
        todo!();
    }
    if a == 0 {
        unimplemented!();
    }
    v[i]
}
