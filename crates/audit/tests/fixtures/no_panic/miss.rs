// Fixture: typed-error style code, plus every trap that must NOT fire:
// markers inside strings, raw strings, comments, and test modules;
// `unwrap_or`-family lookalikes; non-index uses of `[`.
fn serve(opt: Option<u32>, v: &[u32], i: usize) -> Result<u32, String> {
    // unwrap() in a comment is fine; so is v[i] indexing here.
    let doc = "calling unwrap() or panic!() or v[i] in a string";
    let raw = r#"expect("quoted") and x[0] stay strings"#;
    let bytes = b"unwrap()";
    let a = opt.ok_or("missing")?;
    let b = opt.unwrap_or(0);
    let c = opt.unwrap_or_else(|| 1);
    let d = v.get(i).copied().ok_or("out of bounds")?;
    let arr = [0u8; 4]; // array literal, not indexing
    let [x, y] = [a, b]; // slice pattern after `let`, not indexing
    let _ = (doc, raw, bytes, c, arr, x, y);
    Ok(a + d)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v = vec![1, 2];
        assert_eq!(v[0], 1);
        Some(3).unwrap();
        panic!("fine in tests");
    }
}
