// Fixture: reasoned suppressions silence findings; a reasonless one is
// itself a finding and silences nothing.
fn serve(shards: &[u32], tx_id: u64) -> u32 {
    // nimbus-audit: allow(no-panic) — index is tx_id % len, always in bounds
    let a = shards[(tx_id % shards.len() as u64) as usize];
    let b = shards[0]; // nimbus-audit: allow(no-panic) — fixture: same-line form
    // nimbus-audit: allow(no-panic)
    let c = shards[1];
    a + b + c
}
