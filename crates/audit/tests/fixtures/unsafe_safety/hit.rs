// Fixture: unsafe without an adjacent SAFETY comment must fire.
fn read(ptr: *const u32) -> u32 {
    // This comment talks about something else entirely.
    unsafe { *ptr }
}

unsafe fn no_justification(ptr: *const u32) -> u32 {
    *ptr
}
