// Fixture: properly justified unsafe in its three adjacent forms.
fn read(ptr: *const u32) -> u32 {
    // SAFETY: `ptr` came from a live Box the caller still owns, so the
    // target is valid for reads for the duration of this call (multi-line
    // justification blocks count as long as they are contiguous).
    unsafe { *ptr }
}

fn read_same_line(ptr: *const u32) -> u32 {
    unsafe { *ptr } // SAFETY: caller contract — ptr is non-null and aligned
}

// SAFETY: the function's contract requires `ptr` valid for reads.
unsafe fn justified_fn(ptr: *const u32) -> u32 {
    *ptr
}

fn mentions_unsafe_in_string() -> &'static str {
    "the word unsafe in a string is not a token"
}
