// Fixture: an unsafe block may be suppressed with a reason (e.g. vendored
// shim code awaiting a proper SAFETY audit).
fn read(ptr: *const u32) -> u32 {
    // nimbus-audit: allow(unsafe-safety) — vendored shim, audited upstream
    unsafe { *ptr }
}
