// Fixture: miniature wire module for wire-sync table extraction.
pub const PROTOCOL_VERSION: u8 = 1;

pub const OP_MENU: u8 = 0x01;
pub const OP_QUOTE: u8 = 0x02;
pub const OP_R_MENU: u8 = 0x81;
pub const OP_R_ERROR: u8 = 0xEE;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    BadFrame = 1,
    UnknownOpcode = 3,
    Internal = 11,
}
