//! The gate: the real Nimbus workspace must audit clean. Every violation
//! is either fixed or carries a reasoned inline suppression — this test
//! is what keeps that true going forward.

use nimbus_audit::audit_workspace;
use std::path::PathBuf;

#[test]
fn real_workspace_has_zero_unsuppressed_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = audit_workspace(&root).expect("audit run");
    assert!(
        report.files_scanned > 20,
        "walk found the workspace sources"
    );
    if !report.is_clean() {
        let mut rendered = String::new();
        for f in &report.findings {
            rendered.push_str(&f.render());
            rendered.push('\n');
        }
        panic!(
            "workspace audit found {} violation(s):\n{rendered}",
            report.findings.len()
        );
    }
    // The tree is clean *with reasons*: the dataflow rules (lock-order,
    // money-safety) cover real sites that are sound by design and carry
    // reasoned suppressions — if this floor drops, suppressions were
    // deleted without restructuring the code they justified.
    assert!(
        report.suppressions_used >= 27,
        "expected ≥ 27 reasoned suppressions honored, got {}",
        report.suppressions_used
    );
}
