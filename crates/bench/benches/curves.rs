//! Error-curve estimation (the Figure 6 inner loop) and the price
//! interpolation solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nimbus_core::{ErrorCurve, GaussianMechanism, Ncp};
use nimbus_linalg::Vector;
use nimbus_ml::LinearModel;
use nimbus_optim::interpolation::{interpolate_l1, interpolate_l2};
use nimbus_optim::InterpolationProblem;
use nimbus_randkit::seeded_rng;
use std::hint::black_box;

fn bench_error_curve_estimation(c: &mut Criterion) {
    let model = LinearModel::new(Vector::from_vec(
        (0..20).map(|i| (i as f64 * 0.31).cos()).collect(),
    ));
    let deltas: Vec<Ncp> = (1..=10)
        .map(|i| Ncp::new(i as f64 * 0.2).unwrap())
        .collect();
    let mut group = c.benchmark_group("error_curve_10_deltas");
    group.sample_size(10);
    for samples in [100usize, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &s| {
            b.iter(|| {
                let mut rng = seeded_rng(3);
                let m = model.clone();
                ErrorCurve::estimate(
                    &GaussianMechanism,
                    black_box(&model),
                    |h| h.distance_squared(&m).map_err(Into::into),
                    &deltas,
                    s,
                    &mut rng,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn interpolation_instance(n: usize) -> InterpolationProblem {
    // Superadditive-looking targets so the projection has real work to do.
    let points: Vec<(f64, f64)> = (1..=n)
        .map(|j| {
            let a = j as f64;
            (a, a * a * 0.5 + (j % 3) as f64)
        })
        .collect();
    InterpolationProblem::new(points).expect("valid")
}

fn bench_interpolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("price_interpolation");
    for n in [10usize, 100, 500] {
        let problem = interpolation_instance(n);
        group.bench_with_input(BenchmarkId::new("l2_dykstra", n), &problem, |b, p| {
            b.iter(|| interpolate_l2(black_box(p)).unwrap())
        });
    }
    let problem = interpolation_instance(50);
    group.bench_function("l1_subgradient_50pts_100iters", |b| {
        b.iter(|| interpolate_l1(black_box(&problem), 100).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_error_curve_estimation, bench_interpolation);
criterion_main!(benches);
