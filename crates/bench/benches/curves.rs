//! Error-curve estimation (the Figure 6 inner loop) and the price
//! interpolation solvers, plus serial-vs-parallel Monte-Carlo estimation
//! across the error metrics a broker can be configured with.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nimbus_core::{ErrorCurve, GaussianMechanism, Ncp};
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_linalg::Vector;
use nimbus_ml::{
    ErrorMetric, LinearModel, LogisticRegressionTrainer, LossMetric, SquareDistanceMetric, Trainer,
};
use nimbus_optim::interpolation::{interpolate_l1, interpolate_l2};
use nimbus_optim::InterpolationProblem;
use std::hint::black_box;

fn bench_error_curve_estimation(c: &mut Criterion) {
    let model = LinearModel::new(Vector::from_vec(
        (0..20).map(|i| (i as f64 * 0.31).cos()).collect(),
    ));
    let deltas: Vec<Ncp> = (1..=10)
        .map(|i| Ncp::new(i as f64 * 0.2).unwrap())
        .collect();
    let mut group = c.benchmark_group("error_curve_10_deltas");
    group.sample_size(10);
    for samples in [100usize, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &s| {
            b.iter(|| {
                let m = model.clone();
                ErrorCurve::estimate(
                    &GaussianMechanism,
                    black_box(&model),
                    |h| h.distance_squared(&m).map_err(Into::into),
                    &deltas,
                    s,
                    3,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Serial vs parallel Monte-Carlo curve estimation for the three broker
/// metrics. The parallel estimator is bitwise-identical to the serial one
/// (per-δ seed streams), so this measures pure wall-clock speedup. On a
/// single-CPU host the two are at parity (modulo thread-spawn overhead);
/// the speedup scales with physical cores up to the δ-point count.
fn bench_serial_vs_parallel_metrics(c: &mut Criterion) {
    let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated2, 1_000)
        .materialize(7)
        .expect("materialize");
    let model = LogisticRegressionTrainer::new(1e-4)
        .train(&tt.train)
        .expect("train");
    let metrics: Vec<(&str, Box<dyn ErrorMetric>)> = vec![
        ("square", Box::new(SquareDistanceMetric::new(model.clone()))),
        ("logistic", Box::new(LossMetric::logistic(tt.test.clone()))),
        ("zero_one", Box::new(LossMetric::zero_one(tt.test.clone()))),
    ];
    let mut group = c.benchmark_group("mc_curve_serial_vs_parallel");
    group.sample_size(10);
    let samples = 64usize;
    for points in [8usize, 32] {
        let deltas: Vec<Ncp> = (1..=points)
            .map(|i| Ncp::new(i as f64 / points as f64).unwrap())
            .collect();
        for (name, metric) in &metrics {
            group.bench_with_input(
                BenchmarkId::new(format!("serial/{name}"), points),
                &deltas,
                |b, d| {
                    b.iter(|| {
                        ErrorCurve::estimate(
                            &GaussianMechanism,
                            black_box(&model),
                            |h| metric.evaluate(h).map_err(Into::into),
                            d,
                            samples,
                            3,
                        )
                        .unwrap()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("parallel8/{name}"), points),
                &deltas,
                |b, d| {
                    b.iter(|| {
                        ErrorCurve::estimate_parallel(
                            &GaussianMechanism,
                            black_box(&model),
                            |h| metric.evaluate(h).map_err(Into::into),
                            d,
                            samples,
                            3,
                            Some(8),
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn interpolation_instance(n: usize) -> InterpolationProblem {
    // Superadditive-looking targets so the projection has real work to do.
    let points: Vec<(f64, f64)> = (1..=n)
        .map(|j| {
            let a = j as f64;
            (a, a * a * 0.5 + (j % 3) as f64)
        })
        .collect();
    InterpolationProblem::new(points).expect("valid")
}

fn bench_interpolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("price_interpolation");
    for n in [10usize, 100, 500] {
        let problem = interpolation_instance(n);
        group.bench_with_input(BenchmarkId::new("l2_dykstra", n), &problem, |b, p| {
            b.iter(|| interpolate_l2(black_box(p)).unwrap())
        });
    }
    let problem = interpolation_instance(50);
    group.bench_function("l1_subgradient_50pts_100iters", |b| {
        b.iter(|| interpolate_l1(black_box(&problem), 100).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_error_curve_estimation,
    bench_serial_vs_parallel_metrics,
    bench_interpolation
);
criterion_main!(benches);
