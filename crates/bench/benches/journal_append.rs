//! Durability-path microbenchmarks: the write-ahead sale journal.
//!
//! Three costs matter to the serving path:
//! * `append` — one framed, checksummed sale record plus the fsync ACK
//!   barrier. This sits on the COMMIT critical path, so it is the number
//!   that bounds journalled purchase throughput.
//! * `append/compacting` — the same, with automatic checkpoint compaction
//!   enabled, to show the amortized rewrite cost.
//! * `replay` — `Journal::open` on a log of N sales: the restart cost.
//!
//! Each benchmark prints one summary line from a warm-up pass before
//! criterion measures, so the numbers survive even when the vendored
//! criterion shim runs bodies once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nimbus_market::{FaultPlan, Journal, SaleRecord, Transaction};
use std::path::PathBuf;
use std::time::Instant;

fn temp_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "nimbus-bench-journal-{name}-{}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn record(sequence: u64) -> SaleRecord {
    SaleRecord {
        transaction: Transaction {
            sequence,
            inverse_ncp: 10.0 + sequence as f64,
            price: 3.25 * (sequence + 1) as f64,
            expected_error: 0.05 / (sequence + 1) as f64,
        },
        snapshot_epoch: 1,
        // Every other sale carries an idempotency nonce, like mixed
        // plain/idempotent client traffic.
        nonce: sequence.is_multiple_of(2).then_some(0x5EED_0000 + sequence),
        buyer: None,
    }
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal_append");
    group.sample_size(10);
    for (checkpoint_every, tag) in [(0u64, "append"), (256, "append/compacting")] {
        let path = temp_journal(tag.replace('/', "-").as_str());
        let (mut journal, _) =
            Journal::open(&path, checkpoint_every, FaultPlan::new()).expect("journal opens");

        // Warm-up pass: print an honest appends/second once.
        let warmup = 512u64;
        let start = Instant::now();
        for i in 0..warmup {
            journal.append_sale(&record(i)).expect("append");
        }
        let elapsed = start.elapsed();
        println!(
            "journal_append/{tag}: {warmup} fsynced appends in {elapsed:?} -> {:.0} appends/s",
            warmup as f64 / elapsed.as_secs_f64()
        );

        let mut next = warmup;
        group.bench_function(BenchmarkId::new(tag, "fsync"), |b| {
            b.iter(|| {
                journal.append_sale(&record(next)).expect("append");
                next += 1;
                next
            })
        });
        drop(journal);
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal_replay");
    group.sample_size(10);
    for n in [256u64, 2_048] {
        let path = temp_journal(&format!("replay-{n}"));
        {
            let (mut journal, _) =
                Journal::open(&path, 0, FaultPlan::new()).expect("journal opens");
            for i in 0..n {
                journal.append_sale(&record(i)).expect("append");
            }
        }

        let start = Instant::now();
        let (journal, recovery) = Journal::open(&path, 0, FaultPlan::new()).expect("reopen");
        let elapsed = start.elapsed();
        assert_eq!(recovery.transactions.len() as u64, n);
        assert!(recovery.truncated.is_none());
        drop(journal);
        println!(
            "journal_replay/{n}: replayed {n} sales in {elapsed:?} -> {:.0} sales/s",
            n as f64 / elapsed.as_secs_f64()
        );

        group.bench_with_input(BenchmarkId::new("open", n), &n, |b, &n| {
            b.iter(|| {
                let (journal, recovery) =
                    Journal::open(&path, 0, FaultPlan::new()).expect("reopen");
                assert_eq!(recovery.transactions.len() as u64, n);
                drop(journal);
                recovery.next_tx_id
            })
        });
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

criterion_group!(benches, bench_append, bench_replay);
criterion_main!(benches);
