//! End-to-end market benches: opening a market (train + optimize + post)
//! and purchase throughput — the "low runtime cost" claim of the abstract.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nimbus_core::GaussianMechanism;
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};
use nimbus_market::{Broker, BrokerConfig, PurchaseRequest, Seller};
use nimbus_ml::LinearRegressionTrainer;
use std::hint::black_box;

fn make_broker(rows: usize, points: usize) -> Broker {
    let (dataset, _) = DatasetSpec::scaled(PaperDataset::Simulated1, rows)
        .materialize(5)
        .expect("dataset");
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    Broker::new(
        Seller::new("bench", dataset, curves),
        Box::new(LinearRegressionTrainer::ridge(1e-6)),
        Box::new(GaussianMechanism),
        BrokerConfig {
            n_price_points: points,
            error_curve_samples: 50,
            seed: 5,
        },
    )
}

fn bench_market_open(c: &mut Criterion) {
    let mut group = c.benchmark_group("market_open");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &r| {
            b.iter(|| {
                let broker = make_broker(r, 100);
                broker.optimal_model().unwrap();
                broker.open_market().unwrap()
            })
        });
    }
    group.finish();
}

fn bench_purchase_throughput(c: &mut Criterion) {
    let broker = make_broker(2_000, 100);
    broker.optimal_model().unwrap();
    broker.open_market().unwrap();
    c.bench_function("purchase_at_point", |b| {
        b.iter(|| {
            let quote = broker
                .quote_request(black_box(PurchaseRequest::AtInverseNcp(42.0)))
                .unwrap();
            broker.commit(quote, quote.price).unwrap()
        })
    });
    c.bench_function("purchase_price_budget_binary_search", |b| {
        b.iter(|| {
            let quote = broker
                .quote_request(black_box(PurchaseRequest::PriceBudget(30.0)))
                .unwrap();
            broker.commit(quote, 30.0).unwrap()
        })
    });
}

criterion_group!(benches, bench_market_open, bench_purchase_throughput);
criterion_main!(benches);
