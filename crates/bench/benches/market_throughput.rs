//! Concurrent serving-path throughput: `purchase_batch` over the immutable
//! market snapshot at 1, 4 and 8 threads, across menu sizes.
//!
//! This quantifies the snapshot redesign: quoting is a lock-free read, each
//! sale draws noise from its own `(seed, transaction id)` RNG stream, and
//! ledger writes stripe across shards — so batch throughput should scale
//! with threads instead of serializing on a market/ledger/RNG lock triple.
//!
//! Note: thread scaling only shows on a multi-core host. On a single-core
//! machine (`std::thread::available_parallelism() == 1`) the 4t/8t rows
//! measure pure scheduling overhead and will not beat 1t.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nimbus_core::GaussianMechanism;
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};
use nimbus_market::{Broker, PurchaseRequest, Seller};
use nimbus_ml::LinearRegressionTrainer;

// Large enough that the batch's work amortizes the scoped-thread spawn
// cost; at a few µs per purchase this is tens of ms of serial work.
const BATCH: usize = 8_192;

fn make_open_broker(points: usize) -> Broker {
    let (dataset, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 2_000)
        .materialize(5)
        .expect("dataset");
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    let broker = Broker::builder(Seller::new("bench", dataset, curves))
        .trainer(LinearRegressionTrainer::ridge(1e-6))
        .mechanism(GaussianMechanism)
        .n_price_points(points)
        .error_curve_samples(50)
        .seed(5)
        .build()
        .expect("valid config");
    broker.open_market().expect("market opens");
    broker
}

fn mixed_requests(broker: &Broker) -> Vec<PurchaseRequest> {
    // Anchor budgets to the posted menu so every request is feasible.
    let menu = broker.posted_menu().expect("menu");
    let min_price = menu.iter().map(|(_, p)| *p).fold(f64::INFINITY, f64::min);
    (0..BATCH)
        .map(|i| match i % 3 {
            0 => PurchaseRequest::AtInverseNcp(1.0 + (i % 99) as f64),
            1 => PurchaseRequest::ErrorBudget(1.0 / (1.0 + (i % 80) as f64)),
            _ => PurchaseRequest::PriceBudget(min_price + (i % 50) as f64),
        })
        .collect()
}

fn bench_purchase_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("purchase_batch_8192");
    group.sample_size(10);
    for points in [50usize, 200] {
        let broker = make_open_broker(points);
        let requests = mixed_requests(&broker);
        for threads in [1usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("menu_{points}"), format!("{threads}t")),
                &threads,
                |b, &t| {
                    b.iter(|| {
                        let sales = broker.purchase_batch_with(&requests, Some(t));
                        assert!(sales.iter().all(|s| s.is_ok()));
                        sales.len()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_lock_free_quoting(c: &mut Criterion) {
    // The pure read side: quote_request with no commit, 8 threads hammering
    // one snapshot. With the AtomicPtr snapshot this has no shared writes.
    let broker = make_open_broker(100);
    c.bench_function("quote_request_8_threads_x_512", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for t in 0..8 {
                    let broker = &broker;
                    s.spawn(move || {
                        for i in 0..512u64 {
                            let x = 1.0 + ((t * 512 + i) % 99) as f64;
                            broker
                                .quote_request(PurchaseRequest::AtInverseNcp(x))
                                .unwrap();
                        }
                    });
                }
            })
        })
    });
}

criterion_group!(benches, bench_purchase_batch, bench_lock_free_quoting);
criterion_main!(benches);
