//! Noisy-model-generation benches: the per-sale cost that makes real-time
//! broker interaction possible (§4: "avoids training a model instance from
//! scratch").
//!
//! Expected shape: perturbing a d-dimensional model is O(d) and measured in
//! nanoseconds-to-microseconds — negligible against the one-time training
//! cost in the `training` bench.
//!
//! Two privacy-hardening comparisons ride along:
//!
//! * **naive vs snapped** — the Box–Muller Gaussian against the discrete
//!   (Canonne–Kaplan–Steinke) sampler on a clamped dyadic grid. The snapped
//!   sampler pays exact-integer rejection sampling per coordinate; this
//!   bench bounds that premium so "floating-point-attack-safe" has a
//!   price tag.
//! * **budget-check overhead** — the per-commit [`BuyerAccounts`] charge in
//!   its three regimes (unmetered, metered-admit, metered-reject). This is
//!   the serving hot path's new pre-durability step; it must stay in the
//!   tens of nanoseconds.
//!
//! A warm-up pass prints one summary line per comparison, and when
//! `NIMBUS_BENCH_JSON` names a path the summaries are persisted there as a
//! JSON document (the CI step writes `BENCH_pr9.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nimbus_core::{
    GaussianMechanism, LaplaceMechanism, Ncp, RandomizedMechanism, SnappedGaussianMechanism,
    UniformMechanism,
};
use nimbus_linalg::Vector;
use nimbus_market::BuyerAccounts;
use nimbus_ml::LinearModel;
use nimbus_randkit::seeded_rng;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

fn model_of_dim(d: usize) -> LinearModel {
    LinearModel::new(Vector::from_vec(
        (0..d).map(|i| (i as f64 * 0.37).sin()).collect(),
    ))
}

/// Warm-up summaries collected for the optional JSON artifact.
fn recorded() -> &'static Mutex<Vec<String>> {
    static RECORDS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn record(label: &str, per_op_ns: f64, extra: &str) {
    let entry = if extra.is_empty() {
        format!("    {{\"label\": \"{label}\", \"per_op_ns\": {per_op_ns:.1}}}")
    } else {
        format!("    {{\"label\": \"{label}\", \"per_op_ns\": {per_op_ns:.1}, {extra}}}")
    };
    recorded().lock().expect("records lock").push(entry);
}

/// Times `iters` runs of `f` and returns the mean ns/op (warm-up metric;
/// criterion still produces the statistically careful numbers).
fn time_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// Writes the collected summaries to `$NIMBUS_BENCH_JSON`, if set. A
/// relative path is anchored at the workspace root (criterion runs with
/// the package directory as CWD, which is not where CI looks).
fn flush_bench_json() {
    let Ok(path) = std::env::var("NIMBUS_BENCH_JSON") else {
        return;
    };
    let mut target = PathBuf::from(&path);
    if target.is_relative() {
        target = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(target);
    }
    let entries = recorded().lock().expect("records lock");
    let doc = format!(
        "{{\n  \"bench\": \"mechanism\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&target, doc).expect("write bench json");
    println!("bench summaries written to {}", target.display());
}

fn bench_perturb_dims(c: &mut Criterion) {
    let ncp = Ncp::new(1.0).unwrap();
    let mut group = c.benchmark_group("gaussian_perturb_by_dim");
    for d in [9usize, 20, 54, 90, 512] {
        let model = model_of_dim(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &model, |b, m| {
            let mut rng = seeded_rng(1);
            b.iter(|| {
                GaussianMechanism
                    .perturb(black_box(m), ncp, &mut rng)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_mechanism_comparison(c: &mut Criterion) {
    let ncp = Ncp::new(1.0).unwrap();
    let model = model_of_dim(90); // YearMSD dimensionality
    let mechanisms: Vec<(&str, Box<dyn RandomizedMechanism>)> = vec![
        ("gaussian", Box::new(GaussianMechanism)),
        ("laplace", Box::new(LaplaceMechanism)),
        ("uniform", Box::new(UniformMechanism)),
    ];
    let mut group = c.benchmark_group("mechanisms_d90");
    for (name, mech) in mechanisms {
        group.bench_function(name, |b| {
            let mut rng = seeded_rng(2);
            b.iter(|| mech.perturb(black_box(&model), ncp, &mut rng).unwrap())
        });
    }
    group.finish();
}

/// Naive Box–Muller vs snapped discrete Gaussian, across dimensionalities.
/// The ratio is the price of floating-point-attack safety per sale.
fn bench_naive_vs_snapped(c: &mut Criterion) {
    let ncp = Ncp::new(1.0).unwrap();
    let mut group = c.benchmark_group("naive_vs_snapped_perturb");
    for d in [9usize, 90, 512] {
        let model = model_of_dim(d);
        // Warm-up comparison for the JSON artifact.
        let mut rng = seeded_rng(3);
        let naive_ns = time_ns(2_000, || {
            black_box(GaussianMechanism.perturb(&model, ncp, &mut rng).unwrap());
        });
        let snapped_ns = time_ns(2_000, || {
            black_box(
                SnappedGaussianMechanism
                    .perturb(&model, ncp, &mut rng)
                    .unwrap(),
            );
        });
        println!(
            "perturb d={d}: naive {naive_ns:.0} ns/op, snapped {snapped_ns:.0} ns/op \
             ({:.1}x premium)",
            snapped_ns / naive_ns.max(1e-9),
        );
        record(
            &format!("mechanism/naive_d{d}"),
            naive_ns,
            &format!("\"dim\": {d}"),
        );
        record(
            &format!("mechanism/snapped_d{d}"),
            snapped_ns,
            &format!(
                "\"dim\": {d}, \"premium_vs_naive\": {:.2}",
                snapped_ns / naive_ns.max(1e-9)
            ),
        );
        for (name, mech) in [
            ("naive", &GaussianMechanism as &dyn RandomizedMechanism),
            ("snapped", &SnappedGaussianMechanism),
        ] {
            group.bench_with_input(BenchmarkId::new(name, d), &model, |b, m| {
                let mut rng = seeded_rng(4);
                b.iter(|| mech.perturb(black_box(m), ncp, &mut rng).unwrap())
            });
        }
    }
    group.finish();
}

/// The pre-durability budget check in its three hot-path regimes. Charges
/// are paired with refunds so the account never exhausts mid-measurement
/// (the reject regime seeds an already-exhausted buyer instead).
fn bench_budget_check_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_check");

    let unmetered = BuyerAccounts::new(None);
    let metered = BuyerAccounts::new(Some(1e12));
    let exhausted = BuyerAccounts::new(Some(100.0));
    exhausted.seed(&[(7, 100.0)]);

    let unmetered_ns = time_ns(100_000, || {
        unmetered.charge(7, 10.0).unwrap();
        unmetered.refund(7, 10.0);
    });
    let admit_ns = time_ns(100_000, || {
        metered.charge(7, 10.0).unwrap();
        metered.refund(7, 10.0);
    });
    let reject_ns = time_ns(100_000, || {
        black_box(exhausted.charge(7, 10.0).is_err());
    });
    println!(
        "budget check: unmetered {unmetered_ns:.0} ns, metered-admit {admit_ns:.0} ns, \
         metered-reject {reject_ns:.0} ns (charge+refund pairs)"
    );
    record("budget/unmetered_charge_refund", unmetered_ns, "");
    record("budget/metered_admit_charge_refund", admit_ns, "");
    record("budget/metered_reject", reject_ns, "");

    group.bench_function("unmetered_charge_refund", |b| {
        b.iter(|| {
            unmetered.charge(7, 10.0).unwrap();
            unmetered.refund(7, 10.0);
        })
    });
    group.bench_function("metered_admit_charge_refund", |b| {
        b.iter(|| {
            metered.charge(7, 10.0).unwrap();
            metered.refund(7, 10.0);
        })
    });
    group.bench_function("metered_reject", |b| {
        b.iter(|| black_box(exhausted.charge(7, 10.0).is_err()))
    });
    group.finish();
    flush_bench_json();
}

criterion_group!(
    benches,
    bench_perturb_dims,
    bench_mechanism_comparison,
    bench_naive_vs_snapped,
    bench_budget_check_overhead
);
criterion_main!(benches);
