//! Noisy-model-generation benches: the per-sale cost that makes real-time
//! broker interaction possible (§4: "avoids training a model instance from
//! scratch").
//!
//! Expected shape: perturbing a d-dimensional model is O(d) and measured in
//! nanoseconds-to-microseconds — negligible against the one-time training
//! cost in the `training` bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nimbus_core::{
    GaussianMechanism, LaplaceMechanism, Ncp, RandomizedMechanism, UniformMechanism,
};
use nimbus_linalg::Vector;
use nimbus_ml::LinearModel;
use nimbus_randkit::seeded_rng;
use std::hint::black_box;

fn model_of_dim(d: usize) -> LinearModel {
    LinearModel::new(Vector::from_vec(
        (0..d).map(|i| (i as f64 * 0.37).sin()).collect(),
    ))
}

fn bench_perturb_dims(c: &mut Criterion) {
    let ncp = Ncp::new(1.0).unwrap();
    let mut group = c.benchmark_group("gaussian_perturb_by_dim");
    for d in [9usize, 20, 54, 90, 512] {
        let model = model_of_dim(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &model, |b, m| {
            let mut rng = seeded_rng(1);
            b.iter(|| {
                GaussianMechanism
                    .perturb(black_box(m), ncp, &mut rng)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_mechanism_comparison(c: &mut Criterion) {
    let ncp = Ncp::new(1.0).unwrap();
    let model = model_of_dim(90); // YearMSD dimensionality
    let mechanisms: Vec<(&str, Box<dyn RandomizedMechanism>)> = vec![
        ("gaussian", Box::new(GaussianMechanism)),
        ("laplace", Box::new(LaplaceMechanism)),
        ("uniform", Box::new(UniformMechanism)),
    ];
    let mut group = c.benchmark_group("mechanisms_d90");
    for (name, mech) in mechanisms {
        group.bench_function(name, |b| {
            let mut rng = seeded_rng(2);
            b.iter(|| mech.perturb(black_box(&model), ncp, &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_perturb_dims, bench_mechanism_comparison);
criterion_main!(benches);
