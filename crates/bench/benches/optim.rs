//! Revenue-optimization benches: the §6.3 runtime claims.
//!
//! * `dp`: Algorithm 1 at n = 10 … 1000 — quadratic, microseconds to low
//!   milliseconds.
//! * `milp`: Algorithm 2 at k = 4 … 12 — exponential (each +1 doubles it).
//! * `baselines`: the trivial comparison strategies.
//! * Paper shape to confirm: at k = 10, `milp / dp` is orders of magnitude.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nimbus_bench::{integer_convex_problem, standard_market};
use nimbus_optim::baselines::{Baseline, BaselineKind};
use nimbus_optim::{solve_revenue_brute_force, solve_revenue_dp};
use std::hint::black_box;

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("revenue_dp");
    for n in [10usize, 50, 100, 400, 1000] {
        let problem = standard_market(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| solve_revenue_dp(black_box(p)).unwrap())
        });
    }
    group.finish();
}

fn bench_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("revenue_milp_brute_force");
    group.sample_size(10);
    for k in [4usize, 6, 8, 10, 12] {
        let problem = integer_convex_problem(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &problem, |b, p| {
            b.iter(|| solve_revenue_brute_force(black_box(p)).unwrap())
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let problem = standard_market(100);
    let mut group = c.benchmark_group("baselines_n100");
    for kind in BaselineKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| Baseline::fit(black_box(k), black_box(&problem)).unwrap())
        });
    }
    group.finish();
}

fn bench_fairness_frontier(c: &mut Criterion) {
    // The §7 future-work ablation: a full Lagrangian frontier sweep is just
    // a handful of DP solves, so it should stay in the tens of microseconds
    // even at figure scale.
    let problem = standard_market(100);
    let lambdas = [0.0, 1.0, 4.0, 16.0, 64.0];
    c.bench_function("fairness_frontier_5_lambdas_n100", |b| {
        b.iter(|| {
            nimbus_optim::fairness::fairness_frontier(black_box(&problem), black_box(&lambdas))
                .unwrap()
        })
    });
}

fn bench_isotonic_projection(c: &mut Criterion) {
    // The Dykstra/PAV inner loop of the T²_PI interpolation solver.
    let mut group = c.benchmark_group("relaxed_projection");
    for n in [50usize, 500, 5_000] {
        let a: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let targets: Vec<f64> = (0..n)
            .map(|i| ((i * 7919) % 101) as f64 + (i as f64).sqrt())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                nimbus_optim::interpolation::project_relaxed_feasible(
                    black_box(&a),
                    black_box(&targets),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dp,
    bench_milp,
    bench_baselines,
    bench_fairness_frontier,
    bench_isotonic_projection
);
criterion_main!(benches);
