//! Loopback serving throughput: the full TCP path (framing, admission,
//! worker pool, broker snapshot reads, striped ledger) under N client
//! threads × M requests each.
//!
//! Two regimes:
//! * `within capacity` — the admission queues dwarf the client count, so
//!   every request is served; the number is end-to-end requests/second
//!   through real sockets.
//! * `flood` — one worker, queue of one, a deliberate per-request service
//!   delay: most connections must be shed with `BUSY`. What's measured is
//!   that overload resolves quickly and explicitly (shed rate printed),
//!   not slowly by queueing.
//!
//! Each benchmark prints one summary line (throughput + shed rate) from a
//! warm-up run before criterion measures, so the numbers survive even when
//! the vendored criterion shim runs bodies once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nimbus_core::GaussianMechanism;
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};
use nimbus_market::{Broker, Seller};
use nimbus_ml::LinearRegressionTrainer;
use nimbus_server::loadgen::{run_load, LoadConfig, LoadMode, LoadReport};
use nimbus_server::{ClientConfig, NimbusServer, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn make_open_broker() -> Arc<Broker> {
    let (dataset, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 2_000)
        .materialize(5)
        .expect("dataset");
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    let broker = Broker::builder(Seller::new("bench", dataset, curves))
        .trainer(LinearRegressionTrainer::ridge(1e-6))
        .mechanism(GaussianMechanism)
        .n_price_points(50)
        .error_curve_samples(50)
        .seed(5)
        .build()
        .expect("valid config");
    broker.open_market().expect("market opens");
    Arc::new(broker)
}

fn summarize(label: &str, report: &LoadReport) {
    println!(
        "{label}: {} ok / {} busy / {} errors in {:?} -> {:.0} req/s, shed rate {:.1}%",
        report.ok,
        report.busy,
        report.errors,
        report.elapsed,
        report.throughput(),
        100.0 * report.shed_rate()
    );
}

fn bench_within_capacity(c: &mut Criterion) {
    let server = NimbusServer::start(
        make_open_broker(),
        "bench",
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            workers_per_shard: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let mut group = c.benchmark_group("server_loopback");
    group.sample_size(10);
    for (threads, mode, tag) in [
        (1usize, LoadMode::Quote, "quote"),
        (4, LoadMode::Quote, "quote"),
        (8, LoadMode::Quote, "quote"),
        (4, LoadMode::Buy, "buy"),
    ] {
        let config = LoadConfig {
            threads,
            requests_per_thread: 256,
            mode,
            client: ClientConfig::default(),
            busy_retries: 0,
        };
        let warmup = run_load(addr, &config);
        assert_eq!(warmup.ok, warmup.attempted, "within capacity: no sheds");
        summarize(&format!("server_loopback/{tag}/{threads}t"), &warmup);
        group.bench_with_input(
            BenchmarkId::new(tag, format!("{threads}t")),
            &config,
            |b, config| {
                b.iter(|| {
                    let report = run_load(addr, config);
                    assert_eq!(report.errors, 0);
                    report.ok
                })
            },
        );
    }
    group.finish();
    server.shutdown();
}

fn bench_flood_shedding(c: &mut Criterion) {
    // One slow worker and a queue of one: a 16-thread flood must shed.
    let server = NimbusServer::start(
        make_open_broker(),
        "bench-flood",
        "127.0.0.1:0",
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 1,
            handle_delay: Some(Duration::from_millis(2)),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();
    let config = LoadConfig {
        threads: 16,
        requests_per_thread: 16,
        mode: LoadMode::Quote,
        client: ClientConfig::default(),
        busy_retries: 0,
    };
    let warmup = run_load(addr, &config);
    assert!(warmup.busy > 0, "flood must shed");
    assert_eq!(warmup.errors, 0, "sheds are typed BUSY, never resets");
    summarize("server_flood/16t", &warmup);

    let mut group = c.benchmark_group("server_flood");
    group.sample_size(10);
    group.bench_function("16_threads_vs_1_worker", |b| {
        b.iter(|| {
            let report = run_load(addr, &config);
            assert_eq!(report.errors, 0);
            (report.ok, report.busy)
        })
    });
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_within_capacity, bench_flood_shedding);
criterion_main!(benches);
