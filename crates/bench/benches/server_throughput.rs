//! Loopback serving throughput: the full TCP path (framing, admission,
//! worker pool, listing routing, broker snapshot reads, striped ledger)
//! under N client threads × M requests each.
//!
//! Five regimes:
//! * `within capacity` — the admission queues dwarf the client count, so
//!   every request is served; the number is end-to-end requests/second
//!   through real sockets against a single-listing marketplace.
//! * `multi-listing` — the same load spread over an 8-listing marketplace
//!   with a uniform per-listing mix, so every request exercises the
//!   lock-free directory lookup and a distinct listing's snapshot.
//! * `flood` — one worker, queue of one, a deliberate per-request service
//!   delay: most connections must be shed with `BUSY`. What's measured is
//!   that overload resolves quickly and explicitly (shed rate printed),
//!   not slowly by queueing.
//! * `journalled commit` — the same buy load against a *journalled*
//!   listing, three ways: fsync-per-commit baseline, group commit
//!   (coalesced fsyncs), and group commit + pipelined `BATCH_COMMIT`
//!   frames. Every regime has identical durability (ACK ⇒ fsynced); the
//!   spread is the amortized ACK barrier.
//! * `idle connections` — quote latency with hundreds (or, with
//!   `NIMBUS_BENCH_10K=1`, ten thousand) of idle sockets parked on the
//!   event loop; p99 must not degrade with the herd.
//!
//! Each benchmark prints one summary line (throughput + shed rate) from a
//! warm-up run before criterion measures, so the numbers survive even when
//! the vendored criterion shim runs bodies once. When the
//! `NIMBUS_BENCH_JSON` environment variable names a path, the warm-up
//! summaries are also persisted there as a JSON document (the CI step
//! writes `BENCH_pr7.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nimbus_core::GaussianMechanism;
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};
use nimbus_market::{ListingBuilder, Marketplace, Seller};
use nimbus_ml::LinearRegressionTrainer;
use nimbus_server::loadgen::{run_load, LoadConfig, LoadMode, LoadReport};
use nimbus_server::{ClientConfig, NimbusServer, ServerConfig};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Builders for `n` published listings named `bench-0..bench-n`, all
/// backed by the same materialized dataset (the marketplace builds them
/// in parallel).
fn listing_builders(n: usize) -> Vec<ListingBuilder> {
    let (dataset, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 2_000)
        .materialize(5)
        .expect("dataset");
    (0..n)
        .map(|i| {
            let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
            let seller = Seller::new(format!("bench-{i}"), dataset.clone(), curves);
            ListingBuilder::new(format!("bench-{i}"), seller)
                .trainer(LinearRegressionTrainer::ridge(1e-6))
                .mechanism(GaussianMechanism)
                .n_price_points(50)
                .error_curve_samples(50)
                .seed(5 + i as u64)
        })
        .collect()
}

fn make_marketplace(listings: usize) -> Arc<Marketplace> {
    Arc::new(Marketplace::open_listings(listing_builders(listings)).expect("valid config"))
}

/// Warm-up summaries collected for the optional JSON artifact.
fn recorded() -> &'static Mutex<Vec<String>> {
    static RECORDS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn record(label: &str, listings: usize, threads: usize, report: &LoadReport) {
    let entry = format!(
        "    {{\"label\": \"{label}\", \"listings\": {listings}, \"threads\": {threads}, \
         \"ok\": {}, \"busy\": {}, \"errors\": {}, \"elapsed_secs\": {:.6}, \
         \"throughput_rps\": {:.1}, \"shed_rate\": {:.4}, \
         \"open_connections\": {}, \"p50_us\": {}, \"p99_us\": {}}}",
        report.ok,
        report.busy,
        report.errors,
        report.elapsed.as_secs_f64(),
        report.throughput(),
        report.shed_rate(),
        report.open_connections,
        report.p50_micros,
        report.p99_micros
    );
    recorded().lock().expect("records lock").push(entry);
}

/// Writes the collected summaries to `$NIMBUS_BENCH_JSON`, if set. A
/// relative path is anchored at the workspace root (criterion runs with
/// the package directory as CWD, which is not where CI looks).
fn flush_bench_json() {
    let Ok(path) = std::env::var("NIMBUS_BENCH_JSON") else {
        return;
    };
    let mut target = PathBuf::from(&path);
    if target.is_relative() {
        target = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(target);
    }
    let entries = recorded().lock().expect("records lock");
    let doc = format!(
        "{{\n  \"bench\": \"server_throughput\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&target, doc).expect("write bench json");
    println!("bench summaries written to {}", target.display());
}

fn summarize(label: &str, report: &LoadReport) {
    println!(
        "{label}: {} ok / {} busy / {} errors in {:?} -> {:.0} req/s, shed rate {:.1}%",
        report.ok,
        report.busy,
        report.errors,
        report.elapsed,
        report.throughput(),
        100.0 * report.shed_rate()
    );
}

fn bench_within_capacity(c: &mut Criterion) {
    let server = NimbusServer::start(
        make_marketplace(1),
        "bench-0",
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            workers_per_shard: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let mut group = c.benchmark_group("server_loopback");
    group.sample_size(10);
    for (threads, mode, tag) in [
        (1usize, LoadMode::Quote, "quote"),
        (4, LoadMode::Quote, "quote"),
        (8, LoadMode::Quote, "quote"),
        (4, LoadMode::Buy, "buy"),
    ] {
        let config = LoadConfig {
            threads,
            requests_per_thread: 256,
            mode,
            client: ClientConfig::default(),
            busy_retries: 0,
            mix: Vec::new(),
            ..LoadConfig::default()
        };
        let warmup = run_load(addr, &config);
        assert_eq!(warmup.ok, warmup.attempted, "within capacity: no sheds");
        summarize(&format!("server_loopback/{tag}/{threads}t"), &warmup);
        record(&format!("single_listing/{tag}"), 1, threads, &warmup);
        group.bench_with_input(
            BenchmarkId::new(tag, format!("{threads}t")),
            &config,
            |b, config| {
                b.iter(|| {
                    let report = run_load(addr, config);
                    assert_eq!(report.errors, 0);
                    report.ok
                })
            },
        );
    }
    group.finish();
    server.shutdown();
}

fn bench_multi_listing_routing(c: &mut Criterion) {
    const LISTINGS: usize = 8;
    let marketplace = make_marketplace(LISTINGS);
    let names = marketplace.names();
    assert_eq!(names.len(), LISTINGS);
    let server = NimbusServer::start(
        marketplace,
        "bench-0",
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            workers_per_shard: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let mut group = c.benchmark_group("server_multi_listing");
    group.sample_size(10);
    for (threads, mode, tag) in [
        (4usize, LoadMode::Quote, "quote"),
        (4, LoadMode::Buy, "buy"),
    ] {
        let config = LoadConfig {
            threads,
            requests_per_thread: 256,
            mode,
            client: ClientConfig::default(),
            busy_retries: 0,
            mix: names.iter().map(|n| (n.clone(), 1)).collect(),
            ..LoadConfig::default()
        };
        let warmup = run_load(addr, &config);
        assert_eq!(warmup.ok, warmup.attempted, "within capacity: no sheds");
        assert_eq!(
            warmup.per_listing.len(),
            LISTINGS,
            "uniform mix must reach every listing"
        );
        summarize(
            &format!("server_multi_listing/{tag}/{threads}t/{LISTINGS}l"),
            &warmup,
        );
        record(&format!("mix_8_listings/{tag}"), LISTINGS, threads, &warmup);
        group.bench_with_input(
            BenchmarkId::new(tag, format!("{threads}t_{LISTINGS}l")),
            &config,
            |b, config| {
                b.iter(|| {
                    let report = run_load(addr, config);
                    assert_eq!(report.errors, 0);
                    report.ok
                })
            },
        );
    }
    group.finish();
    server.shutdown();
}

/// A single journalled listing rooted at a fresh scratch directory.
fn journalled_marketplace(
    tag: &str,
    group_commit: Option<Duration>,
) -> (Arc<Marketplace>, PathBuf) {
    let root =
        std::env::temp_dir().join(format!("nimbus-bench-journal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut builder = listing_builders(1).remove(0).journal_root(&root);
    if let Some(window) = group_commit {
        builder = builder.journal_group_commit_window(window);
    }
    let marketplace =
        Arc::new(Marketplace::open_listings(vec![builder]).expect("valid journalled config"));
    (marketplace, root)
}

fn bench_journalled_commits(c: &mut Criterion) {
    // Same durability everywhere (ACK implies the sale is fsynced); what
    // varies is how many commits share one write+fsync. The third variant
    // compounds group commit with v4 BATCH_COMMIT frames so a batch of 16
    // costs one round trip *and* (typically) one fsync.
    let variants: [(&str, Option<Duration>, usize, usize); 3] = [
        ("fsync_per_commit", None, 1, 1),
        ("group_commit", Some(Duration::from_micros(500)), 1, 1),
        (
            "group_commit_batched",
            Some(Duration::from_micros(500)),
            16,
            16,
        ),
    ];
    let mut group = c.benchmark_group("server_journalled_commit");
    group.sample_size(10);
    let mut throughputs = Vec::new();
    for (tag, window, pipeline, batch) in variants {
        let (marketplace, root) = journalled_marketplace(tag, window);
        let server = NimbusServer::start(
            marketplace,
            "bench-0",
            "127.0.0.1:0",
            ServerConfig {
                shards: 2,
                workers_per_shard: 4,
                queue_capacity: 64,
                ..ServerConfig::default()
            },
        )
        .expect("server starts");
        let addr = server.local_addr();
        let config = LoadConfig {
            threads: 4,
            requests_per_thread: 256,
            mode: LoadMode::Buy,
            client: ClientConfig::default(),
            busy_retries: 4,
            mix: Vec::new(),
            pipeline_depth: pipeline,
            batch_size: batch,
            ..LoadConfig::default()
        };
        let warmup = run_load(addr, &config);
        assert_eq!(warmup.errors, 0, "journalled commits must not error");
        assert_eq!(warmup.ok, warmup.attempted, "journalled commits all land");
        summarize(&format!("server_journalled_commit/{tag}"), &warmup);
        record(&format!("journal/{tag}"), 1, 4, &warmup);
        throughputs.push((tag, warmup.throughput()));
        group.bench_with_input(BenchmarkId::new("buy", tag), &config, |b, config| {
            b.iter(|| {
                let report = run_load(addr, config);
                assert_eq!(report.errors, 0);
                report.ok
            })
        });
        server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
    group.finish();
    if let (Some((_, base)), Some((_, best))) = (throughputs.first(), throughputs.last()) {
        println!(
            "server_journalled_commit: group commit + BATCH_COMMIT is {:.1}x \
             fsync-per-commit at equal durability",
            best / base
        );
    }
}

fn bench_idle_connection_herd(c: &mut Criterion) {
    // The event loop parks idle sockets for free: quote latency with a
    // herd of idle connections must stay close to the small-fleet number.
    // The default herd is 512 so the regime always runs; NIMBUS_BENCH_10K=1
    // scales it to ten thousand (raising RLIMIT_NOFILE first).
    // Every loopback connection costs *two* fds in this process (client
    // end + accepted server end), so size the herd from the fd budget we
    // actually obtained, with headroom for journals, pollers and load
    // connections.
    let herd = if std::env::var("NIMBUS_BENCH_10K").is_ok_and(|v| v == "1") {
        let limit = nimbus_server::sys::raise_nofile_limit(24_576).expect("raise nofile limit");
        (limit.saturating_sub(1_024) as usize / 2).min(10_000)
    } else {
        nimbus_server::sys::raise_nofile_limit(4_096).expect("raise nofile limit");
        512
    };
    let server = NimbusServer::start(
        make_marketplace(1),
        "bench-0",
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            workers_per_shard: 4,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let mut group = c.benchmark_group("server_idle_herd");
    group.sample_size(10);
    let mut p99s = Vec::new();
    for (tag, idle) in [("64_conns", 60usize), ("herd", herd)] {
        let label = if tag == "herd" {
            format!("{}_conns", herd + 4)
        } else {
            tag.to_string()
        };
        let config = LoadConfig {
            threads: 4,
            requests_per_thread: 256,
            mode: LoadMode::Quote,
            client: ClientConfig::default(),
            busy_retries: 0,
            mix: Vec::new(),
            pipeline_depth: 8,
            idle_connections: idle,
            ..LoadConfig::default()
        };
        let warmup = run_load(addr, &config);
        assert_eq!(
            warmup.ok, warmup.attempted,
            "idle herd must not shed quotes"
        );
        assert_eq!(warmup.open_connections, (4 + idle) as u64);
        summarize(&format!("server_idle_herd/{label}"), &warmup);
        println!(
            "server_idle_herd/{label}: p50 {} us, p99 {} us",
            warmup.p50_micros, warmup.p99_micros
        );
        record(&format!("idle/{label}"), 1, 4, &warmup);
        p99s.push(warmup.p99_micros);
        // Criterion-iterate only the small fleet: re-opening the full herd
        // ten times races fd reclamation of the previous herd's sockets.
        if tag != "herd" {
            group.bench_with_input(BenchmarkId::new("quote", &label), &config, |b, config| {
                b.iter(|| {
                    let report = run_load(addr, config);
                    assert_eq!(report.errors, 0);
                    report.ok
                })
            });
        }
    }
    group.finish();
    server.shutdown();
    if let [base, herd_p99] = p99s[..] {
        println!(
            "server_idle_herd: p99 with {herd} idle conns is {:.2}x the 64-conn p99",
            herd_p99 as f64 / base.max(1) as f64
        );
    }
}

fn bench_flood_shedding(c: &mut Criterion) {
    // One slow worker and a queue of one: a 16-thread flood must shed.
    let server = NimbusServer::start(
        make_marketplace(1),
        "bench-0",
        "127.0.0.1:0",
        ServerConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 1,
            handle_delay: Some(Duration::from_millis(2)),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();
    let config = LoadConfig {
        threads: 16,
        requests_per_thread: 16,
        mode: LoadMode::Quote,
        client: ClientConfig::default(),
        busy_retries: 0,
        mix: Vec::new(),
        ..LoadConfig::default()
    };
    let warmup = run_load(addr, &config);
    assert!(warmup.busy > 0, "flood must shed");
    assert_eq!(warmup.errors, 0, "sheds are typed BUSY, never resets");
    summarize("server_flood/16t", &warmup);
    record("flood/quote", 1, 16, &warmup);

    let mut group = c.benchmark_group("server_flood");
    group.sample_size(10);
    group.bench_function("16_threads_vs_1_worker", |b| {
        b.iter(|| {
            let report = run_load(addr, &config);
            assert_eq!(report.errors, 0);
            (report.ok, report.busy)
        })
    });
    group.finish();
    server.shutdown();
    // Last benchmark in the group: persist the collected summaries.
    flush_bench_json();
}

criterion_group!(
    benches,
    bench_within_capacity,
    bench_multi_listing_routing,
    bench_journalled_commits,
    bench_idle_connection_herd,
    bench_flood_shedding
);
criterion_main!(benches);
