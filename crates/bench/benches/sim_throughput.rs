//! Closed-loop simulator throughput: the full agent-ecology path (adaptive
//! agents, pipelined v4 quote/commit traffic over real sockets, empirical
//! demand aggregation, DP re-pricing with epoch-kill) measured end to end.
//!
//! Two regimes over built-in scenarios:
//! * `smoke` — 40 agents × 40 ticks, one listing, three re-price cycles;
//!   the bounded CI configuration.
//! * `baseline` — 120 agents × 120 ticks, the default catalog scenario.
//!
//! Reported per scenario: ticks/second, committed sales/second, and the
//! re-price latency (mean and max of the in-process re-optimization +
//! hot re-publish). As with the server benches, a warm-up run prints the
//! summary line before criterion measures, and when `NIMBUS_BENCH_JSON`
//! names a path the summaries are persisted there as a JSON document
//! (the CI step writes `BENCH_pr8.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nimbus_agents::engine::run_scenario;
use nimbus_agents::harness::SimHarness;
use nimbus_agents::scenario::Scenario;
use nimbus_agents::SimOutcome;
use nimbus_market::clock::wall_clock;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// One full closed-loop run on a fresh harness (fresh marketplace, fresh
/// server, fresh port): what a `nimbus sim run` costs end to end.
fn run_once(scenario: &Scenario, seed: u64) -> SimOutcome {
    let harness = SimHarness::start(scenario, seed).expect("harness starts");
    let outcome = run_scenario(
        scenario,
        seed,
        harness.server.local_addr(),
        &harness.marketplace,
        &wall_clock(),
    )
    .expect("run completes");
    harness.server.shutdown();
    outcome
}

/// Warm-up summaries collected for the optional JSON artifact.
fn recorded() -> &'static Mutex<Vec<String>> {
    static RECORDS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn record(scenario: &Scenario, outcome: &SimOutcome) {
    let elapsed = outcome.elapsed.as_secs_f64().max(1e-9);
    let reprice_mean_us = if outcome.reprice_count > 0 {
        outcome.reprice_total.as_secs_f64() * 1e6 / outcome.reprice_count as f64
    } else {
        0.0
    };
    let entry = format!(
        "    {{\"label\": \"sim/{}\", \"agents\": {}, \"ticks\": {}, \"listings\": {}, \
         \"commits\": {}, \"elapsed_secs\": {:.6}, \"ticks_per_sec\": {:.1}, \
         \"commits_per_sec\": {:.1}, \"reprice_count\": {}, \
         \"reprice_mean_us\": {:.1}, \"reprice_max_us\": {:.1}}}",
        outcome.scenario,
        scenario.agents,
        scenario.ticks,
        scenario.listings.len(),
        outcome.acked_commits(),
        elapsed,
        outcome.records.len() as f64 / elapsed,
        outcome.acked_commits() as f64 / elapsed,
        outcome.reprice_count,
        reprice_mean_us,
        outcome.reprice_max.as_secs_f64() * 1e6,
    );
    recorded().lock().expect("records lock").push(entry);
}

/// Writes the collected summaries to `$NIMBUS_BENCH_JSON`, if set. A
/// relative path is anchored at the workspace root (criterion runs with
/// the package directory as CWD, which is not where CI looks).
fn flush_bench_json() {
    let Ok(path) = std::env::var("NIMBUS_BENCH_JSON") else {
        return;
    };
    let mut target = PathBuf::from(&path);
    if target.is_relative() {
        target = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(target);
    }
    let entries = recorded().lock().expect("records lock");
    let doc = format!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&target, doc).expect("write bench json");
    println!("bench summaries written to {}", target.display());
}

fn summarize(outcome: &SimOutcome) {
    let elapsed = outcome.elapsed.as_secs_f64().max(1e-9);
    println!(
        "sim/{}: {} ticks, {} commits in {:?} -> {:.0} ticks/s, {:.0} commits/s, \
         {} re-prices (mean {:?}, max {:?})",
        outcome.scenario,
        outcome.records.len(),
        outcome.acked_commits(),
        outcome.elapsed,
        outcome.records.len() as f64 / elapsed,
        outcome.acked_commits() as f64 / elapsed,
        outcome.reprice_count,
        outcome
            .reprice_total
            .checked_div(outcome.reprice_count.max(1) as u32)
            .unwrap_or_default(),
        outcome.reprice_max,
    );
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    for name in ["smoke", "baseline"] {
        let scenario = Scenario::builtin(name).expect("catalog name resolves");
        let warmup = run_once(&scenario, 7);
        assert_eq!(warmup.records.len() as u64, scenario.ticks);
        assert!(warmup.acked_commits() > 0, "closed loop must transact");
        assert!(warmup.reprice_count > 0, "re-pricer must fire");
        summarize(&warmup);
        record(&scenario, &warmup);
        group.bench_with_input(
            BenchmarkId::new("closed_loop", name),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    let outcome = run_once(scenario, 7);
                    assert!(outcome.acked_commits() > 0);
                    outcome.records.len()
                })
            },
        );
    }
    group.finish();
    flush_bench_json();
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
