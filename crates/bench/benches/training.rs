//! Broker one-time training cost across trainers and dataset sizes —
//! the fixed cost the noise mechanism amortizes over unlimited sales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nimbus_data::synthetic::{
    generate_classification, generate_regression, ClassificationSpec, RegressionSpec,
};
use nimbus_ml::{LinearRegressionTrainer, LogisticRegressionTrainer, PegasosSvmTrainer, Trainer};
use std::hint::black_box;

fn bench_linear_regression(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_linear_regression_d20");
    group.sample_size(20);
    for n in [1_000usize, 5_000, 20_000] {
        let (data, _) = generate_regression(&RegressionSpec::simulated1(n, 20), 1).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            let trainer = LinearRegressionTrainer::ridge(1e-6);
            b.iter(|| trainer.train(black_box(d)).unwrap())
        });
    }
    group.finish();
}

fn bench_logistic_regression(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_logistic_newton_d20");
    group.sample_size(10);
    for n in [1_000usize, 5_000] {
        let (data, _) = generate_classification(&ClassificationSpec::simulated2(n, 20), 2).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            let trainer = LogisticRegressionTrainer::new(1e-4);
            b.iter(|| trainer.train(black_box(d)).unwrap())
        });
    }
    group.finish();
}

fn bench_pegasos(c: &mut Criterion) {
    let (data, _) = generate_classification(&ClassificationSpec::simulated2(5_000, 20), 3).unwrap();
    let mut group = c.benchmark_group("train_pegasos_svm_n5000_d20");
    group.sample_size(10);
    for iters in [20_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &it| {
            let trainer = PegasosSvmTrainer {
                iterations: it,
                ..PegasosSvmTrainer::new(1e-3, 7)
            };
            b.iter(|| trainer.train(black_box(&data)).unwrap())
        });
    }
    group.finish();
}

fn bench_streaming_least_squares(c: &mut Criterion) {
    // One-pass constant-memory training vs the materialized path — the
    // route to full Table 3 scale.
    use nimbus_data::stream::SyntheticRegressionStream;
    use nimbus_ml::streaming::train_least_squares_stream;
    let mut group = c.benchmark_group("train_streaming_least_squares_d20");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &rows| {
            b.iter(|| {
                let mut stream =
                    SyntheticRegressionStream::new(RegressionSpec::simulated1(rows, 20), 1);
                train_least_squares_stream(&mut stream, 1e-6).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_linear_regression,
    bench_logistic_regression,
    bench_pegasos,
    bench_streaming_least_squares
);
criterion_main!(benches);
