//! Shared fixtures for the Nimbus criterion benches.
//!
//! Each bench target mirrors a runtime claim of the paper's §6.3:
//!
//! * `optim` — Algorithm 1 DP vs Algorithm 2 brute force vs baselines, the
//!   core of Figures 9/10/13/14;
//! * `mechanism` — the per-sale cost of noisy model generation (the reason
//!   the broker can do "real time interaction");
//! * `training` — the broker's one-time training cost across trainers;
//! * `curves` — error-curve estimation (the Figure 6 inner loop) and the
//!   price-interpolation solvers;
//! * `market` — end-to-end market opening and purchase throughput.

use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};
use nimbus_optim::{PricePoint, RevenueProblem};

/// A convex-valued problem on the integer grid `a_j = 10·j` — grid-rational
/// so the brute force accepts it (as in the runtime figures).
pub fn integer_convex_problem(k: usize) -> RevenueProblem {
    let value = ValueCurve::standard_convex();
    let points: Vec<PricePoint> = (0..k)
        .map(|j| {
            let t = if k == 1 {
                0.5
            } else {
                j as f64 / (k - 1) as f64
            };
            PricePoint {
                a: 10.0 * (j + 1) as f64,
                b: 1.0 / k as f64,
                v: value.value_at(t),
            }
        })
        .collect();
    RevenueProblem::new(points).expect("valid bench problem")
}

/// The standard figure market: concave value, uniform demand, n points on
/// `1/NCP ∈ [1, 100]`.
pub fn standard_market(n: usize) -> RevenueProblem {
    MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform)
        .build_problem(n)
        .expect("valid market")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(integer_convex_problem(8).len(), 8);
        assert_eq!(standard_market(50).len(), 50);
    }
}
