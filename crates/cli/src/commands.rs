//! Command execution for the `nimbus` binary.
//!
//! Each command returns its report as a `String` (testable without stdout
//! capture). All markets are built from the same stack the experiments use.

use crate::parse::{usage, BuyRequest, ClientAction, Command, SimAction};
use nimbus::core::arbitrage::find_attack;
use nimbus::ml::{ErrorMetric, LossMetric};
use nimbus::prelude::ErrorCurve;
use nimbus::prelude::*;
use std::fmt::Write as _;

/// Boxed evaluation closure for buyer-side error functions. `Sync` so the
/// deterministic curve estimator may fan points out across threads.
type EvalFn = Box<dyn Fn(&LinearModel) -> nimbus::core::Result<f64> + Sync>;

/// Executes a parsed command, returning the text to print.
pub fn run_command(command: Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(usage()),
        Command::Demo { dataset, seed } => demo(&dataset, seed),
        Command::Price {
            value,
            demand,
            points,
        } => price(&value, &demand, points),
        Command::Buy {
            dataset,
            request,
            metric,
            seed,
        } => buy(&dataset, request, &metric, seed),
        Command::Attack {
            value,
            points,
            naive,
        } => attack(&value, points, naive),
        Command::Fairness { value, points, tau } => fairness(&value, points, tau),
        Command::Curve {
            dataset,
            samples,
            seed,
        } => error_curve(&dataset, samples, seed),
        Command::Serve {
            addr,
            datasets,
            metric,
            seed,
            shards,
            workers,
            queue,
            journal,
            journal_dir,
            buyer_budget,
        } => serve(
            &addr,
            &datasets,
            &metric,
            seed,
            shards,
            workers,
            queue,
            journal.as_deref(),
            journal_dir.as_deref(),
            buyer_budget,
        ),
        Command::Client { addr, action } => client(&addr, action),
        Command::Sim { action } => sim(action),
    }
}

fn lookup_dataset(name: &str) -> Result<PaperDataset, String> {
    PaperDataset::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!(
                "unknown dataset {name:?}; available: {}",
                PaperDataset::ALL
                    .iter()
                    .map(|d| d.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
}

fn lookup_value(shape: &str) -> Result<ValueCurve, String> {
    match shape.to_ascii_lowercase().as_str() {
        "convex" => Ok(ValueCurve::standard_convex()),
        "concave" => Ok(ValueCurve::standard_concave()),
        "linear" => Ok(ValueCurve::standard_linear()),
        "sigmoid" => Ok(ValueCurve::standard_sigmoid()),
        other => Err(format!(
            "unknown value shape {other:?}; available: convex, concave, linear, sigmoid"
        )),
    }
}

fn lookup_demand(shape: &str) -> Result<DemandCurve, String> {
    match shape.to_ascii_lowercase().as_str() {
        "uniform" => Ok(DemandCurve::Uniform),
        "mid_peaked" | "mid-peaked" => Ok(DemandCurve::MidPeaked { width: 0.15 }),
        "bimodal" => Ok(DemandCurve::BimodalExtremes { width: 0.12 }),
        "increasing" => Ok(DemandCurve::Increasing),
        "decreasing" => Ok(DemandCurve::Decreasing),
        other => Err(format!(
            "unknown demand shape {other:?}; available: uniform, mid_peaked, bimodal, \
             increasing, decreasing"
        )),
    }
}

/// Builds the `ErrorMetric` the market should price against, or `None` for
/// the closed-form square-distance default.
fn lookup_metric(
    metric: &str,
    dataset: PaperDataset,
    test: nimbus::data::Dataset,
) -> Result<Option<Box<dyn ErrorMetric>>, String> {
    let name = metric.to_ascii_lowercase();
    match name.as_str() {
        "square" => Ok(None),
        "logistic" | "zero_one" | "zero-one" | "hinge" => {
            if !matches!(dataset.task(), Task::BinaryClassification) {
                return Err(format!(
                    "metric {name:?} needs a binary-classification dataset; {} is regression",
                    dataset.name()
                ));
            }
            let boxed: Box<dyn ErrorMetric> = match name.as_str() {
                "logistic" => Box::new(LossMetric::logistic(test)),
                "hinge" => Box::new(LossMetric::hinge(test, 1e-4).map_err(|e| e.to_string())?),
                _ => Box::new(LossMetric::zero_one(test)),
            };
            Ok(Some(boxed))
        }
        other => Err(format!(
            "unknown metric {other:?}; available: square, logistic, zero_one, hinge"
        )),
    }
}

/// Human-facing label for a sale's expected-error line.
fn metric_label(metric: &str) -> String {
    match metric {
        "square" => "E[square loss]".to_string(),
        "logistic" => "E[logistic loss]".to_string(),
        "zero_one" => "E[0/1 error]".to_string(),
        "hinge" => "E[hinge loss]".to_string(),
        other => format!("E[{other}]"),
    }
}

fn build_broker(
    dataset: PaperDataset,
    metric: &str,
    seed: u64,
    journal: Option<&str>,
) -> Result<Broker, String> {
    let spec = DatasetSpec::scaled(dataset, 4_000);
    let (tt, _) = spec.materialize(seed).map_err(|e| e.to_string())?;
    let metric = lookup_metric(metric, dataset, tt.test.clone())?;
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    let seller = Seller::new(dataset.name(), tt, curves);
    let trainer: Box<dyn Trainer + Send + Sync> = match dataset.task() {
        Task::Regression => Box::new(LinearRegressionTrainer::ridge(1e-6)),
        Task::BinaryClassification => Box::new(LogisticRegressionTrainer::new(1e-4)),
    };
    let mut builder = Broker::builder(seller)
        .boxed_trainer(trainer)
        .mechanism(GaussianMechanism)
        .n_price_points(50)
        .error_curve_samples(50)
        .seed(seed);
    if let Some(path) = journal {
        builder = builder.journal(path);
    }
    if let Some(m) = metric {
        builder = builder.boxed_error_metric(m);
    }
    let broker = builder.build().map_err(|e| e.to_string())?;
    broker.open_market().map_err(|e| e.to_string())?;
    Ok(broker)
}

fn demo(dataset_name: &str, seed: u64) -> Result<String, String> {
    let dataset = lookup_dataset(dataset_name)?;
    let mut out = String::new();
    let _ = writeln!(out, "=== Nimbus demo on {} ===", dataset.name());

    let start = std::time::Instant::now();
    let broker = build_broker(dataset, "square", seed, None)?;
    let optimal = broker.optimal_model().map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "broker trained the optimal {}-feature model and opened the market in {:?}",
        optimal.dim(),
        start.elapsed()
    );
    let _ = writeln!(
        out,
        "expected revenue per unit demand: {:.2}",
        broker.expected_revenue().map_err(|e| e.to_string())?
    );

    let menu = broker.posted_menu().map_err(|e| e.to_string())?;
    let _ = writeln!(out, "\nposted price curve (excerpt):");
    for (x, p) in menu.iter().step_by((menu.len() / 5).max(1)) {
        let _ = writeln!(
            out,
            "  1/NCP {x:>6.1}  E[square loss] {:>8.4}  price {p:>7.2}",
            1.0 / x
        );
    }

    for (label, request) in [
        ("point x=25", PurchaseRequest::AtInverseNcp(25.0)),
        ("error budget 0.1", PurchaseRequest::ErrorBudget(0.1)),
        ("price budget 30", PurchaseRequest::PriceBudget(30.0)),
    ] {
        match broker
            .quote_request(request)
            .and_then(|quote| broker.commit(quote, quote.price))
        {
            Ok(sale) => {
                let _ = writeln!(
                    out,
                    "buyer ({label}): got x={:.1} for {:.2} (E[sq loss] {:.4})",
                    sale.inverse_ncp, sale.price, sale.expected_error
                );
            }
            Err(e) => {
                let _ = writeln!(out, "buyer ({label}): rejected — {e}");
            }
        }
    }
    let _ = writeln!(
        out,
        "\nledger: {} sales, revenue {:.2}",
        broker.sales_count(),
        broker.collected_revenue()
    );

    // Attack the posted menu: must fail.
    let pricing = PiecewiseLinearPricing::new(menu.clone()).map_err(|e| e.to_string())?;
    let xs: Vec<f64> = menu.iter().map(|(x, _)| *x).collect();
    let target = *xs.last().expect("non-empty menu");
    match find_attack(&pricing, target, &xs, 2_000).map_err(|e| e.to_string())? {
        None => {
            let _ = writeln!(
                out,
                "arbitrage search against the posted curve: NO attack exists (Theorem 5 holds)"
            );
        }
        Some(a) => {
            let _ = writeln!(out, "UNEXPECTED arbitrage found: {a:?}");
        }
    }
    Ok(out)
}

fn price(value: &str, demand: &str, points: usize) -> Result<String, String> {
    let curves = MarketCurves::new(lookup_value(value)?, lookup_demand(demand)?);
    let problem = curves.build_problem(points).map_err(|e| e.to_string())?;
    let outcomes =
        compare_strategies(&problem, &PricingStrategy::FAST).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "market: {value} value x {demand} demand, {points} versions"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>15}",
        "strategy", "revenue", "affordability"
    );
    for o in &outcomes {
        let _ = writeln!(
            out,
            "{:<10} {:>10.3} {:>15.3}",
            o.name, o.revenue, o.affordability
        );
    }
    let mbp = &outcomes[0];
    let _ = writeln!(out, "\nMBP price curve:");
    for (p, z) in problem
        .points()
        .iter()
        .zip(&mbp.prices)
        .step_by((points / 10).max(1))
    {
        let _ = writeln!(
            out,
            "  1/NCP {:>6.1}  value {:>7.2}  price {:>7.2}",
            p.a, p.v, z
        );
    }
    Ok(out)
}

fn buy(dataset_name: &str, request: BuyRequest, metric: &str, seed: u64) -> Result<String, String> {
    let dataset = lookup_dataset(dataset_name)?;
    let broker = build_broker(dataset, metric, seed, None)?;
    let req = match request {
        BuyRequest::ErrorBudget(e) => PurchaseRequest::ErrorBudget(e),
        BuyRequest::PriceBudget(p) => PurchaseRequest::PriceBudget(p),
        BuyRequest::AtInverseNcp(x) => PurchaseRequest::AtInverseNcp(x),
    };
    let quote = broker.quote_request(req).map_err(|e| e.to_string())?;
    let sale = broker
        .commit(quote, quote.price)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "purchased from the {} market:", dataset.name());
    let _ = writeln!(out, "  version       : 1/NCP = {:.2}", sale.inverse_ncp);
    let _ = writeln!(out, "  price         : {:.2}", sale.price);
    let _ = writeln!(
        out,
        "  {:<14}: {:.5}",
        metric_label(sale.metric),
        sale.expected_error
    );
    let _ = writeln!(
        out,
        "  model         : {} weights, first = {:.4}",
        sale.model.dim(),
        sale.model.weights()[0]
    );
    Ok(out)
}

fn attack(value: &str, points: usize, naive: bool) -> Result<String, String> {
    let curves = MarketCurves::new(lookup_value(value)?, DemandCurve::Uniform);
    let problem = curves.build_problem(points).map_err(|e| e.to_string())?;
    let params = problem.parameters();
    let prices = if naive {
        problem.valuations()
    } else {
        solve_revenue_dp(&problem)
            .map_err(|e| e.to_string())?
            .prices
    };
    let pricing = PiecewiseLinearPricing::new(params.iter().copied().zip(prices).collect())
        .map_err(|e| e.to_string())?;
    let target = *params.last().expect("non-empty");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "attacking the {} pricing of a {value}-value market at x = {target}",
        if naive {
            "NAIVE (valuation)"
        } else {
            "MBP (DP-optimized)"
        }
    );
    match find_attack(&pricing, target, &params, 2_000).map_err(|e| e.to_string())? {
        Some(a) => {
            let _ = writeln!(out, "ARBITRAGE FOUND:");
            let _ = writeln!(out, "  posted price : {:.2}", a.target_price);
            let _ = writeln!(out, "  buy instead  : {:?}", a.purchases);
            let _ = writeln!(
                out,
                "  total cost   : {:.2} (saves {:.2}; combined accuracy x = {:.1})",
                a.total_cost,
                a.savings(),
                a.combined_inverse_ncp()
            );
        }
        None => {
            let _ = writeln!(
                out,
                "no arbitrage exists (monotone + subadditive, Theorem 5)"
            );
        }
    }
    Ok(out)
}

fn fairness(value: &str, points: usize, tau: Option<f64>) -> Result<String, String> {
    use nimbus::optim::fairness::{fairness_frontier, maximize_revenue_with_affordability_floor};
    let curves = MarketCurves::new(lookup_value(value)?, DemandCurve::Uniform);
    let problem = curves.build_problem(points).map_err(|e| e.to_string())?;
    let lambdas = [0.0, 1.0, 4.0, 16.0, 64.0, 256.0];
    let frontier = fairness_frontier(&problem, &lambdas).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "revenue/affordability frontier ({value} value, uniform demand, {points} versions):"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>15}",
        "lambda", "revenue", "affordability"
    );
    for p in &frontier {
        let _ = writeln!(
            out,
            "{:>8.1} {:>10.3} {:>15.3}",
            p.lambda, p.revenue, p.affordability
        );
    }
    if let Some(tau) = tau {
        let sol =
            maximize_revenue_with_affordability_floor(&problem, tau).map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "\nhard floor tau = {tau}: revenue {:.3} at affordability {:.3} (lambda* = {:.3})",
            sol.revenue, sol.affordability, sol.lambda
        );
    }
    Ok(out)
}

fn error_curve(dataset_name: &str, samples: usize, seed: u64) -> Result<String, String> {
    let dataset = lookup_dataset(dataset_name)?;
    let spec = DatasetSpec::scaled(dataset, 4_000);
    let (tt, _) = spec.materialize(seed).map_err(|e| e.to_string())?;
    let trainer: Box<dyn Trainer + Send + Sync> = match dataset.task() {
        Task::Regression => Box::new(LinearRegressionTrainer::ridge(1e-6)),
        Task::BinaryClassification => Box::new(LogisticRegressionTrainer::new(1e-4)),
    };
    let model = trainer.train(&tt.train).map_err(|e| e.to_string())?;
    let test = tt.test.clone();
    let eval: EvalFn = match dataset.task() {
        Task::Regression => {
            Box::new(move |h: &LinearModel| nimbus::ml::metrics::mse(h, &test).map_err(Into::into))
        }
        Task::BinaryClassification => Box::new(move |h: &LinearModel| {
            nimbus::ml::metrics::zero_one_error(h, &test).map_err(Into::into)
        }),
    };
    let deltas: Vec<Ncp> = (0..12)
        .map(|i| Ncp::new(1.0 / (1.0 + 9.0 * i as f64)).expect("positive"))
        .collect();
    let curve = ErrorCurve::estimate(
        &GaussianMechanism,
        &model,
        eval,
        &deltas,
        samples.max(10),
        seed,
    )
    .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let loss_name = match dataset.task() {
        Task::Regression => "test MSE",
        Task::BinaryClassification => "test 0/1 error",
    };
    let _ = writeln!(
        out,
        "error transformation curve for {} ({loss_name}, {} samples/NCP):",
        dataset.name(),
        samples.max(10)
    );
    let mut pts: Vec<_> = curve.points().to_vec();
    pts.reverse();
    for p in &pts {
        let _ = writeln!(
            out,
            "  1/NCP {:>7.1}  E[error] {:>10.4}  (stderr {:.4})",
            p.inverse, p.mean_error, p.std_error
        );
    }
    let monotone = curve.raw_is_monotone(0.05 * pts[0].mean_error.abs().max(1e-9));
    let _ = writeln!(
        out,
        "monotone in delta (Theorem 4): {}",
        if monotone {
            "yes"
        } else {
            "within Monte-Carlo noise"
        }
    );
    Ok(out)
}

/// Builds one listing's validating builder with the same market stack the
/// experiments use. The listing is named after its dataset.
fn listing_builder(
    dataset: PaperDataset,
    metric: &str,
    seed: u64,
) -> Result<ListingBuilder, String> {
    let spec = DatasetSpec::scaled(dataset, 4_000);
    let (tt, _) = spec.materialize(seed).map_err(|e| e.to_string())?;
    let metric = lookup_metric(metric, dataset, tt.test.clone())?;
    let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
    let seller = Seller::new(dataset.name(), tt, curves);
    let (trainer, kind): (Box<dyn Trainer + Send + Sync>, &'static str) = match dataset.task() {
        Task::Regression => (
            Box::new(LinearRegressionTrainer::ridge(1e-6)),
            "linear_regression",
        ),
        Task::BinaryClassification => (
            Box::new(LogisticRegressionTrainer::new(1e-4)),
            "logistic_regression",
        ),
    };
    let mut builder = ListingBuilder::new(dataset.name(), seller)
        .model_kind(kind)
        .boxed_trainer(trainer)
        .mechanism(GaussianMechanism)
        .n_price_points(50)
        .error_curve_samples(50)
        .seed(seed);
    if let Some(m) = metric {
        builder = builder.boxed_error_metric(m);
    }
    Ok(builder)
}

/// Builds the marketplace for `datasets` (one published listing each) and
/// starts the TCP service on `addr`. The first dataset is the default
/// listing. Shared by [`serve`] (which then blocks forever) and the tests
/// (which shut the returned handle down).
#[allow(clippy::too_many_arguments)]
pub(crate) fn start_marketplace_server(
    addr: &str,
    dataset_names: &[String],
    metric: &str,
    seed: u64,
    shards: usize,
    workers: usize,
    queue: usize,
    journal: Option<&str>,
    journal_dir: Option<&str>,
    buyer_budget: Option<f64>,
) -> Result<NimbusServer, String> {
    if dataset_names.is_empty() {
        return Err("serve needs at least one --dataset".to_string());
    }
    if journal.is_some() && dataset_names.len() > 1 {
        return Err(
            "--journal is single-listing only; use --journal-dir for a multi-listing serve"
                .to_string(),
        );
    }
    let mut builders = Vec::with_capacity(dataset_names.len());
    let mut default_listing = String::new();
    for name in dataset_names {
        let dataset = lookup_dataset(name)?;
        if default_listing.is_empty() {
            default_listing = dataset.name().to_string();
        }
        let mut builder = listing_builder(dataset, metric, seed)?;
        if let Some(path) = journal {
            builder = builder.journal(path);
        }
        if let Some(dir) = journal_dir {
            builder = builder.journal_root(dir);
        }
        if let Some(budget) = buyer_budget {
            builder = builder.buyer_budget(budget);
        }
        builders.push(builder);
    }
    let marketplace = Marketplace::open_listings(builders).map_err(|e| e.to_string())?;
    let config = ServerConfig {
        shards,
        workers_per_shard: workers,
        queue_capacity: queue,
        ..ServerConfig::default()
    };
    NimbusServer::start(
        std::sync::Arc::new(marketplace),
        default_listing,
        addr,
        config,
    )
    .map_err(|e| e.to_string())
}

/// `nimbus serve`: build the marketplace, bind, and serve until killed.
#[allow(clippy::too_many_arguments)]
fn serve(
    addr: &str,
    datasets: &[String],
    metric: &str,
    seed: u64,
    shards: usize,
    workers: usize,
    queue: usize,
    journal: Option<&str>,
    journal_dir: Option<&str>,
    buyer_budget: Option<f64>,
) -> Result<String, String> {
    let server = start_marketplace_server(
        addr,
        datasets,
        metric,
        seed,
        shards,
        workers,
        queue,
        journal,
        journal_dir,
        buyer_budget,
    )?;
    let marketplace = server.marketplace();
    println!(
        "nimbus-server: {} listing(s) ({metric} metric) on {} \
         [{shards} shard(s) x {workers} worker(s), queue {queue}]",
        marketplace.len(),
        server.local_addr()
    );
    for entry in marketplace.menu() {
        println!(
            "  listing {:?}: {} ({}), expected revenue {:.2}{}",
            entry.name,
            entry.model_kind,
            entry.state.name(),
            entry.expected_revenue,
            if entry.name == server.default_listing() {
                " [default]"
            } else {
                ""
            }
        );
    }
    if let Some(budget) = buyer_budget {
        println!(
            "per-buyer noise budget: sum(x) <= {budget} per listing; \
             exhausted buyers get typed BUDGET_EXHAUSTED rejects"
        );
    }
    if journal.is_some() || journal_dir.is_some() {
        for name in marketplace.names() {
            let Ok((broker, _)) = marketplace.broker(&name) else {
                continue;
            };
            match broker.recovery() {
                Some(rec) if !rec.transactions.is_empty() || rec.truncated.is_some() => println!(
                    "journal for {name:?}: recovered {} sale(s), revenue {:.2}, \
                     next transaction #{}{}",
                    rec.transactions.len(),
                    rec.total_revenue(),
                    rec.next_tx_id,
                    match &rec.truncated {
                        Some(e) => format!(" (salvaged a torn tail: {e})"),
                        None => String::new(),
                    }
                ),
                _ => println!("journal for {name:?}: fresh log"),
            }
        }
    }
    println!("serving until the process is killed (Ctrl-C)");
    // Park forever: the accept loop and workers own the serving; Ctrl-C
    // tears the process (and with it the socket) down.
    loop {
        std::thread::park();
    }
}

/// `nimbus client <action>`.
fn client(addr: &str, action: ClientAction) -> Result<String, String> {
    let config = ClientConfig::default();
    let mut out = String::new();
    match action {
        ClientAction::Menu { listing } => {
            let mut conn = NimbusClient::connect(addr, &config).map_err(|e| e.to_string())?;
            let menu = match &listing {
                Some(name) => conn.menu_on(name),
                None => conn.menu(),
            }
            .map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "menu from {addr} (epoch {}, {} metric, {} versions):",
                menu.epoch,
                menu.metric,
                menu.points.len()
            );
            for (x, p) in menu.points.iter().step_by((menu.points.len() / 10).max(1)) {
                let _ = writeln!(out, "  1/NCP {x:>8.2}  price {p:>8.2}");
            }
        }
        ClientAction::Info { listing } => {
            let mut conn = NimbusClient::connect(addr, &config).map_err(|e| e.to_string())?;
            let info = match &listing {
                Some(name) => conn.info_on(name),
                None => conn.info(),
            }
            .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "listing {:?} at {addr}:", info.listing);
            let _ = writeln!(out, "  metric           : {}", info.metric);
            let _ = writeln!(out, "  snapshot epoch   : {}", info.epoch);
            let _ = writeln!(
                out,
                "  menu             : {} versions on 1/NCP in [{:.2}, {:.2}]",
                info.menu_len, info.x_lo, info.x_hi
            );
            let _ = writeln!(out, "  expected revenue : {:.2}", info.expected_revenue);
            let _ = writeln!(
                out,
                "  ledger           : {} sales, revenue {:.2}",
                info.sales, info.revenue
            );
        }
        ClientAction::Listings => {
            let mut conn = NimbusClient::connect(addr, &config).map_err(|e| e.to_string())?;
            let listings = conn.listings().map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "{} listing(s) at {addr} (default {:?}):",
                listings.listings.len(),
                listings.default_listing
            );
            let _ = writeln!(
                out,
                "  {:<20} {:<20} {:<10} {:>6} {:>10}",
                "listing", "model", "state", "open", "E[revenue]"
            );
            for l in &listings.listings {
                let _ = writeln!(
                    out,
                    "  {:<20} {:<20} {:<10} {:>6} {:>10.2}",
                    l.name, l.model_kind, l.state, l.open, l.expected_revenue
                );
            }
        }
        ClientAction::Publish { listing } => {
            let mut conn = NimbusClient::connect(addr, &config).map_err(|e| e.to_string())?;
            let (epoch, expected_revenue) = conn.publish(&listing).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "published {listing:?}: epoch {epoch} is live (expected revenue {:.2}); \
                 quotes from earlier epochs are now void",
                expected_revenue
            );
        }
        ClientAction::Retire { listing } => {
            let mut conn = NimbusClient::connect(addr, &config).map_err(|e| e.to_string())?;
            conn.retire(&listing).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "retired {listing:?}: it no longer quotes or sells");
        }
        ClientAction::Stats { text } => {
            let mut conn = NimbusClient::connect(addr, &config).map_err(|e| e.to_string())?;
            let stats = conn.stats().map_err(|e| e.to_string())?;
            if text {
                out.push_str(&render_prometheus(&stats));
                return Ok(out);
            }
            let _ = writeln!(out, "server stats at {addr}:");
            let _ = writeln!(out, "  connections      : {}", stats.connections);
            let _ = writeln!(out, "  busy rejections  : {}", stats.busy_rejections);
            let _ = writeln!(out, "  protocol errors  : {}", stats.protocol_errors);
            let _ = writeln!(out, "  queue depth      : {}", stats.queue_depth);
            let _ = writeln!(
                out,
                "  {:<8} {:>10} {:>8} {:>12} {:>12}",
                "op", "requests", "errors", "p50 (µs ≤)", "p99 (µs ≤)"
            );
            for op in &stats.ops {
                let _ = writeln!(
                    out,
                    "  {:<8} {:>10} {:>8} {:>12} {:>12}",
                    op.op, op.requests, op.errors, op.p50_micros, op.p99_micros
                );
            }
            if !stats.listings.is_empty() {
                let _ = writeln!(
                    out,
                    "  {:<16} {:<10} {:>8} {:>10} {:>14} {:>10}",
                    "listing", "state", "sales", "revenue", "budget-rejects", "exhausted"
                );
                for l in &stats.listings {
                    let _ = writeln!(
                        out,
                        "  {:<16} {:<10} {:>8} {:>10.2} {:>14} {:>10}",
                        l.listing,
                        l.state,
                        l.sales,
                        l.revenue,
                        l.budget_rejects,
                        l.exhausted_buyers
                    );
                }
            }
        }
        ClientAction::Account { buyer, listing } => {
            let mut conn = NimbusClient::connect(addr, &config).map_err(|e| e.to_string())?;
            let account = match &listing {
                Some(name) => conn.account_on(name, buyer),
                None => conn.account(buyer),
            }
            .map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "account for buyer {} on listing {:?} at {addr}:",
                account.buyer, account.listing
            );
            let _ = writeln!(out, "  spent (sum x)    : {:.4}", account.spent);
            match (account.budget, account.remaining) {
                (Some(budget), Some(remaining)) => {
                    let _ = writeln!(out, "  budget           : {budget:.4}");
                    let _ = writeln!(out, "  remaining        : {remaining:.4}");
                }
                _ => {
                    let _ = writeln!(out, "  budget           : unmetered");
                }
            }
        }
        ClientAction::Buy {
            request,
            listing,
            buyer,
        } => {
            let mut conn = NimbusClient::connect(addr, &config).map_err(|e| e.to_string())?;
            conn.set_buyer(buyer);
            let req = match request {
                BuyRequest::ErrorBudget(e) => PurchaseRequest::ErrorBudget(e),
                BuyRequest::PriceBudget(p) => PurchaseRequest::PriceBudget(p),
                BuyRequest::AtInverseNcp(x) => PurchaseRequest::AtInverseNcp(x),
            };
            let quote = match &listing {
                Some(name) => conn.quote_on(name, req),
                None => conn.quote(req),
            }
            .map_err(|e| e.to_string())?;
            let sale = conn
                .commit(&quote, quote.price)
                .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "purchased over the wire from {addr}:");
            let _ = writeln!(out, "  version       : 1/NCP = {:.2}", sale.inverse_ncp);
            let _ = writeln!(out, "  price         : {:.2}", sale.price);
            let _ = writeln!(
                out,
                "  {:<14}: {:.5}",
                metric_label(&sale.metric),
                sale.expected_error
            );
            let _ = writeln!(
                out,
                "  model         : {} weights delivered, first = {:.4}",
                sale.weights.len(),
                sale.weights.first().copied().unwrap_or(f64::NAN)
            );
            let _ = writeln!(out, "  transaction   : #{}", sale.transaction);
            if let Some(buyer) = buyer {
                // On a pre-v5 server the purchase still went through
                // (anonymously); just skip the account line.
                if let Ok(account) = conn.account(buyer) {
                    let _ = writeln!(
                        out,
                        "  buyer {buyer:<8}: spent {:.4}{}",
                        account.spent,
                        match account.remaining {
                            Some(r) => format!(", remaining {r:.4}"),
                            None => " (unmetered)".to_string(),
                        }
                    );
                }
            }
        }
        ClientAction::Load {
            threads,
            requests,
            buy,
            retries,
            mix,
            pipeline,
            batch,
            buyer,
        } => {
            let resolved: std::net::SocketAddr = {
                use std::net::ToSocketAddrs;
                addr.to_socket_addrs()
                    .map_err(|e| e.to_string())?
                    .next()
                    .ok_or_else(|| format!("address {addr:?} resolved to nothing"))?
            };
            let load = LoadConfig {
                threads,
                requests_per_thread: requests,
                mode: if buy { LoadMode::Buy } else { LoadMode::Quote },
                client: config,
                busy_retries: retries,
                mix,
                pipeline_depth: pipeline,
                batch_size: batch,
                buyer,
                ..LoadConfig::default()
            };
            let report = run_load(resolved, &load);
            let _ = writeln!(
                out,
                "load against {addr}: {threads} thread(s) x {requests} {} request(s)",
                if buy { "buy" } else { "quote" }
            );
            let _ = writeln!(
                out,
                "  ok / busy / errors : {} / {} / {}",
                report.ok, report.busy, report.errors
            );
            let _ = writeln!(out, "  retried sheds      : {}", report.busy_retried);
            let _ = writeln!(out, "  budget-rejected    : {}", report.budget_rejected);
            let _ = writeln!(
                out,
                "  ok rate            : {:.1}%",
                100.0 * report.ok_rate()
            );
            let _ = writeln!(out, "  open connections   : {}", report.open_connections);
            let _ = writeln!(
                out,
                "  latency p50 / p99  : {} us / {} us",
                report.p50_micros, report.p99_micros
            );
            let _ = writeln!(out, "  elapsed            : {:?}", report.elapsed);
            let _ = writeln!(
                out,
                "  throughput         : {:.0} req/s",
                report.throughput()
            );
            let _ = writeln!(
                out,
                "  shed rate          : {:.1}%",
                100.0 * report.shed_rate()
            );
            if buy {
                let _ = writeln!(out, "  revenue observed   : {:.2}", report.revenue);
            }
            for slice in &report.per_listing {
                let _ = writeln!(
                    out,
                    "  listing {:<12}: {} ok, revenue {:.2}",
                    format!("{:?}", slice.listing),
                    slice.ok,
                    slice.revenue
                );
            }
        }
    }
    Ok(out)
}

/// Runs the closed-loop agent-ecology simulator (`nimbus sim ...`).
fn sim(action: SimAction) -> Result<String, String> {
    use nimbus::agents::metrics::{parse_log, summarize};
    use nimbus::agents::run_scenario;
    use nimbus::market::clock::wall_clock;

    let mut out = String::new();
    match action {
        SimAction::Scenarios => {
            let _ = writeln!(out, "built-in scenarios:");
            for name in Scenario::BUILTIN_NAMES {
                let s = Scenario::builtin(name).expect("catalog name resolves");
                let _ = writeln!(
                    out,
                    "  {:<12} {} agents x {} ticks, {} listing(s), re-price every {}, {} event(s)",
                    name,
                    s.agents,
                    s.ticks,
                    s.listings.len(),
                    s.reprice_every,
                    s.events.len()
                );
            }
        }
        SimAction::Run {
            scenario,
            file,
            seed,
            out: journal_path,
        } => {
            let resolved = match file {
                Some(path) => {
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| format!("cannot read scenario file {path:?}: {e}"))?;
                    Scenario::parse(&text).map_err(|e| e.to_string())?
                }
                None => Scenario::builtin(&scenario).ok_or_else(|| {
                    format!(
                        "unknown scenario {scenario:?}; built-ins: {}",
                        Scenario::BUILTIN_NAMES.join(", ")
                    )
                })?,
            };
            let harness = SimHarness::start(&resolved, seed).map_err(|e| e.to_string())?;
            // The wall clock only feeds the elapsed/re-price latency
            // lines below; the journal itself excludes timings, so the
            // determinism contract survives the live clock.
            let outcome = run_scenario(
                &resolved,
                seed,
                harness.server.local_addr(),
                &harness.marketplace,
                &wall_clock(),
            )
            .map_err(|e| e.to_string())?;
            harness.server.shutdown();
            if let Some(path) = journal_path {
                std::fs::write(&path, &outcome.log)
                    .map_err(|e| format!("cannot write journal {path:?}: {e}"))?;
                let _ = writeln!(out, "journal written to {path}");
            }
            let _ = writeln!(
                out,
                "scenario {:?} seed {} over {} listing(s): {:?}",
                outcome.scenario,
                outcome.seed,
                outcome.listings.len(),
                outcome.listings
            );
            let _ = writeln!(
                out,
                "  elapsed            : {:?} ({:.0} ticks/s)",
                outcome.elapsed,
                outcome.records.len() as f64 / outcome.elapsed.as_secs_f64().max(1e-9)
            );
            let _ = writeln!(
                out,
                "  re-price cycles    : {} (total {:?}, max {:?})",
                outcome.reprice_count, outcome.reprice_total, outcome.reprice_max
            );
            let _ = writeln!(
                out,
                "  acked sales        : {} for {:.2} revenue",
                outcome.acked_commits(),
                outcome.acked_revenue()
            );
            out.push_str(&summarize(&outcome.records));
        }
        SimAction::Report { file } => {
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read journal {file:?}: {e}"))?;
            let records = parse_log(&text).map_err(|e| e.to_string())?;
            out.push_str(&summarize(&records));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_args;

    fn run(args: &[&str]) -> Result<String, String> {
        crate::run(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("nimbus demo"));
        assert!(out.contains("nimbus attack"));
    }

    #[test]
    fn price_command_reports_all_strategies() {
        let out = run(&["price", "--value", "concave", "--points", "12"]).unwrap();
        for name in ["MBP", "Lin", "MaxC", "MedC", "OptC"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(out.contains("price curve"));
    }

    #[test]
    fn buy_with_error_budget() {
        let out = run(&["buy", "--error-budget", "0.1", "--dataset", "CASP"]).unwrap();
        assert!(out.contains("E[square loss]"));
        assert!(out.contains("CASP"));
    }

    #[test]
    fn buy_with_classification_metrics() {
        let zero_one = run(&[
            "buy",
            "--error-budget",
            "0.45",
            "--dataset",
            "Simulated2",
            "--metric",
            "zero_one",
        ])
        .unwrap();
        assert!(zero_one.contains("E[0/1 error]"), "{zero_one}");
        assert!(zero_one.contains("Simulated2"));
        let logistic = run(&[
            "buy",
            "--error-budget",
            "0.69",
            "--dataset",
            "Simulated2",
            "--metric",
            "logistic",
        ])
        .unwrap();
        assert!(logistic.contains("E[logistic loss]"), "{logistic}");
    }

    #[test]
    fn buy_rejects_bad_metric_combinations() {
        let err = run(&[
            "buy",
            "--at",
            "5",
            "--dataset",
            "CASP",
            "--metric",
            "logistic",
        ])
        .unwrap_err();
        assert!(err.contains("binary-classification"), "{err}");
        let err = run(&["buy", "--at", "5", "--metric", "nope"]).unwrap_err();
        assert!(err.contains("unknown metric"), "{err}");
    }

    #[test]
    fn attack_naive_finds_arbitrage_mbp_does_not() {
        let naive = run(&["attack", "--naive", "--points", "10"]).unwrap();
        assert!(naive.contains("ARBITRAGE FOUND"), "{naive}");
        let mbp = run(&["attack", "--points", "10"]).unwrap();
        assert!(mbp.contains("no arbitrage exists"), "{mbp}");
    }

    #[test]
    fn demo_runs_end_to_end() {
        let out = run(&["demo", "--dataset", "Simulated1", "--seed", "3"]).unwrap();
        assert!(out.contains("opened the market"));
        assert!(out.contains("NO attack exists"));
        assert!(out.contains("ledger"));
    }

    #[test]
    fn unknown_names_are_reported() {
        assert!(run(&["demo", "--dataset", "MNIST"])
            .unwrap_err()
            .contains("unknown dataset"));
        assert!(run(&["price", "--value", "wavy"])
            .unwrap_err()
            .contains("unknown value shape"));
        assert!(run(&["price", "--demand", "weird"])
            .unwrap_err()
            .contains("unknown demand shape"));
    }

    #[test]
    fn classification_dataset_demo() {
        let out = run(&["demo", "--dataset", "CovType", "--seed", "5"]).unwrap();
        assert!(out.contains("CovType"));
        assert!(out.contains("sales"));
    }

    #[test]
    fn fairness_command_reports_frontier() {
        let out = run(&["fairness", "--points", "30", "--tau", "0.9"]).unwrap();
        assert!(out.contains("frontier"));
        assert!(out.contains("hard floor"));
        assert!(out.contains("lambda"));
    }

    #[test]
    fn curve_command_regression_and_classification() {
        let reg = run(&["curve", "--dataset", "CASP", "--samples", "20"]).unwrap();
        assert!(reg.contains("test MSE"), "{reg}");
        let cls = run(&["curve", "--dataset", "SUSY", "--samples", "20"]).unwrap();
        assert!(cls.contains("0/1 error"), "{cls}");
    }

    #[test]
    fn client_commands_against_in_process_server() {
        // `serve` itself blocks forever, so the test drives the same
        // builder the command uses and points `nimbus client` at it.
        let datasets = vec!["Simulated1".to_string(), "Simulated2".to_string()];
        let server = start_marketplace_server(
            "127.0.0.1:0",
            &datasets,
            "square",
            3,
            1,
            2,
            32,
            None,
            None,
            None,
        )
        .unwrap();
        let addr = server.local_addr().to_string();

        let menu = run(&["client", "menu", "--addr", &addr]).unwrap();
        assert!(menu.contains("epoch"), "{menu}");
        assert!(menu.contains("price"), "{menu}");

        let listings = run(&["client", "listings", "--addr", &addr]).unwrap();
        assert!(listings.contains("Simulated1"), "{listings}");
        assert!(listings.contains("Simulated2"), "{listings}");
        assert!(listings.contains("default \"Simulated1\""), "{listings}");

        let buy = run(&["client", "buy", "--at", "25", "--addr", &addr]).unwrap();
        assert!(buy.contains("purchased over the wire"), "{buy}");
        assert!(buy.contains("weights delivered"), "{buy}");

        // Routed buy against the second listing.
        let routed = run(&[
            "client",
            "buy",
            "--at",
            "25",
            "--listing",
            "Simulated2",
            "--addr",
            &addr,
        ])
        .unwrap();
        assert!(routed.contains("purchased over the wire"), "{routed}");

        let load = run(&[
            "client",
            "load",
            "--threads",
            "2",
            "--requests",
            "5",
            "--buy",
            "--mix",
            "Simulated1=1,Simulated2=1",
            "--addr",
            &addr,
        ])
        .unwrap();
        assert!(load.contains("throughput"), "{load}");
        assert!(load.contains("revenue observed"), "{load}");
        assert!(load.contains("listing \"Simulated1\""), "{load}");
        assert!(load.contains("listing \"Simulated2\""), "{load}");

        // 1 unrouted CLI buy + the Simulated1 half of the 2×5 load buys.
        let info = run(&["client", "info", "--addr", &addr]).unwrap();
        assert!(info.contains("6 sales"), "{info}");
        let info2 = run(&["client", "info", "--listing", "Simulated2", "--addr", &addr]).unwrap();
        // 1 routed CLI buy + the Simulated2 half of the load buys.
        assert!(info2.contains("6 sales"), "{info2}");

        // Live lifecycle: re-publish bumps the epoch, retire sheds.
        let published = run(&[
            "client",
            "publish",
            "--listing",
            "Simulated2",
            "--addr",
            &addr,
        ])
        .unwrap();
        assert!(published.contains("epoch"), "{published}");
        let retired = run(&[
            "client",
            "retire",
            "--listing",
            "Simulated2",
            "--addr",
            &addr,
        ])
        .unwrap();
        assert!(retired.contains("retired"), "{retired}");
        let err = run(&[
            "client",
            "buy",
            "--at",
            "25",
            "--listing",
            "Simulated2",
            "--addr",
            &addr,
        ])
        .unwrap_err();
        assert!(err.contains("retired"), "{err}");

        let stats = run(&["client", "stats", "--addr", &addr]).unwrap();
        assert!(stats.contains("commit"), "{stats}");
        assert!(stats.contains("busy rejections"), "{stats}");
        server.shutdown();

        // With the server gone, client commands fail with an error string
        // instead of hanging.
        assert!(run(&["client", "menu", "--addr", &addr]).is_err());
    }

    #[test]
    fn metered_buyers_over_the_cli() {
        // A server with a tight per-buyer noise budget: one x=25 purchase
        // fits, the second (identical) one must be rejected with the
        // typed error, and `client account` reads the ledger truth.
        let datasets = vec!["Simulated1".to_string()];
        let server = start_marketplace_server(
            "127.0.0.1:0",
            &datasets,
            "square",
            3,
            1,
            2,
            32,
            None,
            None,
            Some(40.0),
        )
        .unwrap();
        let addr = server.local_addr().to_string();

        let first = run(&[
            "client", "buy", "--at", "25", "--buyer", "9", "--addr", &addr,
        ])
        .unwrap();
        assert!(first.contains("purchased over the wire"), "{first}");
        assert!(first.contains("buyer 9"), "{first}");
        assert!(first.contains("remaining 15"), "{first}");

        let err = run(&[
            "client", "buy", "--at", "25", "--buyer", "9", "--addr", &addr,
        ])
        .unwrap_err();
        assert!(err.contains("budget_exhausted"), "{err}");

        // An anonymous buy on the same listing is unmetered.
        let anon = run(&["client", "buy", "--at", "25", "--addr", &addr]).unwrap();
        assert!(anon.contains("purchased over the wire"), "{anon}");

        let account = run(&["client", "account", "9", "--addr", &addr]).unwrap();
        assert!(account.contains("buyer 9"), "{account}");
        assert!(account.contains("spent (sum x)    : 25.0000"), "{account}");
        assert!(account.contains("budget           : 40.0000"), "{account}");
        assert!(account.contains("remaining        : 15.0000"), "{account}");
        // A buyer that never bought reads as a zero account, not an error.
        let fresh = run(&["client", "account", "777", "--addr", &addr]).unwrap();
        assert!(fresh.contains("spent (sum x)    : 0.0000"), "{fresh}");

        // The reject shows up in the stats table and Prometheus text.
        let stats = run(&["client", "stats", "--addr", &addr]).unwrap();
        assert!(stats.contains("budget-rejects"), "{stats}");
        let text = run(&["client", "stats", "--text", "--addr", &addr]).unwrap();
        assert!(
            text.contains("nimbus_listing_budget_rejects_total"),
            "{text}"
        );
        server.shutdown();
    }

    #[test]
    fn parse_then_run_pipeline_matches() {
        let cmd = parse_args(["help".to_string()]).unwrap();
        let out = run_command(cmd).unwrap();
        assert!(out.contains("usage"));
    }

    #[test]
    fn sim_scenarios_lists_the_catalog() {
        let out = run(&["sim", "scenarios"]).unwrap();
        for name in nimbus::agents::Scenario::BUILTIN_NAMES {
            assert!(out.contains(name), "missing scenario {name}");
        }
    }

    #[test]
    fn sim_run_smoke_then_report_roundtrips() {
        let dir = std::env::temp_dir().join(format!("nimbus-cli-sim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("smoke.jsonl");
        let journal_arg = journal.to_str().unwrap().to_string();
        let out = run(&[
            "sim",
            "run",
            "--scenario",
            "smoke",
            "--seed",
            "7",
            "--out",
            &journal_arg,
        ])
        .unwrap();
        assert!(out.contains("scenario \"smoke\" seed 7"));
        assert!(out.contains("re-price cycles"));
        let report = run(&["sim", "report", &journal_arg]).unwrap();
        // The report over the saved journal matches the run's own summary
        // tail (the run output prefixes harness/timing lines).
        assert!(out.ends_with(&report));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sim_run_rejects_unknown_scenario() {
        let err = run(&["sim", "run", "--scenario", "no-such"]).unwrap_err();
        assert!(err.contains("unknown scenario"));
        assert!(err.contains("smoke"));
    }
}
