//! The Nimbus command-line demonstration.
//!
//! The SIGMOD 2019 demo walks an audience through the model-based pricing
//! market: pick a dataset and curves, watch the broker train and post an
//! arbitrage-free price curve, buy model versions under budgets, and try
//! (and fail) to arbitrage the posted prices. This crate packages that walk
//! as a `nimbus` binary:
//!
//! ```text
//! nimbus demo   [--dataset NAME] [--seed N]          # the full guided tour
//! nimbus price  [--value SHAPE] [--demand SHAPE] [--points N]
//! nimbus buy    (--error-budget E | --price-budget P | --at X) [--dataset NAME]
//! nimbus attack [--value SHAPE] [--points N]         # search posted prices for arbitrage
//! nimbus serve  [--addr HOST:PORT] [--dataset NAME]  # the broker as a TCP service
//! nimbus client menu|info|stats|buy|load [--addr HOST:PORT]
//! ```
//!
//! `serve`/`client` speak the `nimbus-server` wire protocol: the full
//! quote→commit epoch protocol over TCP, with bounded admission queues
//! that shed overload as typed `BUSY` responses.
//!
//! Parsing is hand-rolled (the workspace's no-new-dependencies rule) and
//! fully unit-tested; command execution returns strings so the logic is
//! testable without capturing stdout.

pub mod commands;
pub mod parse;

pub use commands::run_command;
pub use parse::{parse_args, Command, ParseError};

/// Entry point shared by `main.rs` and tests: parse then run.
pub fn run<I: IntoIterator<Item = String>>(args: I) -> Result<String, String> {
    let command = parse_args(args).map_err(|e| e.to_string())?;
    run_command(command).map_err(|e| e.to_string())
}
