//! The `nimbus` binary: the SIGMOD'19 demo as a CLI.

fn main() {
    match nimbus_cli::run(std::env::args().skip(1)) {
        Ok(report) => println!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
