//! Hand-rolled subcommand parsing for the `nimbus` binary.

use std::fmt;

/// A fully parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// The guided tour.
    Demo {
        /// Table 3 dataset name (case-insensitive).
        dataset: String,
        /// Base seed.
        seed: u64,
    },
    /// Print the optimized price curve for a market.
    Price {
        /// Value curve shape: convex | concave | linear | sigmoid.
        value: String,
        /// Demand shape: uniform | mid_peaked | bimodal | increasing | decreasing.
        demand: String,
        /// Number of versions.
        points: usize,
    },
    /// Buy one model instance.
    Buy {
        /// Table 3 dataset name.
        dataset: String,
        /// The buyer's request.
        request: BuyRequest,
        /// Error metric the market prices against:
        /// square | logistic | zero_one | hinge.
        metric: String,
        /// Base seed.
        seed: u64,
    },
    /// Search the posted prices for arbitrage.
    Attack {
        /// Value curve shape.
        value: String,
        /// Number of versions.
        points: usize,
        /// Attack naive (valuation) pricing instead of MBP pricing.
        naive: bool,
    },
    /// Trace the revenue/affordability fairness frontier.
    Fairness {
        /// Value curve shape.
        value: String,
        /// Number of versions.
        points: usize,
        /// Optional hard affordability floor τ ∈ [0, 1].
        tau: Option<f64>,
    },
    /// Print the error-transformation curve of a dataset (Figure 6 slice).
    Curve {
        /// Table 3 dataset name.
        dataset: String,
        /// Monte-Carlo samples per NCP.
        samples: usize,
        /// Base seed.
        seed: u64,
    },
    /// Serve a marketplace of dataset listings over TCP.
    Serve {
        /// Listen address (`host:port`; port 0 picks an ephemeral port).
        addr: String,
        /// Table 3 dataset names, one listing each (`--dataset` repeats).
        /// The first is the default listing v1/v2 peers are routed to.
        datasets: Vec<String>,
        /// Error metric the markets price against.
        metric: String,
        /// Base seed.
        seed: u64,
        /// Admission shards.
        shards: usize,
        /// Worker threads per shard.
        workers: usize,
        /// Pending-connection bound per shard.
        queue: usize,
        /// Optional write-ahead sale journal path for a single-listing
        /// serve: sales are made durable before they are acknowledged,
        /// and replayed on restart.
        journal: Option<String>,
        /// Optional journal directory: every listing journals to
        /// `<dir>/<listing>/journal.log` and all of them are recovered
        /// on restart.
        journal_dir: Option<String>,
        /// Optional per-buyer noise-precision budget (`Σ x` cap) every
        /// listing is published with; buyers who exceed it get typed
        /// `BUDGET_EXHAUSTED` rejects.
        buyer_budget: Option<f64>,
    },
    /// Talk to a running server.
    Client {
        /// Server address (`host:port`).
        addr: String,
        /// What to ask the server.
        action: ClientAction,
    },
    /// Run or report on the closed-loop agent simulation.
    Sim {
        /// What to simulate.
        action: SimAction,
    },
    /// Print usage.
    Help,
}

/// Actions of the `sim` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum SimAction {
    /// Run a scenario end-to-end and print the report.
    Run {
        /// Built-in scenario name (`nimbus sim scenarios` lists them).
        scenario: String,
        /// Path to a `key = value` scenario file; overrides `--scenario`.
        file: Option<String>,
        /// Run seed: same (scenario, seed) ⇒ identical journal.
        seed: u64,
        /// Optional path the per-tick JSONL journal is written to.
        out: Option<String>,
    },
    /// Summarize a journal produced by `sim run --out`.
    Report {
        /// Path to the JSONL journal.
        file: String,
    },
    /// List the built-in scenarios.
    Scenarios,
}

/// Actions of the `client` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Fetch the posted price menu.
    Menu {
        /// Listing to route to (`None` = the server's default listing).
        listing: Option<String>,
    },
    /// Fetch listing metadata and ledger accounting.
    Info {
        /// Listing to route to (`None` = the server's default listing).
        listing: Option<String>,
    },
    /// Enumerate every listing the marketplace hosts.
    Listings,
    /// Fetch one buyer's noise-budget account on a listing (wire v5).
    Account {
        /// Buyer identity to look up.
        buyer: u64,
        /// Listing to route to (`None` = the server's default listing).
        listing: Option<String>,
    },
    /// Fetch the server's serving statistics.
    Stats {
        /// Render Prometheus text exposition format instead of the table.
        text: bool,
    },
    /// Quote then commit one purchase.
    Buy {
        /// The buyer's request.
        request: BuyRequest,
        /// Listing to route to (`None` = the server's default listing).
        listing: Option<String>,
        /// Buyer identity the commit is charged to (`None` = anonymous).
        buyer: Option<u64>,
    },
    /// (Re-)publish a listing: a new pricing epoch goes live and every
    /// outstanding quote against the old epoch is invalidated.
    Publish {
        /// Listing to publish.
        listing: String,
    },
    /// Retire a listing: it permanently stops quoting and selling.
    Retire {
        /// Listing to retire.
        listing: String,
    },
    /// Run the loopback load generator against the server.
    Load {
        /// Concurrent client threads.
        threads: usize,
        /// Requests per thread.
        requests: usize,
        /// Full purchases instead of read-only quotes.
        buy: bool,
        /// Retries per request after a `BUSY` shed (honoring the server's
        /// retry hint) before counting it as shed.
        retries: u32,
        /// Weighted per-listing traffic mix (`name=weight` pairs);
        /// empty = all traffic on the default listing.
        mix: Vec<(String, u32)>,
        /// Correlated requests kept in flight per thread (wire v4
        /// pipelining); 0/1 = classic blocking requests.
        pipeline: usize,
        /// Commits grouped into one `BATCH_COMMIT` frame per window
        /// (pipelined `--buy` only); 0/1 = one `COMMIT` per request.
        batch: usize,
        /// Buyer identity every generated commit is charged to
        /// (`None` = anonymous).
        buyer: Option<u64>,
    },
}

/// The three §3.2 purchase options, CLI-side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BuyRequest {
    /// `--error-budget E`.
    ErrorBudget(f64),
    /// `--price-budget P`.
    PriceBudget(f64),
    /// `--at X` (inverse NCP).
    AtInverseNcp(f64),
}

/// Parse failures with user-facing messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown flag for the subcommand.
    UnknownFlag(String),
    /// A flag was given without its value.
    MissingValue(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The raw value.
        value: String,
    },
    /// `buy` requires exactly one of the three request flags.
    AmbiguousBuyRequest,
    /// `client` requires an action.
    MissingClientAction,
    /// `sim` requires an action.
    MissingSimAction,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingCommand => {
                write!(f, "no command given\n{}", usage())
            }
            ParseError::UnknownCommand(c) => write!(f, "unknown command {c:?}\n{}", usage()),
            ParseError::UnknownFlag(flag) => write!(f, "unknown flag {flag}"),
            ParseError::MissingValue(flag) => write!(f, "flag {flag} requires a value"),
            ParseError::BadValue { flag, value } => {
                write!(f, "cannot parse {value:?} for {flag}")
            }
            ParseError::AmbiguousBuyRequest => write!(
                f,
                "buy requires exactly one of --error-budget, --price-budget, --at"
            ),
            ParseError::MissingClientAction => write!(
                f,
                "client requires an action: menu | info | listings | stats | account | buy | \
                 publish | retire | load"
            ),
            ParseError::MissingSimAction => {
                write!(f, "sim requires an action: run | report | scenarios")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub fn usage() -> String {
    "usage:\n  \
     nimbus demo   [--dataset NAME] [--seed N]\n  \
     nimbus price  [--value convex|concave|linear|sigmoid] \
     [--demand uniform|mid_peaked|bimodal|increasing|decreasing] [--points N]\n  \
     nimbus buy    (--error-budget E | --price-budget P | --at X) [--dataset NAME] \
     [--metric square|logistic|zero_one|hinge] [--seed N]\n  \
     nimbus attack [--value SHAPE] [--points N] [--naive]\n  \
     nimbus fairness [--value SHAPE] [--points N] [--tau T]\n  \
     nimbus curve  [--dataset NAME] [--samples N] [--seed N]\n  \
     nimbus serve  [--addr HOST:PORT] [--dataset NAME]... [--metric M] [--seed N] \
     [--shards K] [--workers W] [--queue Q] [--journal PATH | --journal-dir DIR] \
     [--buyer-budget B]\n  \
     nimbus client menu|info [--listing NAME] [--addr HOST:PORT]\n  \
     nimbus client listings [--addr HOST:PORT]\n  \
     nimbus client stats [--text] [--addr HOST:PORT]\n  \
     nimbus client account BUYER [--listing NAME] [--addr HOST:PORT]\n  \
     nimbus client buy (--error-budget E | --price-budget P | --at X) [--listing NAME] \
     [--buyer B] [--addr HOST:PORT]\n  \
     nimbus client publish|retire --listing NAME [--addr HOST:PORT]\n  \
     nimbus client load [--threads N] [--requests M] [--buy] [--busy-retries R] \
     [--mix NAME=W,NAME=W] [--pipeline D] [--batch B] [--buyer ID] [--addr HOST:PORT]\n  \
     nimbus sim run [--scenario NAME | --file PATH] [--seed N] [--out FILE]\n  \
     nimbus sim report FILE\n  \
     nimbus sim scenarios\n  \
     nimbus help"
        .to_string()
}

/// Default address `serve` binds and `client` dials.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7654";

fn take_value<I: Iterator<Item = String>>(iter: &mut I, flag: &str) -> Result<String, ParseError> {
    iter.next()
        .ok_or_else(|| ParseError::MissingValue(flag.to_string()))
}

fn parse_num<T: std::str::FromStr, I: Iterator<Item = String>>(
    iter: &mut I,
    flag: &str,
) -> Result<T, ParseError> {
    let raw = take_value(iter, flag)?;
    raw.parse().map_err(|_| ParseError::BadValue {
        flag: flag.to_string(),
        value: raw,
    })
}

/// Parses a `--mix` spec: comma-separated `name=weight` pairs (a bare
/// `name` means weight 1).
fn parse_mix(raw: &str) -> Result<Vec<(String, u32)>, ParseError> {
    let bad = || ParseError::BadValue {
        flag: "--mix".to_string(),
        value: raw.to_string(),
    };
    let mut mix = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(bad());
        }
        match part.split_once('=') {
            None => mix.push((part.to_string(), 1)),
            Some((name, weight)) => {
                let name = name.trim();
                let weight: u32 = weight.trim().parse().map_err(|_| bad())?;
                if name.is_empty() {
                    return Err(bad());
                }
                mix.push((name.to_string(), weight));
            }
        }
    }
    Ok(mix)
}

/// Parses the argument list (without the program name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, ParseError> {
    let mut iter = args.into_iter();
    let command = iter.next().ok_or(ParseError::MissingCommand)?;
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "demo" => {
            let mut dataset = "Simulated1".to_string();
            let mut seed = 7u64;
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--dataset" => dataset = take_value(&mut iter, "--dataset")?,
                    "--seed" => seed = parse_num(&mut iter, "--seed")?,
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::Demo { dataset, seed })
        }
        "price" => {
            let mut value = "concave".to_string();
            let mut demand = "uniform".to_string();
            let mut points = 20usize;
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--value" => value = take_value(&mut iter, "--value")?,
                    "--demand" => demand = take_value(&mut iter, "--demand")?,
                    "--points" => points = parse_num(&mut iter, "--points")?,
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::Price {
                value,
                demand,
                points,
            })
        }
        "buy" => {
            let mut dataset = "Simulated1".to_string();
            let mut metric = "square".to_string();
            let mut seed = 7u64;
            let mut request: Option<BuyRequest> = None;
            let set = |r: BuyRequest, request: &mut Option<BuyRequest>| {
                if request.is_some() {
                    Err(ParseError::AmbiguousBuyRequest)
                } else {
                    *request = Some(r);
                    Ok(())
                }
            };
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--dataset" => dataset = take_value(&mut iter, "--dataset")?,
                    "--metric" => metric = take_value(&mut iter, "--metric")?,
                    "--seed" => seed = parse_num(&mut iter, "--seed")?,
                    "--error-budget" => {
                        let e = parse_num(&mut iter, "--error-budget")?;
                        set(BuyRequest::ErrorBudget(e), &mut request)?;
                    }
                    "--price-budget" => {
                        let p = parse_num(&mut iter, "--price-budget")?;
                        set(BuyRequest::PriceBudget(p), &mut request)?;
                    }
                    "--at" => {
                        let x = parse_num(&mut iter, "--at")?;
                        set(BuyRequest::AtInverseNcp(x), &mut request)?;
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            let request = request.ok_or(ParseError::AmbiguousBuyRequest)?;
            Ok(Command::Buy {
                dataset,
                request,
                metric,
                seed,
            })
        }
        "attack" => {
            let mut value = "convex".to_string();
            let mut points = 10usize;
            let mut naive = false;
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--value" => value = take_value(&mut iter, "--value")?,
                    "--points" => points = parse_num(&mut iter, "--points")?,
                    "--naive" => naive = true,
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::Attack {
                value,
                points,
                naive,
            })
        }
        "fairness" => {
            let mut value = "convex".to_string();
            let mut points = 50usize;
            let mut tau: Option<f64> = None;
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--value" => value = take_value(&mut iter, "--value")?,
                    "--points" => points = parse_num(&mut iter, "--points")?,
                    "--tau" => tau = Some(parse_num(&mut iter, "--tau")?),
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::Fairness { value, points, tau })
        }
        "curve" => {
            let mut dataset = "Simulated1".to_string();
            let mut samples = 100usize;
            let mut seed = 7u64;
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--dataset" => dataset = take_value(&mut iter, "--dataset")?,
                    "--samples" => samples = parse_num(&mut iter, "--samples")?,
                    "--seed" => seed = parse_num(&mut iter, "--seed")?,
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::Curve {
                dataset,
                samples,
                seed,
            })
        }
        "serve" => {
            let mut addr = DEFAULT_ADDR.to_string();
            let mut datasets: Vec<String> = Vec::new();
            let mut metric = "square".to_string();
            let mut seed = 7u64;
            let mut shards = 2usize;
            let mut workers = 2usize;
            let mut queue = 64usize;
            let mut journal: Option<String> = None;
            let mut journal_dir: Option<String> = None;
            let mut buyer_budget: Option<f64> = None;
            while let Some(flag) = iter.next() {
                match flag.as_str() {
                    "--addr" => addr = take_value(&mut iter, "--addr")?,
                    "--dataset" => datasets.push(take_value(&mut iter, "--dataset")?),
                    "--metric" => metric = take_value(&mut iter, "--metric")?,
                    "--seed" => seed = parse_num(&mut iter, "--seed")?,
                    "--shards" => shards = parse_num(&mut iter, "--shards")?,
                    "--workers" => workers = parse_num(&mut iter, "--workers")?,
                    "--queue" => queue = parse_num(&mut iter, "--queue")?,
                    "--journal" => journal = Some(take_value(&mut iter, "--journal")?),
                    "--journal-dir" => journal_dir = Some(take_value(&mut iter, "--journal-dir")?),
                    "--buyer-budget" => {
                        buyer_budget = Some(parse_num(&mut iter, "--buyer-budget")?)
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            if datasets.is_empty() {
                datasets.push("Simulated1".to_string());
            }
            Ok(Command::Serve {
                addr,
                datasets,
                metric,
                seed,
                shards,
                workers,
                queue,
                journal,
                journal_dir,
                buyer_budget,
            })
        }
        "client" => {
            let action_word = iter.next().ok_or(ParseError::MissingClientAction)?;
            let mut addr = DEFAULT_ADDR.to_string();
            match action_word.as_str() {
                "menu" | "info" | "stats" | "listings" => {
                    let mut text = false;
                    let mut listing: Option<String> = None;
                    let takes_listing = matches!(action_word.as_str(), "menu" | "info");
                    while let Some(flag) = iter.next() {
                        match flag.as_str() {
                            "--addr" => addr = take_value(&mut iter, "--addr")?,
                            "--text" if action_word == "stats" => text = true,
                            "--listing" if takes_listing => {
                                listing = Some(take_value(&mut iter, "--listing")?)
                            }
                            other => return Err(ParseError::UnknownFlag(other.to_string())),
                        }
                    }
                    let action = match action_word.as_str() {
                        "menu" => ClientAction::Menu { listing },
                        "info" => ClientAction::Info { listing },
                        "listings" => ClientAction::Listings,
                        _ => ClientAction::Stats { text },
                    };
                    Ok(Command::Client { addr, action })
                }
                "publish" | "retire" => {
                    let mut listing: Option<String> = None;
                    while let Some(flag) = iter.next() {
                        match flag.as_str() {
                            "--addr" => addr = take_value(&mut iter, "--addr")?,
                            "--listing" => listing = Some(take_value(&mut iter, "--listing")?),
                            other => return Err(ParseError::UnknownFlag(other.to_string())),
                        }
                    }
                    let listing =
                        listing.ok_or_else(|| ParseError::MissingValue("--listing".to_string()))?;
                    let action = if action_word == "publish" {
                        ClientAction::Publish { listing }
                    } else {
                        ClientAction::Retire { listing }
                    };
                    Ok(Command::Client { addr, action })
                }
                "account" => {
                    let buyer_word = iter
                        .next()
                        .ok_or_else(|| ParseError::MissingValue("account BUYER".to_string()))?;
                    let buyer: u64 = buyer_word.parse().map_err(|_| ParseError::BadValue {
                        flag: "account BUYER".to_string(),
                        value: buyer_word,
                    })?;
                    let mut listing: Option<String> = None;
                    while let Some(flag) = iter.next() {
                        match flag.as_str() {
                            "--addr" => addr = take_value(&mut iter, "--addr")?,
                            "--listing" => listing = Some(take_value(&mut iter, "--listing")?),
                            other => return Err(ParseError::UnknownFlag(other.to_string())),
                        }
                    }
                    Ok(Command::Client {
                        addr,
                        action: ClientAction::Account { buyer, listing },
                    })
                }
                "buy" => {
                    let mut request: Option<BuyRequest> = None;
                    let mut listing: Option<String> = None;
                    let mut buyer: Option<u64> = None;
                    let set = |r: BuyRequest, request: &mut Option<BuyRequest>| {
                        if request.is_some() {
                            Err(ParseError::AmbiguousBuyRequest)
                        } else {
                            *request = Some(r);
                            Ok(())
                        }
                    };
                    while let Some(flag) = iter.next() {
                        match flag.as_str() {
                            "--addr" => addr = take_value(&mut iter, "--addr")?,
                            "--listing" => listing = Some(take_value(&mut iter, "--listing")?),
                            "--buyer" => buyer = Some(parse_num(&mut iter, "--buyer")?),
                            "--error-budget" => {
                                let e = parse_num(&mut iter, "--error-budget")?;
                                set(BuyRequest::ErrorBudget(e), &mut request)?;
                            }
                            "--price-budget" => {
                                let p = parse_num(&mut iter, "--price-budget")?;
                                set(BuyRequest::PriceBudget(p), &mut request)?;
                            }
                            "--at" => {
                                let x = parse_num(&mut iter, "--at")?;
                                set(BuyRequest::AtInverseNcp(x), &mut request)?;
                            }
                            other => return Err(ParseError::UnknownFlag(other.to_string())),
                        }
                    }
                    let request = request.ok_or(ParseError::AmbiguousBuyRequest)?;
                    Ok(Command::Client {
                        addr,
                        action: ClientAction::Buy {
                            request,
                            listing,
                            buyer,
                        },
                    })
                }
                "load" => {
                    let mut threads = 4usize;
                    let mut requests = 64usize;
                    let mut buy = false;
                    let mut retries = 0u32;
                    let mut mix: Vec<(String, u32)> = Vec::new();
                    let mut pipeline = 1usize;
                    let mut batch = 1usize;
                    let mut buyer: Option<u64> = None;
                    while let Some(flag) = iter.next() {
                        match flag.as_str() {
                            "--addr" => addr = take_value(&mut iter, "--addr")?,
                            "--threads" => threads = parse_num(&mut iter, "--threads")?,
                            "--requests" => requests = parse_num(&mut iter, "--requests")?,
                            "--buy" => buy = true,
                            "--busy-retries" => retries = parse_num(&mut iter, "--busy-retries")?,
                            "--mix" => mix = parse_mix(&take_value(&mut iter, "--mix")?)?,
                            "--pipeline" => pipeline = parse_num(&mut iter, "--pipeline")?,
                            "--batch" => batch = parse_num(&mut iter, "--batch")?,
                            "--buyer" => buyer = Some(parse_num(&mut iter, "--buyer")?),
                            other => return Err(ParseError::UnknownFlag(other.to_string())),
                        }
                    }
                    Ok(Command::Client {
                        addr,
                        action: ClientAction::Load {
                            threads,
                            requests,
                            buy,
                            retries,
                            mix,
                            pipeline,
                            batch,
                            buyer,
                        },
                    })
                }
                other => Err(ParseError::UnknownCommand(format!("client {other}"))),
            }
        }
        "sim" => {
            let action_word = iter.next().ok_or(ParseError::MissingSimAction)?;
            match action_word.as_str() {
                "run" => {
                    let mut scenario = "baseline".to_string();
                    let mut file: Option<String> = None;
                    let mut seed = 7u64;
                    let mut out: Option<String> = None;
                    while let Some(flag) = iter.next() {
                        match flag.as_str() {
                            "--scenario" => scenario = take_value(&mut iter, "--scenario")?,
                            "--file" => file = Some(take_value(&mut iter, "--file")?),
                            "--seed" => seed = parse_num(&mut iter, "--seed")?,
                            "--out" => out = Some(take_value(&mut iter, "--out")?),
                            other => return Err(ParseError::UnknownFlag(other.to_string())),
                        }
                    }
                    Ok(Command::Sim {
                        action: SimAction::Run {
                            scenario,
                            file,
                            seed,
                            out,
                        },
                    })
                }
                "report" => {
                    let file = iter
                        .next()
                        .ok_or_else(|| ParseError::MissingValue("sim report FILE".to_string()))?;
                    if let Some(extra) = iter.next() {
                        return Err(ParseError::UnknownFlag(extra));
                    }
                    Ok(Command::Sim {
                        action: SimAction::Report { file },
                    })
                }
                "scenarios" => Ok(Command::Sim {
                    action: SimAction::Scenarios,
                }),
                other => Err(ParseError::UnknownCommand(format!("sim {other}"))),
            }
        }
        other => Err(ParseError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, ParseError> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn demo_defaults_and_flags() {
        assert_eq!(
            parse(&["demo"]).unwrap(),
            Command::Demo {
                dataset: "Simulated1".into(),
                seed: 7
            }
        );
        assert_eq!(
            parse(&["demo", "--dataset", "CASP", "--seed", "42"]).unwrap(),
            Command::Demo {
                dataset: "CASP".into(),
                seed: 42
            }
        );
    }

    #[test]
    fn price_flags() {
        let c = parse(&[
            "price", "--value", "convex", "--demand", "bimodal", "--points", "8",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Price {
                value: "convex".into(),
                demand: "bimodal".into(),
                points: 8
            }
        );
    }

    #[test]
    fn buy_requires_exactly_one_request() {
        assert_eq!(parse(&["buy"]), Err(ParseError::AmbiguousBuyRequest));
        assert_eq!(
            parse(&["buy", "--error-budget", "0.1", "--at", "5"]),
            Err(ParseError::AmbiguousBuyRequest)
        );
        assert_eq!(
            parse(&["buy", "--price-budget", "30"]).unwrap(),
            Command::Buy {
                dataset: "Simulated1".into(),
                request: BuyRequest::PriceBudget(30.0),
                metric: "square".into(),
                seed: 7
            }
        );
    }

    #[test]
    fn buy_metric_flag() {
        assert_eq!(
            parse(&[
                "buy",
                "--error-budget",
                "0.2",
                "--dataset",
                "SUSY",
                "--metric",
                "zero_one",
            ])
            .unwrap(),
            Command::Buy {
                dataset: "SUSY".into(),
                request: BuyRequest::ErrorBudget(0.2),
                metric: "zero_one".into(),
                seed: 7
            }
        );
    }

    #[test]
    fn attack_flags() {
        assert_eq!(
            parse(&["attack", "--naive", "--points", "6"]).unwrap(),
            Command::Attack {
                value: "convex".into(),
                points: 6,
                naive: true
            }
        );
    }

    #[test]
    fn fairness_and_curve_flags() {
        assert_eq!(
            parse(&["fairness", "--tau", "0.9", "--points", "30"]).unwrap(),
            Command::Fairness {
                value: "convex".into(),
                points: 30,
                tau: Some(0.9)
            }
        );
        assert_eq!(
            parse(&["curve", "--dataset", "SUSY", "--samples", "40"]).unwrap(),
            Command::Curve {
                dataset: "SUSY".into(),
                samples: 40,
                seed: 7
            }
        );
    }

    #[test]
    fn serve_defaults_and_flags() {
        assert_eq!(
            parse(&["serve"]).unwrap(),
            Command::Serve {
                addr: DEFAULT_ADDR.into(),
                datasets: vec!["Simulated1".into()],
                metric: "square".into(),
                seed: 7,
                shards: 2,
                workers: 2,
                queue: 64,
                journal: None,
                journal_dir: None,
                buyer_budget: None
            }
        );
        assert_eq!(
            parse(&[
                "serve",
                "--addr",
                "0.0.0.0:9000",
                "--dataset",
                "CASP",
                "--shards",
                "4",
                "--workers",
                "3",
                "--queue",
                "8",
                "--seed",
                "11",
            ])
            .unwrap(),
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                datasets: vec!["CASP".into()],
                metric: "square".into(),
                seed: 11,
                shards: 4,
                workers: 3,
                queue: 8,
                journal: None,
                journal_dir: None,
                buyer_budget: None
            }
        );
    }

    #[test]
    fn serve_repeats_datasets_and_takes_a_journal_dir() {
        let parsed = parse(&[
            "serve",
            "--dataset",
            "Simulated1",
            "--dataset",
            "CASP",
            "--dataset",
            "SUSY",
            "--journal-dir",
            "/tmp/market",
        ])
        .unwrap();
        match parsed {
            Command::Serve {
                datasets,
                journal_dir,
                journal,
                ..
            } => {
                assert_eq!(datasets, vec!["Simulated1", "CASP", "SUSY"]);
                assert_eq!(journal_dir.as_deref(), Some("/tmp/market"));
                assert_eq!(journal, None);
            }
            other => panic!("expected serve, got {other:?}"),
        }
        assert_eq!(
            parse(&["serve", "--journal-dir"]),
            Err(ParseError::MissingValue("--journal-dir".into()))
        );
    }

    #[test]
    fn client_actions() {
        assert_eq!(
            parse(&["client", "menu"]).unwrap(),
            Command::Client {
                addr: DEFAULT_ADDR.into(),
                action: ClientAction::Menu { listing: None }
            }
        );
        assert_eq!(
            parse(&["client", "stats", "--addr", "10.0.0.1:7"]).unwrap(),
            Command::Client {
                addr: "10.0.0.1:7".into(),
                action: ClientAction::Stats { text: false }
            }
        );
        assert_eq!(
            parse(&["client", "buy", "--at", "25"]).unwrap(),
            Command::Client {
                addr: DEFAULT_ADDR.into(),
                action: ClientAction::Buy {
                    request: BuyRequest::AtInverseNcp(25.0),
                    listing: None,
                    buyer: None
                }
            }
        );
        assert_eq!(
            parse(&[
                "client",
                "load",
                "--threads",
                "8",
                "--requests",
                "10",
                "--buy"
            ])
            .unwrap(),
            Command::Client {
                addr: DEFAULT_ADDR.into(),
                action: ClientAction::Load {
                    threads: 8,
                    requests: 10,
                    buy: true,
                    retries: 0,
                    mix: vec![],
                    pipeline: 1,
                    batch: 1,
                    buyer: None
                }
            }
        );
    }

    #[test]
    fn client_listing_routing_flags() {
        assert_eq!(
            parse(&["client", "menu", "--listing", "CASP"]).unwrap(),
            Command::Client {
                addr: DEFAULT_ADDR.into(),
                action: ClientAction::Menu {
                    listing: Some("CASP".into())
                }
            }
        );
        assert_eq!(
            parse(&["client", "buy", "--at", "25", "--listing", "SUSY"]).unwrap(),
            Command::Client {
                addr: DEFAULT_ADDR.into(),
                action: ClientAction::Buy {
                    request: BuyRequest::AtInverseNcp(25.0),
                    listing: Some("SUSY".into()),
                    buyer: None
                }
            }
        );
        assert_eq!(
            parse(&["client", "listings"]).unwrap(),
            Command::Client {
                addr: DEFAULT_ADDR.into(),
                action: ClientAction::Listings
            }
        );
        // stats and listings take no --listing flag.
        assert!(matches!(
            parse(&["client", "stats", "--listing", "x"]),
            Err(ParseError::UnknownFlag(_))
        ));
        assert!(matches!(
            parse(&["client", "listings", "--listing", "x"]),
            Err(ParseError::UnknownFlag(_))
        ));
    }

    #[test]
    fn client_publish_and_retire_require_a_listing() {
        assert_eq!(
            parse(&["client", "publish", "--listing", "CASP"]).unwrap(),
            Command::Client {
                addr: DEFAULT_ADDR.into(),
                action: ClientAction::Publish {
                    listing: "CASP".into()
                }
            }
        );
        assert_eq!(
            parse(&["client", "retire", "--listing", "CASP", "--addr", "h:1"]).unwrap(),
            Command::Client {
                addr: "h:1".into(),
                action: ClientAction::Retire {
                    listing: "CASP".into()
                }
            }
        );
        assert_eq!(
            parse(&["client", "publish"]),
            Err(ParseError::MissingValue("--listing".into()))
        );
    }

    #[test]
    fn client_load_mix_parses_weights() {
        assert_eq!(
            parse(&["client", "load", "--mix", "a=3, b=1,c"]).unwrap(),
            Command::Client {
                addr: DEFAULT_ADDR.into(),
                action: ClientAction::Load {
                    threads: 4,
                    requests: 64,
                    buy: false,
                    retries: 0,
                    mix: vec![("a".into(), 3), ("b".into(), 1), ("c".into(), 1)],
                    pipeline: 1,
                    batch: 1,
                    buyer: None
                }
            }
        );
        assert!(matches!(
            parse(&["client", "load", "--mix", "a=x"]),
            Err(ParseError::BadValue { .. })
        ));
        assert!(matches!(
            parse(&["client", "load", "--mix", ""]),
            Err(ParseError::BadValue { .. })
        ));
    }

    #[test]
    fn serve_journal_flag() {
        assert_eq!(
            parse(&["serve", "--journal", "/tmp/sales.journal"]).unwrap(),
            Command::Serve {
                addr: DEFAULT_ADDR.into(),
                datasets: vec!["Simulated1".into()],
                metric: "square".into(),
                seed: 7,
                shards: 2,
                workers: 2,
                queue: 64,
                journal: Some("/tmp/sales.journal".into()),
                journal_dir: None,
                buyer_budget: None
            }
        );
        assert_eq!(
            parse(&["serve", "--journal"]),
            Err(ParseError::MissingValue("--journal".into()))
        );
    }

    #[test]
    fn client_stats_text_and_load_retries() {
        assert_eq!(
            parse(&["client", "stats", "--text"]).unwrap(),
            Command::Client {
                addr: DEFAULT_ADDR.into(),
                action: ClientAction::Stats { text: true }
            }
        );
        // --text is a stats-only flag.
        assert!(matches!(
            parse(&["client", "menu", "--text"]),
            Err(ParseError::UnknownFlag(_))
        ));
        assert_eq!(
            parse(&["client", "load", "--busy-retries", "5"]).unwrap(),
            Command::Client {
                addr: DEFAULT_ADDR.into(),
                action: ClientAction::Load {
                    threads: 4,
                    requests: 64,
                    buy: false,
                    retries: 5,
                    mix: vec![],
                    pipeline: 1,
                    batch: 1,
                    buyer: None
                }
            }
        );
    }

    #[test]
    fn client_error_cases() {
        assert_eq!(parse(&["client"]), Err(ParseError::MissingClientAction));
        assert_eq!(
            parse(&["client", "buy"]),
            Err(ParseError::AmbiguousBuyRequest)
        );
        assert_eq!(
            parse(&["client", "buy", "--at", "5", "--price-budget", "3"]),
            Err(ParseError::AmbiguousBuyRequest)
        );
        assert!(matches!(
            parse(&["client", "frobnicate"]),
            Err(ParseError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse(&["serve", "--bogus"]),
            Err(ParseError::UnknownFlag(_))
        ));
    }

    #[test]
    fn client_account_and_buyer_flags() {
        assert_eq!(
            parse(&["client", "account", "42"]).unwrap(),
            Command::Client {
                addr: DEFAULT_ADDR.into(),
                action: ClientAction::Account {
                    buyer: 42,
                    listing: None
                }
            }
        );
        assert_eq!(
            parse(&[
                "client",
                "account",
                "7",
                "--listing",
                "CASP",
                "--addr",
                "h:1"
            ])
            .unwrap(),
            Command::Client {
                addr: "h:1".into(),
                action: ClientAction::Account {
                    buyer: 7,
                    listing: Some("CASP".into())
                }
            }
        );
        assert!(matches!(
            parse(&["client", "account"]),
            Err(ParseError::MissingValue(_))
        ));
        assert!(matches!(
            parse(&["client", "account", "nope"]),
            Err(ParseError::BadValue { .. })
        ));
        assert_eq!(
            parse(&["client", "buy", "--at", "25", "--buyer", "9"]).unwrap(),
            Command::Client {
                addr: DEFAULT_ADDR.into(),
                action: ClientAction::Buy {
                    request: BuyRequest::AtInverseNcp(25.0),
                    listing: None,
                    buyer: Some(9)
                }
            }
        );
        match parse(&["client", "load", "--buy", "--buyer", "3"]).unwrap() {
            Command::Client {
                action: ClientAction::Load { buyer, .. },
                ..
            } => assert_eq!(buyer, Some(3)),
            other => panic!("expected load, got {other:?}"),
        }
        match parse(&["serve", "--buyer-budget", "150"]).unwrap() {
            Command::Serve { buyer_budget, .. } => assert_eq!(buyer_budget, Some(150.0)),
            other => panic!("expected serve, got {other:?}"),
        }
        assert!(matches!(
            parse(&["serve", "--buyer-budget", "lots"]),
            Err(ParseError::BadValue { .. })
        ));
    }

    #[test]
    fn sim_run_defaults_and_flags() {
        assert_eq!(
            parse(&["sim", "run"]).unwrap(),
            Command::Sim {
                action: SimAction::Run {
                    scenario: "baseline".into(),
                    file: None,
                    seed: 7,
                    out: None,
                }
            }
        );
        assert_eq!(
            parse(&[
                "sim",
                "run",
                "--scenario",
                "shock",
                "--seed",
                "42",
                "--out",
                "journal.jsonl"
            ])
            .unwrap(),
            Command::Sim {
                action: SimAction::Run {
                    scenario: "shock".into(),
                    file: None,
                    seed: 42,
                    out: Some("journal.jsonl".into()),
                }
            }
        );
        assert_eq!(
            parse(&["sim", "run", "--file", "custom.scenario"]).unwrap(),
            Command::Sim {
                action: SimAction::Run {
                    scenario: "baseline".into(),
                    file: Some("custom.scenario".into()),
                    seed: 7,
                    out: None,
                }
            }
        );
    }

    #[test]
    fn sim_report_and_scenarios() {
        assert_eq!(
            parse(&["sim", "report", "journal.jsonl"]).unwrap(),
            Command::Sim {
                action: SimAction::Report {
                    file: "journal.jsonl".into()
                }
            }
        );
        assert_eq!(
            parse(&["sim", "scenarios"]).unwrap(),
            Command::Sim {
                action: SimAction::Scenarios
            }
        );
        assert_eq!(parse(&["sim"]), Err(ParseError::MissingSimAction));
        assert!(matches!(
            parse(&["sim", "report"]),
            Err(ParseError::MissingValue(_))
        ));
        assert!(matches!(
            parse(&["sim", "frobnicate"]),
            Err(ParseError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse(&["sim", "run", "--bogus"]),
            Err(ParseError::UnknownFlag(_))
        ));
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse(&[]), Err(ParseError::MissingCommand));
        assert!(matches!(
            parse(&["frobnicate"]),
            Err(ParseError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse(&["demo", "--bogus"]),
            Err(ParseError::UnknownFlag(_))
        ));
        assert!(matches!(
            parse(&["demo", "--seed"]),
            Err(ParseError::MissingValue(_))
        ));
        assert!(matches!(
            parse(&["demo", "--seed", "NaNsense"]),
            Err(ParseError::BadValue { .. })
        ));
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
    }
}
