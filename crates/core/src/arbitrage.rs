//! Arbitrage-freeness: validation and constructive attacks.
//!
//! **Theorem 5** (the paper's central result): a pricing function is
//! arbitrage-free for the Gaussian mechanism under square loss iff, viewed
//! as `p(x)` over the inverse NCP `x = 1/δ`, it is
//!
//! 1. *subadditive* — `1/δ₁ = 1/δ₂ + 1/δ₃ ⟹ p(δ₁) ≤ p(δ₂) + p(δ₃)`, and
//! 2. *monotone* — `δ₁ ≤ δ₂ ⟹ p(δ₁) ≥ p(δ₂)` (non-increasing in δ,
//!    non-decreasing in `x`).
//!
//! [`check_arbitrage_free`] verifies both numerically over a grid.
//! [`ArbitrageAttack`] is the *constructive* half of the theorem's proof:
//! when subadditivity fails, a buyer purchases `k` cheap high-noise
//! instances `h^{δ_i}` and averages them with inverse-variance weights
//! `δ₀/δ_i` (where `1/δ₀ = Σ 1/δ_i`), obtaining an unbiased instance whose
//! variance — hence expected square loss — equals `δ₀`, for less than the
//! posted `p(δ₀)`. The attack search is an unbounded min-cost covering
//! problem solved by dynamic programming over a discretized `x` axis.

use crate::pricing::PricingFunction;
use crate::{CoreError, InverseNcp, Ncp, Result};
use nimbus_ml::LinearModel;

/// Outcome of the numeric arbitrage-freeness check.
#[derive(Debug, Clone)]
pub struct ArbitrageReport {
    /// Pairs `(x_lo, x_hi)` where the price *decreased* with `x` (monotonicity
    /// violations).
    pub monotonicity_violations: Vec<(f64, f64)>,
    /// Triples `(x, y, gap)` with `p(x + y) − p(x) − p(y) = gap > tol`
    /// (subadditivity violations).
    pub subadditivity_violations: Vec<(f64, f64, f64)>,
}

impl ArbitrageReport {
    /// `true` when no violations were found.
    pub fn is_arbitrage_free(&self) -> bool {
        self.monotonicity_violations.is_empty() && self.subadditivity_violations.is_empty()
    }
}

/// Verifies Theorem 5's two conditions for `pricing` over the grid `xs`
/// (inverse-NCP values). Monotonicity is checked on consecutive grid points;
/// subadditivity on all pairs whose sum stays within the grid range (prices
/// beyond the largest grid point are still evaluated — pricing functions are
/// total). At most 32 violations of each kind are retained.
pub fn check_arbitrage_free<P: PricingFunction + ?Sized>(
    pricing: &P,
    xs: &[f64],
    tol: f64,
) -> Result<ArbitrageReport> {
    if xs.is_empty() {
        return Err(CoreError::EmptyCurve);
    }
    let mut grid: Vec<f64> = xs.to_vec();
    grid.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    for (i, &x) in grid.iter().enumerate() {
        if !(x.is_finite() && x > 0.0) {
            return Err(CoreError::InvalidCurvePoint {
                index: i,
                reason: "grid values must be positive and finite",
            });
        }
    }
    let price = |v: f64| -> Result<f64> { Ok(pricing.price(InverseNcp::new(v)?)) };

    let mut monotonicity_violations = Vec::new();
    for w in grid.windows(2) {
        let (p0, p1) = (price(w[0])?, price(w[1])?);
        if p1 < p0 - tol && monotonicity_violations.len() < 32 {
            monotonicity_violations.push((w[0], w[1]));
        }
    }

    let mut subadditivity_violations = Vec::new();
    'outer: for (i, &a) in grid.iter().enumerate() {
        for &b in &grid[i..] {
            let gap = price(a + b)? - price(a)? - price(b)?;
            if gap > tol {
                subadditivity_violations.push((a, b, gap));
                if subadditivity_violations.len() >= 32 {
                    break 'outer;
                }
            }
        }
    }

    Ok(ArbitrageReport {
        monotonicity_violations,
        subadditivity_violations,
    })
}

/// Convenience wrapper around [`check_arbitrage_free`] returning a bool.
pub fn is_arbitrage_free_on_points<P: PricingFunction + ?Sized>(
    pricing: &P,
    xs: &[f64],
    tol: f64,
) -> Result<bool> {
    Ok(check_arbitrage_free(pricing, xs, tol)?.is_arbitrage_free())
}

/// A concrete arbitrage opportunity: buy `purchases` (inverse-NCP, count)
/// pairs instead of the single instance at `target`.
#[derive(Debug, Clone)]
pub struct ArbitrageAttack {
    /// The inverse NCP the buyer actually wants.
    pub target: f64,
    /// Posted price at the target.
    pub target_price: f64,
    /// `(x_i, multiplicity)` purchases whose x-sum is ≥ target.
    pub purchases: Vec<(f64, usize)>,
    /// Total price of the purchases (strictly below `target_price`).
    pub total_cost: f64,
}

impl ArbitrageAttack {
    /// Combined accuracy `Σ x_i · count_i` of the purchases (at least the
    /// target by construction).
    pub fn combined_inverse_ncp(&self) -> f64 {
        self.purchases.iter().map(|(x, c)| x * *c as f64).sum()
    }

    /// Money saved relative to buying the target directly.
    pub fn savings(&self) -> f64 {
        self.target_price - self.total_cost
    }
}

/// Searches for an arbitrage attack against `pricing` at target inverse NCP
/// `target`, buying only at the `candidates` grid. Uses an unbounded
/// min-cost covering DP with `resolution` buckets across `[0, target]`.
///
/// Returns `Ok(None)` when no combination beats the posted price at the
/// chosen resolution — which for arbitrage-free prices is guaranteed by
/// Theorem 5, and is what the property tests assert.
pub fn find_attack<P: PricingFunction + ?Sized>(
    pricing: &P,
    target: f64,
    candidates: &[f64],
    resolution: usize,
) -> Result<Option<ArbitrageAttack>> {
    if !(target.is_finite() && target > 0.0) {
        return Err(CoreError::InvalidNcp { value: target });
    }
    if candidates.is_empty() || resolution == 0 {
        return Err(CoreError::EmptyCurve);
    }
    let target_price = pricing.price(InverseNcp::new(target)?);
    let unit = target / resolution as f64;

    // Items: candidate x values bucketized by floor — rounding *down* makes
    // the DP conservative (claims at least the x it credits), so any attack
    // found is genuine.
    struct Item {
        x: f64,
        units: usize,
        price: f64,
    }
    let mut items = Vec::new();
    for &x in candidates {
        if !(x.is_finite() && x > 0.0) {
            continue;
        }
        let units = (x / unit).floor() as usize;
        if units == 0 {
            continue;
        }
        let price = pricing.price(InverseNcp::new(x)?);
        items.push(Item { x, units, price });
    }
    if items.is_empty() {
        return Ok(None);
    }

    // dp[u] = min cost to accumulate at least u units; parent pointers
    // reconstruct the purchase multiset.
    let n = resolution;
    let mut dp = vec![f64::INFINITY; n + 1];
    let mut parent: Vec<Option<usize>> = vec![None; n + 1];
    dp[0] = 0.0;
    for u in 1..=n {
        for (idx, item) in items.iter().enumerate() {
            let from = u.saturating_sub(item.units);
            if dp[from].is_finite() {
                let cost = dp[from] + item.price;
                if cost < dp[u] {
                    dp[u] = cost;
                    parent[u] = Some(idx);
                }
            }
        }
    }

    if dp[n] + 1e-12 >= target_price {
        return Ok(None);
    }

    // Reconstruct purchases.
    let mut counts = vec![0usize; items.len()];
    let mut u = n;
    while u > 0 {
        let idx = parent[u].expect("finite dp entries have parents");
        counts[idx] += 1;
        u = u.saturating_sub(items[idx].units);
    }
    let purchases: Vec<(f64, usize)> = items
        .iter()
        .zip(&counts)
        .filter(|(_, &c)| c > 0)
        .map(|(item, &c)| (item.x, c))
        .collect();
    Ok(Some(ArbitrageAttack {
        target,
        target_price,
        purchases,
        total_cost: dp[n],
    }))
}

/// Theorem 6: verifies arbitrage-freeness of a pricing function expressed
/// over the buyer's **expected error** rather than the NCP.
///
/// For a strictly convex `ε`, the error-inverse `φ` of the (estimated or
/// analytic) [`crate::ErrorCurve`] gives the bijection `error ↦ δ`, and the
/// pricing function is arbitrage-free iff its composition
/// `p(x) = price_over_error(E[ε](1/x))` is monotone and subadditive in
/// `x = 1/δ`. This helper performs that composition on the curve's own δ
/// grid and delegates to [`check_arbitrage_free`].
pub fn check_arbitrage_free_via_error_curve<F>(
    price_over_error: F,
    error_curve: &crate::ErrorCurve,
    tol: f64,
) -> Result<ArbitrageReport>
where
    F: Fn(f64) -> f64,
{
    if error_curve.is_empty() {
        return Err(CoreError::EmptyCurve);
    }
    // Composed pricing over x: for a grid x we need E[ε](1/x), which the
    // curve interpolates. Wrap as a PricingFunction on the fly.
    struct Composed<'a, G: Fn(f64) -> f64> {
        curve: &'a crate::ErrorCurve,
        price: G,
    }
    impl<G: Fn(f64) -> f64> PricingFunction for Composed<'_, G> {
        fn price(&self, x: InverseNcp) -> f64 {
            let err = self.curve.expected_error_at(x.ncp());
            (self.price)(err)
        }
        fn name(&self) -> &'static str {
            "composed_over_error"
        }
    }
    let composed = Composed {
        curve: error_curve,
        price: price_over_error,
    };
    let xs: Vec<f64> = error_curve.points().iter().map(|p| p.inverse).collect();
    check_arbitrage_free(&composed, &xs, tol)
}

/// Re-verifies a pricing function *after* the error-inverse map `φ` has been
/// threaded through it — the Theorem 6 sanity check the broker runs before
/// publishing a snapshot for a non-square metric.
///
/// Buyers of a general metric name an error budget `e`; the broker serves
/// the NCP `δ = φ(e)` and charges `pricing` at `x = 1/δ`. Arbitrage lives in
/// model space, where Theorem 5's criterion is stated over `x`, so the
/// buyer-facing grid must be pushed through `φ` first: for every grid error
/// level of `error_curve` (the smoothed `E[ε]` values), this maps it back to
/// its `x = 1/φ(e)` and checks monotonicity + subadditivity of `pricing` on
/// the resulting grid. Flat (isotonically pooled) stretches of the curve
/// collapse to a single `x`, exactly as they collapse for buyers.
pub fn check_arbitrage_free_after_phi<P>(
    pricing: &P,
    error_curve: &crate::ErrorCurve,
    tol: f64,
) -> Result<ArbitrageReport>
where
    P: PricingFunction + ?Sized,
{
    if error_curve.is_empty() {
        return Err(CoreError::EmptyCurve);
    }
    let mut xs: Vec<f64> = Vec::with_capacity(error_curve.len());
    for point in error_curve.points() {
        let ncp = error_curve.error_inverse(point.smoothed_error)?;
        let x = 1.0 / ncp.delta();
        // Pooled stretches of the smoothed curve map to one δ; skip repeats.
        if xs
            .last()
            .is_none_or(|&last| (x - last).abs() > 1e-12 * x.abs().max(1.0))
        {
            xs.push(x);
        }
    }
    check_arbitrage_free(pricing, &xs, tol)
}

/// Combines independently purchased noisy instances into a single unbiased
/// instance of lower variance — the function `g` from Theorem 5's proof.
///
/// Given instances `h_i` bought at NCPs `δ_i`, returns
/// `h = Σ (δ₀/δ_i) h_i` with `1/δ₀ = Σ 1/δ_i`, together with the effective
/// NCP `δ₀`. The weights sum to 1 (unbiasedness) and the combined variance
/// is exactly `δ₀` when the instances were drawn independently from an
/// additive mechanism with total variance `δ_i`.
pub fn combine_instances(instances: &[(LinearModel, Ncp)]) -> Result<(LinearModel, Ncp)> {
    if instances.is_empty() {
        return Err(CoreError::InvalidAttack {
            reason: "no instances to combine",
        });
    }
    let d = instances[0].0.dim();
    if instances.iter().any(|(m, _)| m.dim() != d) {
        return Err(CoreError::InvalidAttack {
            reason: "instances have mismatched dimensions",
        });
    }
    let inv_sum: f64 = instances.iter().map(|(_, ncp)| 1.0 / ncp.delta()).sum();
    let delta0 = 1.0 / inv_sum;
    let mut combined = nimbus_linalg::Vector::zeros(d);
    for (model, ncp) in instances {
        let weight = delta0 / ncp.delta();
        combined.axpy(weight, model.weights())?;
    }
    Ok((LinearModel::new(combined), Ncp::new(delta0)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{GaussianMechanism, RandomizedMechanism};
    use crate::pricing::{ConstantPricing, LinearPricing, PiecewiseLinearPricing};
    use crate::square_loss::square_loss;
    use nimbus_linalg::Vector;
    use nimbus_randkit::seeded_rng;

    fn grid() -> Vec<f64> {
        (1..=40).map(|i| i as f64).collect()
    }

    #[test]
    fn constant_and_linear_prices_are_arbitrage_free() {
        let c = ConstantPricing::new(5.0).unwrap();
        assert!(is_arbitrage_free_on_points(&c, &grid(), 1e-9).unwrap());
        let l = LinearPricing::new(2.0, 1.0).unwrap();
        assert!(is_arbitrage_free_on_points(&l, &grid(), 1e-9).unwrap());
    }

    #[test]
    fn relaxed_constraint_piecewise_is_arbitrage_free() {
        // z/a non-increasing, z non-decreasing ⇒ arbitrage-free (Lemma 8).
        let p =
            PiecewiseLinearPricing::new(vec![(1.0, 10.0), (2.0, 16.0), (4.0, 24.0), (8.0, 30.0)])
                .unwrap();
        assert!(p.satisfies_relaxed_constraints(1e-12));
        assert!(is_arbitrage_free_on_points(&p, &grid(), 1e-9).unwrap());
    }

    #[test]
    fn superadditive_prices_are_flagged() {
        // Unit price increases with x: buying two halves is cheaper.
        let p = PiecewiseLinearPricing::new(vec![(1.0, 1.0), (2.0, 4.0), (4.0, 16.0)]).unwrap();
        let report = check_arbitrage_free(&p, &[1.0, 2.0, 4.0], 1e-9).unwrap();
        assert!(!report.is_arbitrage_free());
        assert!(!report.subadditivity_violations.is_empty());
    }

    #[test]
    fn decreasing_prices_are_flagged_as_monotonicity_violation() {
        let p = PiecewiseLinearPricing::new(vec![(1.0, 10.0), (2.0, 5.0)]).unwrap();
        let report = check_arbitrage_free(&p, &[1.0, 2.0], 1e-9).unwrap();
        assert!(!report.monotonicity_violations.is_empty());
    }

    #[test]
    fn attack_found_against_superadditive_pricing() {
        // p(x) = x² on breakpoints: p(4)=16 but two x=2 purchases cost 8.
        let p = PiecewiseLinearPricing::new(vec![(1.0, 1.0), (2.0, 4.0), (4.0, 16.0)]).unwrap();
        let attack = find_attack(&p, 4.0, &[1.0, 2.0], 400)
            .unwrap()
            .expect("attack must exist");
        assert!(attack.total_cost < attack.target_price);
        assert!(attack.combined_inverse_ncp() >= 4.0 - 1e-9);
        assert!(attack.savings() > 0.0);
    }

    #[test]
    fn no_attack_against_arbitrage_free_pricing() {
        let c = ConstantPricing::new(5.0).unwrap();
        assert!(find_attack(&c, 10.0, &grid(), 1000).unwrap().is_none());
        let l = LinearPricing::new(1.0, 2.0).unwrap();
        assert!(find_attack(&l, 10.0, &grid(), 1000).unwrap().is_none());
        let p = PiecewiseLinearPricing::new(vec![(1.0, 10.0), (2.0, 16.0), (4.0, 24.0)]).unwrap();
        assert!(find_attack(&p, 4.0, &[1.0, 2.0, 4.0], 2000)
            .unwrap()
            .is_none());
    }

    #[test]
    fn combine_instances_weights_sum_to_one() {
        // Combining two copies of the SAME deterministic vector returns it.
        let h = LinearModel::new(Vector::from_vec(vec![3.0, -1.0]));
        let instances = vec![
            (h.clone(), Ncp::new(2.0).unwrap()),
            (h.clone(), Ncp::new(2.0).unwrap()),
        ];
        let (combined, delta0) = combine_instances(&instances).unwrap();
        assert!((delta0.delta() - 1.0).abs() < 1e-12);
        for j in 0..2 {
            assert!((combined.weights()[j] - h.weights()[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn combined_variance_matches_theorem5() {
        // Buy k independent Gaussian instances at δ_i; the combination has
        // empirical square loss ≈ δ₀ = 1 / Σ(1/δ_i).
        let optimal = LinearModel::new(Vector::from_vec(vec![1.0, 2.0, -0.5, 0.7]));
        let deltas = [2.0, 3.0, 6.0];
        let delta0_expected = 1.0 / deltas.iter().map(|d| 1.0 / d).sum::<f64>(); // = 1.0
        let mut rng = seeded_rng(31);
        let reps = 20_000;
        let mut total = 0.0;
        for _ in 0..reps {
            let instances: Vec<(LinearModel, Ncp)> = deltas
                .iter()
                .map(|&d| {
                    let ncp = Ncp::new(d).unwrap();
                    (
                        GaussianMechanism.perturb(&optimal, ncp, &mut rng).unwrap(),
                        ncp,
                    )
                })
                .collect();
            let (combined, delta0) = combine_instances(&instances).unwrap();
            assert!((delta0.delta() - delta0_expected).abs() < 1e-12);
            total += square_loss(&combined, &optimal).unwrap();
        }
        let mean = total / reps as f64;
        assert!(
            (mean - delta0_expected).abs() < 0.05 * delta0_expected.max(1.0),
            "combined variance {mean} vs expected {delta0_expected}"
        );
    }

    #[test]
    fn combine_rejects_bad_inputs() {
        assert!(combine_instances(&[]).is_err());
        let a = LinearModel::zeros(2);
        let b = LinearModel::zeros(3);
        let instances = vec![(a, Ncp::new(1.0).unwrap()), (b, Ncp::new(1.0).unwrap())];
        assert!(combine_instances(&instances).is_err());
    }

    #[test]
    fn theorem6_composition_over_square_loss_curve() {
        // E[ε_s] = δ = 1/x, so pricing "50/(1+err)" over the error composes
        // to p(x) = 50x/(x+1) over the inverse NCP — concave through the
        // origin, hence monotone + subadditive: arbitrage-free.
        let deltas: Vec<Ncp> = (1..=20)
            .map(|i| Ncp::new(i as f64 * 0.1).unwrap())
            .collect();
        let curve = crate::ErrorCurve::analytic_square_loss(&deltas).unwrap();
        let report =
            check_arbitrage_free_via_error_curve(|err| 50.0 / (1.0 + err), &curve, 1e-9).unwrap();
        assert!(report.is_arbitrage_free(), "{report:?}");

        // Pricing that *rises* with the error is not monotone in x.
        let report = check_arbitrage_free_via_error_curve(|err| err * 10.0, &curve, 1e-9).unwrap();
        assert!(!report.is_arbitrage_free());
        assert!(!report.monotonicity_violations.is_empty());

        // Pricing convex in x (superadditive): p = 1/err² = x² under ε_s.
        let report =
            check_arbitrage_free_via_error_curve(|err| 1.0 / (err * err), &curve, 1e-9).unwrap();
        assert!(!report.subadditivity_violations.is_empty());
    }

    #[test]
    fn phi_recheck_accepts_concave_and_flags_convex_pricing() {
        // A noisy, non-monotone raw curve: isotonic smoothing pools the dip,
        // and φ pushes the pooled error levels back onto a clean x grid.
        let raw = vec![
            (0.25, 0.27, 0.01),
            (0.5, 0.46, 0.01),
            (1.0, 0.95, 0.02),
            (2.0, 1.85, 0.02),
            (2.5, 1.80, 0.02), // dip — pooled with the previous point
            (4.0, 4.10, 0.03),
        ];
        let curve = crate::ErrorCurve::from_raw(raw).unwrap();
        let good = crate::pricing::PiecewiseLinearPricing::new(
            (1..=50)
                .map(|i| {
                    let x = i as f64 * 0.2;
                    (x, 30.0 * x.sqrt())
                })
                .collect(),
        )
        .unwrap();
        let report = check_arbitrage_free_after_phi(&good, &curve, 1e-9).unwrap();
        assert!(report.is_arbitrage_free(), "{report:?}");

        // Convex-in-x pricing is superadditive and must be flagged after φ.
        let bad = crate::pricing::PiecewiseLinearPricing::new(
            (1..=50)
                .map(|i| {
                    let x = i as f64 * 0.2;
                    (x, x * x)
                })
                .collect(),
        )
        .unwrap();
        let report = check_arbitrage_free_after_phi(&bad, &curve, 1e-9).unwrap();
        assert!(!report.subadditivity_violations.is_empty());
    }

    #[test]
    fn checker_rejects_bad_grids() {
        let c = ConstantPricing::new(1.0).unwrap();
        assert!(check_arbitrage_free(&c, &[], 1e-9).is_err());
        assert!(check_arbitrage_free(&c, &[0.0], 1e-9).is_err());
        assert!(check_arbitrage_free(&c, &[-1.0], 1e-9).is_err());
    }

    #[test]
    fn attack_rejects_bad_inputs() {
        let c = ConstantPricing::new(1.0).unwrap();
        assert!(find_attack(&c, 0.0, &[1.0], 10).is_err());
        assert!(find_attack(&c, 1.0, &[], 10).is_err());
        assert!(find_attack(&c, 1.0, &[1.0], 0).is_err());
    }
}
