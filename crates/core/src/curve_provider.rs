//! A policy object turning an [`ErrorMetric`] into a monotone [`ErrorCurve`].
//!
//! The broker needs one error-transformation curve per `(metric, mechanism,
//! model)` triple before it can price anything (Figure 2(b)). How that curve
//! is obtained depends on the metric: the square loss has the closed form
//! `E[ε_s(h^δ)] = δ` (Lemma 3) and gets an exact analytic curve; every other
//! metric — logistic, hinge, 0/1 — is estimated by Monte Carlo over the δ
//! grid. [`CurveProvider`] packages that dispatch together with the
//! estimation budget (`samples`), the RNG `seed`, and the thread fan-out, so
//! higher layers (the broker, the CLI, experiments) ask for "the curve for
//! this metric" and never reimplement the choice.
//!
//! The Monte-Carlo path uses [`ErrorCurve::estimate_parallel`], whose
//! per-δ-point RNG streams make the result bitwise-identical to a
//! sequential estimate for the same seed, regardless of `max_threads`.

use crate::error_curve::ErrorCurve;
use crate::mechanism::RandomizedMechanism;
use crate::ncp::Ncp;
use crate::Result;
use nimbus_ml::{ErrorMetric, LinearModel};

/// Builds monotone error curves for arbitrary [`ErrorMetric`]s, choosing the
/// exact closed form when the metric provides one and deterministic parallel
/// Monte-Carlo estimation otherwise.
#[derive(Debug, Clone, Copy)]
pub struct CurveProvider {
    samples: usize,
    seed: u64,
    max_threads: Option<usize>,
}

impl CurveProvider {
    /// Creates a provider drawing `samples` noisy models per δ point (for
    /// metrics without a closed form) from streams derived from `seed`.
    pub fn new(samples: usize, seed: u64) -> CurveProvider {
        CurveProvider {
            samples,
            seed,
            max_threads: None,
        }
    }

    /// Caps the Monte-Carlo fan-out at `threads` scoped threads. The default
    /// (`None`) uses the machine's available parallelism. The produced curve
    /// is identical either way; only wall-clock time changes.
    pub fn with_max_threads(mut self, threads: usize) -> CurveProvider {
        self.max_threads = Some(threads);
        self
    }

    /// Monte-Carlo samples per δ point.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Root seed for the per-point RNG streams.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The curve `δ ↦ E[ε(h^δ, D)]` for `metric` under `mechanism`, smoothed
    /// isotonically so the error inverse `φ` (Theorem 6) is well defined.
    ///
    /// Dispatch: if the metric reports a closed-form expected error for every
    /// grid δ (the square loss does, per Lemma 3), the curve is exact with
    /// zero standard error; otherwise each point is estimated from `samples`
    /// draws of `mechanism` evaluated through the metric.
    pub fn curve_for<M>(
        &self,
        metric: &dyn ErrorMetric,
        mechanism: &M,
        optimal: &LinearModel,
        deltas: &[Ncp],
    ) -> Result<ErrorCurve>
    where
        M: RandomizedMechanism + Sync + ?Sized,
    {
        let closed_form = !deltas.is_empty()
            && deltas
                .iter()
                .all(|d| metric.closed_form_expected_error(d.delta()).is_some());
        if closed_form {
            return ErrorCurve::from_closed_form(deltas, |d| {
                metric
                    .closed_form_expected_error(d)
                    .expect("all grid points verified closed-form")
            });
        }
        ErrorCurve::estimate_parallel(
            mechanism,
            optimal,
            |h: &LinearModel| metric.evaluate(h).map_err(Into::into),
            deltas,
            self.samples,
            self.seed,
            self.max_threads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::GaussianMechanism;
    use nimbus_data::{Dataset, Task};
    use nimbus_linalg::{Matrix, Vector};
    use nimbus_ml::{LossMetric, SquareDistanceMetric};

    fn deltas(values: &[f64]) -> Vec<Ncp> {
        values.iter().map(|&v| Ncp::new(v).unwrap()).collect()
    }

    fn tiny_classification_data() -> Dataset {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.5],
            vec![-1.0, -0.5],
            vec![0.8, 1.0],
            vec![-0.7, -1.2],
        ])
        .unwrap();
        let y = Vector::from_vec(vec![1.0, 0.0, 1.0, 0.0]);
        Dataset::new(x, y, Task::BinaryClassification).unwrap()
    }

    #[test]
    fn square_metric_takes_the_exact_path() {
        let optimal = LinearModel::new(Vector::from_vec(vec![1.0, 2.0]));
        let metric = SquareDistanceMetric::new(optimal.clone());
        let provider = CurveProvider::new(10, 1);
        let grid = deltas(&[0.5, 1.0, 2.0]);
        let c = provider
            .curve_for(&metric, &GaussianMechanism, &optimal, &grid)
            .unwrap();
        for p in c.points() {
            assert_eq!(p.mean_error, p.delta, "Lemma 3 identity, exactly");
            assert_eq!(p.std_error, 0.0);
        }
    }

    #[test]
    fn loss_metric_takes_the_monte_carlo_path() {
        let data = tiny_classification_data();
        let optimal = LinearModel::new(Vector::from_vec(vec![1.0, 1.0]));
        let metric = LossMetric::logistic(data);
        let provider = CurveProvider::new(300, 42);
        let grid = deltas(&[0.25, 1.0, 4.0]);
        let c = provider
            .curve_for(&metric, &GaussianMechanism, &optimal, &grid)
            .unwrap();
        assert_eq!(c.len(), 3);
        // Monte-Carlo points carry sampling uncertainty.
        assert!(c.points().iter().any(|p| p.std_error > 0.0));
        // Smoothed curve is monotone so φ exists.
        let sm: Vec<f64> = c.points().iter().map(|p| p.smoothed_error).collect();
        assert!(crate::isotonic::is_non_decreasing(&sm, 1e-12));
    }

    #[test]
    fn provider_is_deterministic_across_thread_counts() {
        let data = tiny_classification_data();
        let optimal = LinearModel::new(Vector::from_vec(vec![0.5, -0.5]));
        let metric = LossMetric::zero_one(data);
        let grid = deltas(&[0.5, 1.0, 2.0, 4.0]);
        let a = CurveProvider::new(200, 7)
            .with_max_threads(1)
            .curve_for(&metric, &GaussianMechanism, &optimal, &grid)
            .unwrap();
        let b = CurveProvider::new(200, 7)
            .with_max_threads(4)
            .curve_for(&metric, &GaussianMechanism, &optimal, &grid)
            .unwrap();
        for (p, q) in a.points().iter().zip(b.points()) {
            assert_eq!(p.mean_error.to_bits(), q.mean_error.to_bits());
        }
    }

    #[test]
    fn empty_grid_is_rejected() {
        let optimal = LinearModel::new(Vector::from_vec(vec![1.0]));
        let metric = SquareDistanceMetric::new(optimal.clone());
        let provider = CurveProvider::new(10, 1);
        assert!(provider
            .curve_for(&metric, &GaussianMechanism, &optimal, &[])
            .is_err());
    }
}
