//! Error type for the MBP core.

use std::fmt;

/// Errors produced by the `nimbus-core` crate.
#[derive(Debug)]
pub enum CoreError {
    /// A noise control parameter was zero, negative or non-finite.
    InvalidNcp {
        /// The offending value.
        value: f64,
    },
    /// A price was negative or non-finite.
    InvalidPrice {
        /// The offending value.
        value: f64,
    },
    /// A curve or pricing function required at least one point.
    EmptyCurve,
    /// Curve points were not usable (non-finite, non-positive x, unordered
    /// after sorting, duplicate x with conflicting values, ...).
    InvalidCurvePoint {
        /// Index of the offending point.
        index: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A requested budget (error or price) cannot be met by any point on the
    /// curve.
    BudgetUnsatisfiable {
        /// What kind of budget failed (`"error"` / `"price"`).
        kind: &'static str,
        /// The requested budget.
        budget: f64,
    },
    /// The arbitrage attack construction was given inconsistent instances.
    InvalidAttack {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Underlying ML failure.
    Ml(nimbus_ml::MlError),
    /// Underlying linear-algebra failure.
    Linalg(nimbus_linalg::LinalgError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidNcp { value } => {
                write!(
                    f,
                    "noise control parameter must be positive and finite, got {value}"
                )
            }
            CoreError::InvalidPrice { value } => {
                write!(f, "price must be non-negative and finite, got {value}")
            }
            CoreError::EmptyCurve => write!(f, "curve requires at least one point"),
            CoreError::InvalidCurvePoint { index, reason } => {
                write!(f, "invalid curve point at index {index}: {reason}")
            }
            CoreError::BudgetUnsatisfiable { kind, budget } => {
                write!(f, "no curve point satisfies the {kind} budget {budget}")
            }
            CoreError::InvalidAttack { reason } => write!(f, "invalid arbitrage attack: {reason}"),
            CoreError::Ml(e) => write!(f, "ml error: {e}"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ml(e) => Some(e),
            CoreError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nimbus_ml::MlError> for CoreError {
    fn from(e: nimbus_ml::MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<nimbus_linalg::LinalgError> for CoreError {
    fn from(e: nimbus_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::InvalidNcp { value: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(CoreError::EmptyCurve.to_string().contains("at least one"));
        assert!(CoreError::BudgetUnsatisfiable {
            kind: "price",
            budget: 5.0
        }
        .to_string()
        .contains("price"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: CoreError = nimbus_ml::MlError::EmptyDataset.into();
        assert!(e.source().is_some());
    }
}
