//! The error-transformation curve `δ ↦ E[ε(h^δ, D)]` and its inverse `φ`.
//!
//! Figure 2(b) of the paper: before prices can be optimized, the broker
//! transforms buyer-facing error levels into the mechanism's parameter
//! space. Theorem 4 guarantees the map is strictly monotone for strictly
//! convex `ε`; for the square loss it is the identity (Lemma 3); for
//! anything else Nimbus estimates it by Monte Carlo — sample `m` noisy
//! models per δ, average the observed error (this is exactly the 2000-model
//! procedure of §6.1 / Figure 6) — then smooths the estimates isotonically
//! so the empirical inverse `φ` (Theorem 6) is well defined.
//!
//! # Determinism
//!
//! Each δ point draws its samples from a private RNG stream
//! `seeded_rng(split_stream(seed, i))`, where `i` is the point's index in
//! the δ-ascending grid. The estimate is therefore a pure function of
//! `(mechanism, optimal, ε, grid, samples, seed)` — and because the streams
//! are independent, [`ErrorCurve::estimate_parallel`] fans the points out
//! over scoped threads and still produces a curve bitwise-identical to the
//! sequential [`ErrorCurve::estimate`].

use crate::isotonic::isotonic_increasing;
use crate::mechanism::RandomizedMechanism;
use crate::parallel::parallel_map;
use crate::{CoreError, Ncp, Result};
use nimbus_ml::LinearModel;
use nimbus_randkit::{seeded_rng, split_stream, RunningStats};

/// One estimated point of the error curve.
#[derive(Debug, Clone, Copy)]
pub struct ErrorCurvePoint {
    /// The noise control parameter δ.
    pub delta: f64,
    /// Convenience: the inverse parameter `x = 1/δ`.
    pub inverse: f64,
    /// Raw Monte-Carlo mean of `ε(h^δ, D)`.
    pub mean_error: f64,
    /// Standard error of that mean (0 for analytic curves).
    pub std_error: f64,
    /// Isotonically smoothed mean (non-decreasing in δ).
    pub smoothed_error: f64,
}

/// A monotone error-transformation curve over a δ grid.
#[derive(Debug, Clone)]
pub struct ErrorCurve {
    points: Vec<ErrorCurvePoint>,
}

impl ErrorCurve {
    /// Estimates the curve by Monte Carlo: for each δ, draw `samples` noisy
    /// instances from `mechanism` and average `evaluate` over them.
    ///
    /// `evaluate` is the buyer's error function `ε(·, D)` partially applied
    /// to the dataset — e.g. test-set square loss, logistic loss or 0/1
    /// error from `nimbus-ml`. Each grid point samples from its own RNG
    /// stream derived from `(seed, point index)`, so the result is
    /// deterministic for a fixed seed and independent of evaluation order.
    pub fn estimate<M, F>(
        mechanism: &M,
        optimal: &LinearModel,
        evaluate: F,
        deltas: &[Ncp],
        samples: usize,
        seed: u64,
    ) -> Result<ErrorCurve>
    where
        M: RandomizedMechanism + ?Sized,
        F: Fn(&LinearModel) -> Result<f64> + Sync,
    {
        let sorted = Self::sorted_grid(deltas, samples)?;
        let raw = sorted
            .into_iter()
            .enumerate()
            .map(|(i, ncp)| {
                Self::estimate_point(mechanism, optimal, &evaluate, ncp, samples, seed, i)
            })
            .collect::<Result<Vec<_>>>()?;
        Self::from_raw(raw)
    }

    /// [`ErrorCurve::estimate`] with the δ points fanned out over up to
    /// `max_threads` scoped threads (available parallelism when `None`).
    ///
    /// Because every point owns its RNG stream `split_stream(seed, i)`, the
    /// result is **bitwise identical** to the sequential estimate for the
    /// same seed — thread scheduling cannot leak into the samples.
    pub fn estimate_parallel<M, F>(
        mechanism: &M,
        optimal: &LinearModel,
        evaluate: F,
        deltas: &[Ncp],
        samples: usize,
        seed: u64,
        max_threads: Option<usize>,
    ) -> Result<ErrorCurve>
    where
        M: RandomizedMechanism + Sync + ?Sized,
        F: Fn(&LinearModel) -> Result<f64> + Sync,
    {
        let sorted = Self::sorted_grid(deltas, samples)?;
        let indexed: Vec<(usize, Ncp)> = sorted.into_iter().enumerate().collect();
        let raw = parallel_map(indexed, max_threads, |(i, ncp)| {
            Self::estimate_point(mechanism, optimal, &evaluate, ncp, samples, seed, i)
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        Self::from_raw(raw)
    }

    /// Validates and δ-ascending-sorts the grid shared by both estimators.
    fn sorted_grid(deltas: &[Ncp], samples: usize) -> Result<Vec<Ncp>> {
        if deltas.is_empty() || samples == 0 {
            return Err(CoreError::EmptyCurve);
        }
        let mut sorted = deltas.to_vec();
        sorted.sort_by(|a, b| a.delta().partial_cmp(&b.delta()).expect("NCPs are finite"));
        Ok(sorted)
    }

    /// One grid point's Monte-Carlo mean and standard error, sampled from
    /// the point's private stream `split_stream(seed, index)`.
    fn estimate_point<M, F>(
        mechanism: &M,
        optimal: &LinearModel,
        evaluate: &F,
        ncp: Ncp,
        samples: usize,
        seed: u64,
        index: usize,
    ) -> Result<(f64, f64, f64)>
    where
        M: RandomizedMechanism + ?Sized,
        F: Fn(&LinearModel) -> Result<f64>,
    {
        let mut rng = seeded_rng(split_stream(seed, index as u64));
        let mut stats = RunningStats::new();
        for _ in 0..samples {
            let noisy = mechanism.perturb(optimal, ncp, &mut rng)?;
            stats.push(evaluate(&noisy)?);
        }
        Ok((ncp.delta(), stats.mean(), stats.standard_error()))
    }

    /// Builds an exact curve from a closed-form expected-error map
    /// `δ ↦ E[ε(h^δ)]`, with zero Monte-Carlo uncertainty.
    pub fn from_closed_form<F>(deltas: &[Ncp], expected_error: F) -> Result<ErrorCurve>
    where
        F: Fn(f64) -> f64,
    {
        if deltas.is_empty() {
            return Err(CoreError::EmptyCurve);
        }
        let mut raw: Vec<(f64, f64, f64)> = deltas
            .iter()
            .map(|d| (d.delta(), expected_error(d.delta()), 0.0))
            .collect();
        raw.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite deltas"));
        Self::from_raw(raw)
    }

    /// Builds the exact analytic curve for the square loss, where
    /// `E[ε_s(h^δ)] = δ` (Lemma 3) with zero Monte-Carlo uncertainty.
    pub fn analytic_square_loss(deltas: &[Ncp]) -> Result<ErrorCurve> {
        Self::from_closed_form(deltas, |delta| delta)
    }

    /// Builds a curve from raw `(δ, mean, stderr)` triples (sorted by δ).
    pub(crate) fn from_raw(raw: Vec<(f64, f64, f64)>) -> Result<ErrorCurve> {
        for (i, (d, m, _)) in raw.iter().enumerate() {
            if !(d.is_finite() && *d > 0.0) {
                return Err(CoreError::InvalidCurvePoint {
                    index: i,
                    reason: "delta must be positive and finite",
                });
            }
            if !m.is_finite() {
                return Err(CoreError::InvalidCurvePoint {
                    index: i,
                    reason: "mean error must be finite",
                });
            }
        }
        let means: Vec<f64> = raw.iter().map(|r| r.1).collect();
        let weights = vec![1.0; means.len()];
        let smoothed = isotonic_increasing(&means, &weights);
        let points = raw
            .into_iter()
            .zip(smoothed)
            .map(
                |((delta, mean_error, std_error), smoothed_error)| ErrorCurvePoint {
                    delta,
                    inverse: 1.0 / delta,
                    mean_error,
                    std_error,
                    smoothed_error,
                },
            )
            .collect();
        Ok(ErrorCurve { points })
    }

    /// The curve points, ordered by increasing δ.
    pub fn points(&self) -> &[ErrorCurvePoint] {
        &self.points
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve has no points (never true for constructed curves).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Expected error at an arbitrary δ by linear interpolation of the
    /// smoothed curve; clamps outside the grid to the boundary values.
    pub fn expected_error_at(&self, ncp: Ncp) -> f64 {
        let d = ncp.delta();
        let pts = &self.points;
        if d <= pts[0].delta {
            return pts[0].smoothed_error;
        }
        if d >= pts[pts.len() - 1].delta {
            return pts[pts.len() - 1].smoothed_error;
        }
        let idx = pts.partition_point(|p| p.delta < d);
        let (lo, hi) = (&pts[idx - 1], &pts[idx]);
        let t = (d - lo.delta) / (hi.delta - lo.delta);
        lo.smoothed_error + t * (hi.smoothed_error - lo.smoothed_error)
    }

    /// The empirical error-inverse `φ` of Theorem 6: the δ whose expected
    /// error equals `target_error`, by inverse interpolation of the smoothed
    /// curve. Errors when the target lies outside the curve's error range.
    pub fn error_inverse(&self, target_error: f64) -> Result<Ncp> {
        let pts = &self.points;
        let lo_err = pts[0].smoothed_error;
        let hi_err = pts[pts.len() - 1].smoothed_error;
        if !target_error.is_finite() || target_error < lo_err || target_error > hi_err {
            return Err(CoreError::BudgetUnsatisfiable {
                kind: "error",
                budget: target_error,
            });
        }
        // Find the first point at or above the target.
        let idx = pts.partition_point(|p| p.smoothed_error < target_error);
        if idx == 0 {
            return Ncp::new(pts[0].delta);
        }
        let (a, b) = (&pts[idx - 1], &pts[idx]);
        if (b.smoothed_error - a.smoothed_error).abs() < 1e-300 {
            // A flat (pooled) stretch: any δ in it has the target error;
            // return the largest (cheapest for the buyer).
            return Ncp::new(b.delta);
        }
        let t = (target_error - a.smoothed_error) / (b.smoothed_error - a.smoothed_error);
        Ncp::new(a.delta + t * (b.delta - a.delta))
    }

    /// `true` when the *raw* (pre-smoothing) means are already monotone
    /// non-decreasing in δ within `tol` — the empirical check behind
    /// Figure 6's claim.
    pub fn raw_is_monotone(&self, tol: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].mean_error >= w[0].mean_error - tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::GaussianMechanism;
    use crate::square_loss::square_loss;
    use nimbus_linalg::Vector;

    fn deltas(values: &[f64]) -> Vec<Ncp> {
        values.iter().map(|&v| Ncp::new(v).unwrap()).collect()
    }

    #[test]
    fn analytic_square_loss_curve_is_identity() {
        let c = ErrorCurve::analytic_square_loss(&deltas(&[0.5, 1.0, 2.0, 4.0])).unwrap();
        for p in c.points() {
            assert_eq!(p.mean_error, p.delta);
            assert_eq!(p.smoothed_error, p.delta);
            assert_eq!(p.std_error, 0.0);
        }
        assert!(c.raw_is_monotone(0.0));
    }

    #[test]
    fn monte_carlo_square_loss_matches_lemma3() {
        let optimal = LinearModel::new(Vector::from_vec(vec![1.0, -2.0, 0.5, 3.0]));
        let grid = deltas(&[0.5, 1.0, 2.0, 4.0, 8.0]);
        let opt = optimal.clone();
        let c = ErrorCurve::estimate(
            &GaussianMechanism,
            &optimal,
            |h| square_loss(h, &opt),
            &grid,
            8_000,
            9,
        )
        .unwrap();
        for p in c.points() {
            assert!(
                (p.mean_error - p.delta).abs() < 0.08 * p.delta.max(1.0),
                "δ={}: mean {}",
                p.delta,
                p.mean_error
            );
        }
        assert!(c.raw_is_monotone(0.05));
    }

    #[test]
    fn estimate_sorts_unordered_grids() {
        let optimal = LinearModel::new(Vector::from_vec(vec![1.0, 1.0]));
        let grid = deltas(&[4.0, 1.0, 2.0]);
        let opt = optimal.clone();
        let c = ErrorCurve::estimate(
            &GaussianMechanism,
            &optimal,
            |h| square_loss(h, &opt),
            &grid,
            200,
            2,
        )
        .unwrap();
        let ds: Vec<f64> = c.points().iter().map(|p| p.delta).collect();
        assert_eq!(ds, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn interpolation_and_clamping() {
        let c = ErrorCurve::analytic_square_loss(&deltas(&[1.0, 3.0])).unwrap();
        assert_eq!(c.expected_error_at(Ncp::new(1.0).unwrap()), 1.0);
        assert_eq!(c.expected_error_at(Ncp::new(2.0).unwrap()), 2.0);
        assert_eq!(c.expected_error_at(Ncp::new(0.5).unwrap()), 1.0);
        assert_eq!(c.expected_error_at(Ncp::new(10.0).unwrap()), 3.0);
    }

    #[test]
    fn error_inverse_roundtrip() {
        let c = ErrorCurve::analytic_square_loss(&deltas(&[1.0, 2.0, 4.0, 8.0])).unwrap();
        for target in [1.0, 1.5, 3.0, 8.0] {
            let ncp = c.error_inverse(target).unwrap();
            assert!((ncp.delta() - target).abs() < 1e-12, "target {target}");
        }
        assert!(c.error_inverse(0.5).is_err());
        assert!(c.error_inverse(9.0).is_err());
        assert!(c.error_inverse(f64::NAN).is_err());
    }

    #[test]
    fn smoothing_fixes_sampling_dips() {
        // Hand-built raw curve with a dip at δ=2.
        let raw = vec![(1.0, 1.0, 0.1), (2.0, 0.8, 0.1), (3.0, 3.0, 0.1)];
        let c = ErrorCurve::from_raw(raw).unwrap();
        assert!(!c.raw_is_monotone(0.0));
        let sm: Vec<f64> = c.points().iter().map(|p| p.smoothed_error).collect();
        assert!(crate::isotonic::is_non_decreasing(&sm, 1e-12));
        // φ still works on the smoothed curve.
        assert!(c.error_inverse(0.95).is_ok());
    }

    #[test]
    fn rejects_empty_and_bad_inputs() {
        assert!(ErrorCurve::analytic_square_loss(&[]).is_err());
        let optimal = LinearModel::new(Vector::from_vec(vec![1.0]));
        let opt = optimal.clone();
        let r = ErrorCurve::estimate(
            &GaussianMechanism,
            &optimal,
            |h| square_loss(h, &opt),
            &deltas(&[1.0]),
            0,
            1,
        );
        assert!(r.is_err());
    }

    #[test]
    fn parallel_estimate_is_bitwise_identical_to_sequential() {
        let optimal = LinearModel::new(Vector::from_vec(vec![1.0, -2.0, 0.5]));
        let grid = deltas(&[0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]);
        let opt = optimal.clone();
        let eval = |h: &LinearModel| square_loss(h, &opt);
        let seq = ErrorCurve::estimate(&GaussianMechanism, &optimal, eval, &grid, 400, 77).unwrap();
        for threads in [Some(1), Some(3), Some(8), None] {
            let par = ErrorCurve::estimate_parallel(
                &GaussianMechanism,
                &optimal,
                eval,
                &grid,
                400,
                77,
                threads,
            )
            .unwrap();
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.points().iter().zip(par.points()) {
                assert_eq!(a.delta.to_bits(), b.delta.to_bits());
                assert_eq!(a.mean_error.to_bits(), b.mean_error.to_bits());
                assert_eq!(a.std_error.to_bits(), b.std_error.to_bits());
                assert_eq!(a.smoothed_error.to_bits(), b.smoothed_error.to_bits());
            }
        }
    }

    #[test]
    fn seed_fully_determines_the_estimate() {
        let optimal = LinearModel::new(Vector::from_vec(vec![2.0, 1.0]));
        let grid = deltas(&[0.5, 1.0, 2.0]);
        let opt = optimal.clone();
        let eval = |h: &LinearModel| square_loss(h, &opt);
        let a = ErrorCurve::estimate(&GaussianMechanism, &optimal, eval, &grid, 100, 5).unwrap();
        let b = ErrorCurve::estimate(&GaussianMechanism, &optimal, eval, &grid, 100, 5).unwrap();
        let c = ErrorCurve::estimate(&GaussianMechanism, &optimal, eval, &grid, 100, 6).unwrap();
        for (p, q) in a.points().iter().zip(b.points()) {
            assert_eq!(p.mean_error.to_bits(), q.mean_error.to_bits());
        }
        assert!(a
            .points()
            .iter()
            .zip(c.points())
            .any(|(p, q)| p.mean_error != q.mean_error));
    }
}
