//! Weighted isotonic regression via pool-adjacent-violators (PAV).
//!
//! Two consumers:
//!
//! * [`crate::error_curve`] smooths Monte-Carlo estimates of
//!   `δ ↦ E[ε(h^δ)]` into the monotone curve that Theorem 4 guarantees in
//!   expectation but sampling noise can locally violate, making the
//!   error-inverse `φ` well defined empirically.
//! * `nimbus-optim` projects candidate price vectors onto the two isotonic
//!   cones of the relaxed program (5) (`z` non-decreasing; `z_j/a_j`
//!   non-increasing) inside its Dykstra solver for the price-interpolation
//!   objective `T²_PI`.
//!
//! PAV computes the exact weighted-L2 projection onto the monotone cone in
//! `O(n)` after the initial scan.

/// Weighted L2 projection of `values` onto the non-decreasing cone.
///
/// Returns the unique minimizer of `Σ w_i (z_i − v_i)²` subject to
/// `z_1 ≤ z_2 ≤ … ≤ z_n`. Weights must be positive; non-positive weights
/// are clamped to a tiny positive value to keep the projection defined.
pub fn isotonic_increasing(values: &[f64], weights: &[f64]) -> Vec<f64> {
    assert_eq!(values.len(), weights.len());
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    // Each block tracks (weighted mean, total weight, member count).
    let mut means: Vec<f64> = Vec::with_capacity(n);
    let mut wsum: Vec<f64> = Vec::with_capacity(n);
    let mut counts: Vec<usize> = Vec::with_capacity(n);

    for i in 0..n {
        let w = weights[i].max(1e-300);
        means.push(values[i]);
        wsum.push(w);
        counts.push(1);
        // Merge while the last two blocks violate monotonicity.
        while means.len() >= 2 {
            let k = means.len();
            if means[k - 2] <= means[k - 1] {
                break;
            }
            let total = wsum[k - 2] + wsum[k - 1];
            let merged = (means[k - 2] * wsum[k - 2] + means[k - 1] * wsum[k - 1]) / total;
            means[k - 2] = merged;
            wsum[k - 2] = total;
            counts[k - 2] += counts[k - 1];
            means.pop();
            wsum.pop();
            counts.pop();
        }
    }

    let mut out = Vec::with_capacity(n);
    for (m, c) in means.iter().zip(counts.iter()) {
        out.extend(std::iter::repeat_n(*m, *c));
    }
    out
}

/// Weighted L2 projection onto the non-increasing cone, implemented by
/// negating, projecting onto the increasing cone and negating back.
pub fn isotonic_decreasing(values: &[f64], weights: &[f64]) -> Vec<f64> {
    let negated: Vec<f64> = values.iter().map(|v| -v).collect();
    isotonic_increasing(&negated, weights)
        .into_iter()
        .map(|v| -v)
        .collect()
}

/// Returns `true` when the slice is non-decreasing within `tol`.
pub fn is_non_decreasing(values: &[f64], tol: f64) -> bool {
    values.windows(2).all(|w| w[1] >= w[0] - tol)
}

/// Returns `true` when the slice is non-increasing within `tol`.
pub fn is_non_increasing(values: &[f64], tol: f64) -> bool {
    values.windows(2).all(|w| w[1] <= w[0] + tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_monotone_is_unchanged() {
        let v = vec![1.0, 2.0, 3.0];
        let w = vec![1.0; 3];
        assert_eq!(isotonic_increasing(&v, &w), v);
    }

    #[test]
    fn single_violation_pools_to_mean() {
        let v = vec![1.0, 3.0, 2.0];
        let w = vec![1.0; 3];
        let out = isotonic_increasing(&v, &w);
        assert_eq!(out, vec![1.0, 2.5, 2.5]);
    }

    #[test]
    fn cascading_merges() {
        let v = vec![4.0, 3.0, 2.0, 1.0];
        let w = vec![1.0; 4];
        let out = isotonic_increasing(&v, &w);
        assert_eq!(out, vec![2.5; 4]);
    }

    #[test]
    fn weights_shift_pool_means() {
        let v = vec![3.0, 1.0];
        let w = vec![3.0, 1.0];
        let out = isotonic_increasing(&v, &w);
        // Weighted mean (3*3 + 1*1)/4 = 2.5.
        assert_eq!(out, vec![2.5, 2.5]);
    }

    #[test]
    fn result_is_monotone_and_projection_optimal() {
        // Deterministic noisy input; verify monotone + KKT-style optimality
        // by comparison against small perturbations.
        let v: Vec<f64> = (0..50)
            .map(|i| (i as f64) * 0.1 + ((i * 7919) % 13) as f64 * 0.3 - 1.5)
            .collect();
        let w: Vec<f64> = (0..50).map(|i| 1.0 + (i % 3) as f64).collect();
        let out = isotonic_increasing(&v, &w);
        assert!(is_non_decreasing(&out, 1e-12));
        let obj = |z: &[f64]| -> f64 {
            z.iter()
                .zip(&v)
                .zip(&w)
                .map(|((zi, vi), wi)| wi * (zi - vi) * (zi - vi))
                .sum()
        };
        let base = obj(&out);
        // Any feasible (monotone) perturbation should not improve.
        let mut tweaked = out.clone();
        for i in 0..49 {
            let room = tweaked[i + 1] - tweaked[i];
            if room > 1e-9 {
                tweaked[i] += room / 2.0;
                assert!(obj(&tweaked) >= base - 1e-9);
                tweaked[i] = out[i];
            }
        }
    }

    #[test]
    fn decreasing_mirrors_increasing() {
        let v = vec![1.0, 3.0, 2.0, 0.5];
        let w = vec![1.0; 4];
        let out = isotonic_decreasing(&v, &w);
        assert!(is_non_increasing(&out, 1e-12));
        // Sum is preserved within pools for unit weights.
        let sv: f64 = v.iter().sum();
        let so: f64 = out.iter().sum();
        assert!((sv - so).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(isotonic_increasing(&[], &[]).is_empty());
        assert_eq!(isotonic_increasing(&[5.0], &[1.0]), vec![5.0]);
    }

    #[test]
    fn monotonicity_predicates() {
        assert!(is_non_decreasing(&[1.0, 1.0, 2.0], 0.0));
        assert!(!is_non_decreasing(&[2.0, 1.0], 0.0));
        assert!(is_non_decreasing(&[2.0, 1.9999999], 1e-3));
        assert!(is_non_increasing(&[3.0, 2.0, 2.0], 0.0));
        assert!(!is_non_increasing(&[1.0, 2.0], 0.0));
    }
}
