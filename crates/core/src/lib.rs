//! Model-based pricing (MBP) core — the primary contribution of the paper
//! *"Model-based Pricing for Machine Learning in a Data Marketplace"*
//! (Chen, Koutris, Kumar), demonstrated at SIGMOD 2019 as **Nimbus**.
//!
//! Instead of selling raw data, the broker sells *noisy versions* of the
//! optimal ML model `h*_λ(D)`, with the noise magnitude — and hence the
//! expected error and the price — controlled by a single knob, the **noise
//! control parameter (NCP) δ**. This crate implements:
//!
//! * [`ncp`] — the validated `δ` / inverse-`δ` types. Throughout the paper
//!   prices are analyzed as functions of `x = 1/δ` ("inverse NCP"), which
//!   for the Gaussian mechanism under square loss is precisely the inverse
//!   of the expected error.
//! * [`mechanism`] — the randomized mechanisms `K`: the paper's central
//!   Gaussian mechanism `K_G` (§4.1, `W_δ = N(0, (δ/d)·I_d)`), a Laplace
//!   variant, an additive-uniform variant, and the scalar mechanisms of
//!   Example 1. All are unbiased and error-monotone, the two restrictions
//!   §3.2 places on `K`.
//! * [`square_loss`] — `ε_s(h, D) = ‖h − h*‖²` and the Lemma 3 identity
//!   `E[ε_s(h^δ)] = δ`.
//! * [`properties`] — empirical verifiers for the mechanism restrictions
//!   (unbiasedness and monotonicity of expected error in δ).
//! * [`error_curve`] — Monte-Carlo estimation of `δ ↦ E[ε(h^δ, D)]` (with a
//!   deterministic parallel estimator whose per-δ RNG streams make it
//!   bitwise-identical to the sequential path), its isotonic smoothing, and
//!   the error-inverse map `φ` of Theorem 6.
//! * [`curve_provider`] — [`CurveProvider`], the dispatch from an
//!   `nimbus-ml` [`ErrorMetric`](nimbus_ml::ErrorMetric) to its curve:
//!   exact closed form when the metric has one (square loss, Lemma 3),
//!   parallel Monte Carlo otherwise.
//! * [`parallel`] — the crossbeam-scoped, order-preserving [`parallel_map`]
//!   shared by curve estimation and the market/experiment layers.
//! * [`isotonic`] — weighted pool-adjacent-violators regression (shared
//!   with the revenue optimizer in `nimbus-optim`).
//! * [`pricing`] — the [`pricing::PricingFunction`] abstraction over the
//!   inverse NCP plus the concrete families (piecewise-linear from the
//!   optimizer's points per Proposition 1, constant, linear).
//! * [`arbitrage`] — Theorem 5's characterization: arbitrage-freeness ⟺
//!   monotone + subadditive in `x = 1/δ`; validators over point sets, plus
//!   the constructive *attack* from the theorem's proof (inverse-variance
//!   combination of cheap noisy instances) used to demonstrate arbitrage
//!   against badly priced curves.
//! * [`price_error_curve`] — the buyer-facing curve of §3.2 with the three
//!   purchase options (pick a point, error budget, price budget).

pub mod arbitrage;
pub mod curve_provider;
pub mod error;
pub mod error_curve;
pub mod isotonic;
pub mod mechanism;
pub mod ncp;
pub mod parallel;
pub mod price_error_curve;
pub mod pricing;
pub mod properties;
pub mod square_loss;

pub use arbitrage::{is_arbitrage_free_on_points, ArbitrageAttack, ArbitrageReport};
pub use curve_provider::CurveProvider;
pub use error::CoreError;
pub use error_curve::{ErrorCurve, ErrorCurvePoint};
pub use mechanism::{
    GaussianMechanism, LaplaceMechanism, RandomizedMechanism, SnappedGaussianMechanism,
    UniformMechanism,
};
pub use ncp::{inverse_ncp_grid, InverseNcp, Ncp};
pub use parallel::parallel_map;
pub use price_error_curve::{PriceErrorCurve, PriceErrorPoint, PurchaseChoice};
pub use pricing::{ConstantPricing, LinearPricing, PiecewiseLinearPricing, PricingFunction};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
