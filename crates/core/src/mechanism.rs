//! Randomized model-perturbation mechanisms.
//!
//! Section 3.2 requires any mechanism `K` used by the broker to be
//! **unbiased** (`E[K(h*, w)] = h*`) and **error-monotone** (larger δ ⇒
//! larger expected error). Section 4.1 then fixes the central instance: the
//! **Gaussian mechanism** `K_G(h*, w) = h* + w`, `w ~ N(0, (δ/d)·I_d)`,
//! whose total injected variance is exactly `δ` so that under square loss
//! `E[ε_s] = δ` (Lemma 3).
//!
//! Two alternatives with identical first/second moments are provided —
//! Laplace noise (Example 2's closing remark; heavier tails) and bounded
//! uniform noise — plus the scalar multiplicative mechanism of Example 1.
//! Keeping per-coordinate variance at `δ/d` for all of them preserves the
//! Lemma 3 identity, which the property tests verify mechanism-by-mechanism.

use crate::{CoreError, Ncp, Result};
use nimbus_linalg::Vector;
use nimbus_ml::LinearModel;
use nimbus_randkit::{Laplace, NimbusRng, SnappedGaussian, StandardNormal};

/// A randomized mechanism `K` releasing noisy versions of the optimal model.
pub trait RandomizedMechanism {
    /// Short stable identifier for reports.
    fn name(&self) -> &'static str;

    /// Samples one noisy instance `h^δ = K(h*, w)`.
    fn perturb(&self, optimal: &LinearModel, ncp: Ncp, rng: &mut NimbusRng) -> Result<LinearModel>;

    /// Total noise variance `E[‖h^δ − h*‖²]` injected at this NCP for a
    /// `d`-dimensional model. All additive mechanisms in this module return
    /// exactly `δ`, preserving Lemma 3.
    fn total_variance(&self, ncp: Ncp, d: usize) -> f64;
}

/// The paper's Gaussian mechanism `K_G` (§4.1, Figure 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct GaussianMechanism;

impl RandomizedMechanism for GaussianMechanism {
    fn name(&self) -> &'static str {
        "gaussian"
    }

    fn perturb(&self, optimal: &LinearModel, ncp: Ncp, rng: &mut NimbusRng) -> Result<LinearModel> {
        let d = optimal.dim();
        if d == 0 {
            return Err(CoreError::InvalidAttack {
                reason: "cannot perturb a zero-dimensional model",
            });
        }
        let std_dev = (ncp.delta() / d as f64).sqrt();
        let mut sampler = StandardNormal::new();
        let noise = Vector::from_vec(sampler.isotropic_vec(rng, std_dev, d));
        optimal.perturbed(&noise).map_err(CoreError::from)
    }

    fn total_variance(&self, ncp: Ncp, _d: usize) -> f64 {
        ncp.delta()
    }
}

/// Floating-point-hardened Gaussian mechanism: same moments as
/// [`GaussianMechanism`] (per-coordinate variance `δ/d`, total `δ`), but the
/// noise is drawn from a *discrete* Gaussian on a clamped dyadic grid with
/// exact integer rejection sampling ([`SnappedGaussian`]). No `exp`/`ln` is
/// evaluated on secret-dependent values, so the emitted f64s cannot leak
/// extra information through floating-point artifacts (Mironov 2012). Kept
/// alongside the naive backend for A/B benchmarking; selectable per listing.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnappedGaussianMechanism;

impl RandomizedMechanism for SnappedGaussianMechanism {
    fn name(&self) -> &'static str {
        "snapped_gaussian"
    }

    fn perturb(&self, optimal: &LinearModel, ncp: Ncp, rng: &mut NimbusRng) -> Result<LinearModel> {
        let d = optimal.dim();
        if d == 0 {
            return Err(CoreError::InvalidAttack {
                reason: "cannot perturb a zero-dimensional model",
            });
        }
        let std_dev = (ncp.delta() / d as f64).sqrt();
        let sampler =
            SnappedGaussian::new(std_dev).ok_or(CoreError::InvalidNcp { value: ncp.delta() })?;
        let mut noise = vec![0.0; d];
        sampler.fill(rng, &mut noise);
        optimal
            .perturbed(&Vector::from_vec(noise))
            .map_err(CoreError::from)
    }

    fn total_variance(&self, ncp: Ncp, _d: usize) -> f64 {
        ncp.delta()
    }
}

/// Additive zero-mean Laplace noise with per-coordinate variance `δ/d`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaplaceMechanism;

impl RandomizedMechanism for LaplaceMechanism {
    fn name(&self) -> &'static str {
        "laplace"
    }

    fn perturb(&self, optimal: &LinearModel, ncp: Ncp, rng: &mut NimbusRng) -> Result<LinearModel> {
        let d = optimal.dim();
        if d == 0 {
            return Err(CoreError::InvalidAttack {
                reason: "cannot perturb a zero-dimensional model",
            });
        }
        let dist = Laplace::with_variance(ncp.delta() / d as f64)
            .ok_or(CoreError::InvalidNcp { value: ncp.delta() })?;
        let mut noise = vec![0.0; d];
        dist.fill(rng, &mut noise);
        optimal
            .perturbed(&Vector::from_vec(noise))
            .map_err(CoreError::from)
    }

    fn total_variance(&self, ncp: Ncp, _d: usize) -> f64 {
        ncp.delta()
    }
}

/// Additive zero-mean bounded uniform noise `U[-a, a]` per coordinate with
/// `a = sqrt(3δ/d)` so the per-coordinate variance is `δ/d` (Example 1's
/// `K_1`, lifted to vectors with the paper's `δ`-as-variance convention).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformMechanism;

impl RandomizedMechanism for UniformMechanism {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn perturb(&self, optimal: &LinearModel, ncp: Ncp, rng: &mut NimbusRng) -> Result<LinearModel> {
        let d = optimal.dim();
        if d == 0 {
            return Err(CoreError::InvalidAttack {
                reason: "cannot perturb a zero-dimensional model",
            });
        }
        let half_width = (3.0 * ncp.delta() / d as f64).sqrt();
        let mut noise = vec![0.0; d];
        for n in noise.iter_mut() {
            *n = nimbus_randkit::uniform_symmetric(rng, half_width);
        }
        optimal
            .perturbed(&Vector::from_vec(noise))
            .map_err(CoreError::from)
    }

    fn total_variance(&self, ncp: Ncp, _d: usize) -> f64 {
        ncp.delta()
    }
}

/// Example 1's multiplicative scalar mechanism `K_2(h*, w) = h* · w` with
/// `w ~ U[1−γ, 1+γ]`. It is unbiased, and its injected variance depends on
/// `‖h*‖` — `E[‖h^δ − h*‖²] = (γ²/3)‖h*‖²` — so `γ` is solved from the
/// requested `δ` against the model norm at perturbation time. Degenerate
/// zero-norm models cannot carry multiplicative noise and are rejected.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiplicativeUniformMechanism;

impl RandomizedMechanism for MultiplicativeUniformMechanism {
    fn name(&self) -> &'static str {
        "multiplicative_uniform"
    }

    fn perturb(&self, optimal: &LinearModel, ncp: Ncp, rng: &mut NimbusRng) -> Result<LinearModel> {
        let norm2 = optimal.weights().norm2_squared();
        // nimbus-audit: allow(float-eq) — exact-zero guard on a sum of squares
        if norm2 == 0.0 {
            return Err(CoreError::InvalidAttack {
                reason: "multiplicative noise requires a non-zero optimal model",
            });
        }
        let gamma = (3.0 * ncp.delta() / norm2).sqrt();
        let w = nimbus_randkit::uniform_in(rng, 1.0 - gamma, 1.0 + gamma);
        Ok(LinearModel::new(optimal.weights().scaled(w)))
    }

    fn total_variance(&self, ncp: Ncp, _d: usize) -> f64 {
        ncp.delta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_randkit::seeded_rng;

    fn model() -> LinearModel {
        LinearModel::new(Vector::from_vec(vec![
            1.2, -3.1, 0.5, 0.1, -2.3, 7.2, -0.9, 5.5,
        ]))
    }

    fn empirical_mean_and_variance<M: RandomizedMechanism>(
        mech: &M,
        delta: f64,
        reps: usize,
    ) -> (Vector, f64) {
        let m = model();
        let d = m.dim();
        let ncp = Ncp::new(delta).unwrap();
        let mut rng = seeded_rng(42);
        let mut mean = vec![0.0; d];
        let mut total_var = 0.0;
        for _ in 0..reps {
            let noisy = mech.perturb(&m, ncp, &mut rng).unwrap();
            for (acc, w) in mean.iter_mut().zip(noisy.weights().as_slice()) {
                *acc += w;
            }
            total_var += noisy.distance_squared(&m).unwrap();
        }
        for acc in mean.iter_mut() {
            *acc /= reps as f64;
        }
        (Vector::from_vec(mean), total_var / reps as f64)
    }

    #[test]
    fn gaussian_is_unbiased_with_variance_delta() {
        let (mean, var) = empirical_mean_and_variance(&GaussianMechanism, 2.0, 40_000);
        let bias = mean.sub(model().weights()).unwrap().norm_inf();
        assert!(bias < 0.02, "bias {bias}");
        assert!((var - 2.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn snapped_gaussian_is_unbiased_with_variance_delta() {
        let (mean, var) = empirical_mean_and_variance(&SnappedGaussianMechanism, 2.0, 40_000);
        let bias = mean.sub(model().weights()).unwrap().norm_inf();
        assert!(bias < 0.02, "bias {bias}");
        assert!((var - 2.0).abs() < 0.06, "variance {var}");
    }

    #[test]
    fn snapped_gaussian_emits_on_grid_noise() {
        let m = model();
        let d = m.dim();
        let delta = 2.0;
        let ncp = Ncp::new(delta).unwrap();
        let sampler = nimbus_randkit::SnappedGaussian::new((delta / d as f64).sqrt()).unwrap();
        let gamma = sampler.grid();
        let mut rng = seeded_rng(9);
        let mut shadow = seeded_rng(9);
        for _ in 0..200 {
            let noisy = SnappedGaussianMechanism.perturb(&m, ncp, &mut rng).unwrap();
            // Replay the identical rng stream to recover the exact noise the
            // mechanism added: it must be on-grid, clamped, and the perturbed
            // weight must be exactly `orig + noise`.
            for (w, orig) in noisy
                .weights()
                .as_slice()
                .iter()
                .zip(m.weights().as_slice())
            {
                let noise = sampler.sample(&mut shadow);
                let units = noise / gamma;
                assert_eq!(units, units.trunc(), "off-grid noise {noise}");
                assert!(units.abs() <= sampler.clamp_units() as f64);
                assert_eq!(*w, orig + noise);
            }
        }
    }

    #[test]
    fn snapped_gaussian_is_deterministic_given_rng_state() {
        let m = model();
        let ncp = Ncp::new(1.0).unwrap();
        let a = SnappedGaussianMechanism
            .perturb(&m, ncp, &mut seeded_rng(7))
            .unwrap();
        let b = SnappedGaussianMechanism
            .perturb(&m, ncp, &mut seeded_rng(7))
            .unwrap();
        assert_eq!(a.weights().as_slice(), b.weights().as_slice());
    }

    #[test]
    fn laplace_is_unbiased_with_variance_delta() {
        let (mean, var) = empirical_mean_and_variance(&LaplaceMechanism, 2.0, 60_000);
        let bias = mean.sub(model().weights()).unwrap().norm_inf();
        assert!(bias < 0.03, "bias {bias}");
        assert!((var - 2.0).abs() < 0.08, "variance {var}");
    }

    #[test]
    fn uniform_is_unbiased_with_variance_delta() {
        let (mean, var) = empirical_mean_and_variance(&UniformMechanism, 2.0, 40_000);
        let bias = mean.sub(model().weights()).unwrap().norm_inf();
        assert!(bias < 0.02, "bias {bias}");
        assert!((var - 2.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn multiplicative_is_unbiased_with_variance_delta() {
        let (mean, var) = empirical_mean_and_variance(&MultiplicativeUniformMechanism, 0.5, 60_000);
        let bias = mean.sub(model().weights()).unwrap().norm_inf();
        assert!(bias < 0.05, "bias {bias}");
        assert!((var - 0.5).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn multiplicative_rejects_zero_model() {
        let zero = LinearModel::zeros(3);
        let mut rng = seeded_rng(1);
        assert!(MultiplicativeUniformMechanism
            .perturb(&zero, Ncp::new(1.0).unwrap(), &mut rng)
            .is_err());
    }

    #[test]
    fn zero_dimensional_models_rejected() {
        let zero = LinearModel::zeros(0);
        let mut rng = seeded_rng(1);
        for mech in [
            &GaussianMechanism as &dyn RandomizedMechanism,
            &SnappedGaussianMechanism,
            &LaplaceMechanism,
            &UniformMechanism,
        ] {
            assert!(mech
                .perturb(&zero, Ncp::new(1.0).unwrap(), &mut rng)
                .is_err());
        }
    }

    #[test]
    fn total_variance_reports_delta() {
        let ncp = Ncp::new(3.5).unwrap();
        assert_eq!(GaussianMechanism.total_variance(ncp, 8), 3.5);
        assert_eq!(LaplaceMechanism.total_variance(ncp, 8), 3.5);
        assert_eq!(UniformMechanism.total_variance(ncp, 8), 3.5);
    }

    #[test]
    fn perturbation_is_deterministic_given_rng_state() {
        let m = model();
        let ncp = Ncp::new(1.0).unwrap();
        let a = GaussianMechanism
            .perturb(&m, ncp, &mut seeded_rng(7))
            .unwrap();
        let b = GaussianMechanism
            .perturb(&m, ncp, &mut seeded_rng(7))
            .unwrap();
        assert_eq!(a.weights().as_slice(), b.weights().as_slice());
    }

    #[test]
    fn uniform_noise_is_bounded() {
        let m = model();
        let d = m.dim() as f64;
        let delta = 2.0;
        let bound = (3.0 * delta / d).sqrt();
        let ncp = Ncp::new(delta).unwrap();
        let mut rng = seeded_rng(3);
        for _ in 0..1000 {
            let noisy = UniformMechanism.perturb(&m, ncp, &mut rng).unwrap();
            let diff = noisy.weights().sub(m.weights()).unwrap();
            assert!(diff.norm_inf() <= bound + 1e-12);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            GaussianMechanism.name(),
            SnappedGaussianMechanism.name(),
            LaplaceMechanism.name(),
            UniformMechanism.name(),
            MultiplicativeUniformMechanism.name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
