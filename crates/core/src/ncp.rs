//! The noise control parameter (NCP) and its inverse.
//!
//! The NCP `δ` is the single knob of every mechanism: for the Gaussian
//! mechanism `K_G` it is both the total noise variance injected into the
//! model (`W_δ = N(0, (δ/d)·I_d)` puts `δ/d` per coordinate, `δ` in total)
//! and — under square loss — the expected error itself (Lemma 3).
//!
//! The pricing theory works in the *inverse* parameter `x = 1/δ`
//! (Theorem 5): arbitrage-freeness is monotonicity + subadditivity of
//! `p(x) = p_ε,λ(1/x, D)`. Keeping `δ` and `x` as distinct newtypes prevents
//! the classic bug of passing one where the other is meant.

use crate::{CoreError, Result};

/// A validated noise control parameter `δ ∈ (0, ∞)`.
///
/// Larger `δ` means more noise, larger expected error and a lower price.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Ncp(f64);

impl Ncp {
    /// Creates an NCP, rejecting non-positive and non-finite values.
    pub fn new(delta: f64) -> Result<Self> {
        if delta > 0.0 && delta.is_finite() {
            Ok(Ncp(delta))
        } else {
            Err(CoreError::InvalidNcp { value: delta })
        }
    }

    /// The raw `δ` value.
    pub fn delta(&self) -> f64 {
        self.0
    }

    /// The inverse parameter `x = 1/δ`.
    pub fn inverse(&self) -> InverseNcp {
        InverseNcp(1.0 / self.0)
    }
}

impl std::fmt::Display for Ncp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "δ={}", self.0)
    }
}

/// The inverse noise control parameter `x = 1/δ ∈ (0, ∞)`.
///
/// This is the axis of every pricing plot in the paper ("1/NCP"): larger `x`
/// means less noise, smaller expected error and a (weakly) higher price.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct InverseNcp(f64);

impl InverseNcp {
    /// Creates an inverse NCP, rejecting non-positive and non-finite values.
    pub fn new(x: f64) -> Result<Self> {
        if x > 0.0 && x.is_finite() {
            Ok(InverseNcp(x))
        } else {
            Err(CoreError::InvalidNcp { value: x })
        }
    }

    /// The raw `x = 1/δ` value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// The corresponding NCP `δ = 1/x`.
    pub fn ncp(&self) -> Ncp {
        Ncp(1.0 / self.0)
    }
}

impl std::fmt::Display for InverseNcp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "1/δ={}", self.0)
    }
}

/// Builds an evenly spaced inverse-NCP grid `lo..=hi` with `n` points — the
/// `1/NCP ∈ [1, 100]` axis used throughout the paper's figures.
pub fn inverse_ncp_grid(lo: f64, hi: f64, n: usize) -> Result<Vec<InverseNcp>> {
    if n == 0 {
        return Err(CoreError::EmptyCurve);
    }
    if !(lo > 0.0 && hi >= lo && hi.is_finite()) {
        return Err(CoreError::InvalidNcp { value: lo });
    }
    if n == 1 {
        return Ok(vec![InverseNcp::new(lo)?]);
    }
    let step = (hi - lo) / (n - 1) as f64;
    (0..n)
        .map(|i| InverseNcp::new(lo + step * i as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncp_validation() {
        assert!(Ncp::new(1.0).is_ok());
        assert!(Ncp::new(0.0).is_err());
        assert!(Ncp::new(-1.0).is_err());
        assert!(Ncp::new(f64::NAN).is_err());
        assert!(Ncp::new(f64::INFINITY).is_err());
    }

    #[test]
    fn inverse_roundtrip() {
        let d = Ncp::new(4.0).unwrap();
        let x = d.inverse();
        assert_eq!(x.value(), 0.25);
        assert_eq!(x.ncp().delta(), 4.0);
    }

    #[test]
    fn ordering_reverses_under_inverse() {
        let small = Ncp::new(1.0).unwrap();
        let large = Ncp::new(10.0).unwrap();
        assert!(small < large);
        assert!(small.inverse() > large.inverse());
    }

    #[test]
    fn grid_is_even_and_inclusive() {
        let g = inverse_ncp_grid(1.0, 100.0, 100).unwrap();
        assert_eq!(g.len(), 100);
        assert_eq!(g[0].value(), 1.0);
        assert_eq!(g[99].value(), 100.0);
        assert!((g[1].value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn grid_edge_cases() {
        assert!(inverse_ncp_grid(1.0, 100.0, 0).is_err());
        assert!(inverse_ncp_grid(0.0, 1.0, 2).is_err());
        assert!(inverse_ncp_grid(2.0, 1.0, 2).is_err());
        let single = inverse_ncp_grid(3.0, 10.0, 1).unwrap();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].value(), 3.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Ncp::new(2.0).unwrap().to_string(), "δ=2");
        assert_eq!(InverseNcp::new(0.5).unwrap().to_string(), "1/δ=0.5");
    }
}
