//! Small crossbeam-scoped parallel map shared by curve estimation and the
//! market/experiment layers.
//!
//! Monte-Carlo error-curve estimation, batch purchasing and the figure
//! experiments all fan out many independent CPU-bound work items (δ points,
//! purchase requests, dataset × loss configurations). A static block
//! partition over scoped threads is all the machinery needed — no work
//! stealing, no channels — and, because the partition is deterministic and
//! order-preserving, callers that derive per-item RNG streams get results
//! bitwise-identical to a sequential loop.

/// Applies `f` to every item, fanning out over up to `max_threads` scoped
/// threads (defaults to available parallelism when `None`). Preserves input
/// order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, max_threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = max_threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Pre-size the output with placeholder slots so threads can write their
    // partition in place without coordination.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    {
        let f = &f;
        // Pair each input chunk with its output chunk; both move into the
        // spawned closure.
        let mut item_iter: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut remaining = items;
        while !remaining.is_empty() {
            let take = chunk.min(remaining.len());
            let rest = remaining.split_off(take);
            item_iter.push(remaining);
            remaining = rest;
        }
        crossbeam::scope(|s| {
            let mut out_slices: Vec<&mut [Option<R>]> = Vec::with_capacity(item_iter.len());
            let mut rest = &mut slots[..];
            for part in &item_iter {
                let (head, tail) = rest.split_at_mut(part.len());
                out_slices.push(head);
                rest = tail;
            }
            for (part, out) in item_iter.into_iter().zip(out_slices) {
                s.spawn(move |_| {
                    for (slot, item) in out.iter_mut().zip(part) {
                        *slot = Some(f(item));
                    }
                });
            }
        })
        .expect("worker threads must not panic");
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot written"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(items, Some(7), |x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], Some(1), |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), None, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![5], Some(16), |x| x * x);
        assert_eq!(out, vec![25]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        parallel_map(items, Some(4), |x| {
            ids.lock().unwrap().insert(std::thread::current().id());
            x
        });
        assert!(ids.lock().unwrap().len() > 1, "expected parallel execution");
    }
}
