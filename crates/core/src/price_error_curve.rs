//! The buyer-facing price–error curve and the three purchase options.
//!
//! Step 2 of the broker–buyer interaction (§3.2, Figure 1(C)): given the
//! buyer's choice of model and error functions, the broker computes a curve
//! pairing every NCP `δ` with its expected error `E[ε(h^δ, D)]` and its
//! price `p_ε,λ(δ, D)`. The buyer then exercises one of three options:
//!
//! 1. **Pick a point** — a specific price–error combination on the curve;
//!    monotonicity of the error in δ makes the δ* unique.
//! 2. **Error budget** — `δ* = argmin_δ p(δ)` s.t. `E[ε(h^δ)] ≤ ε budget`.
//! 3. **Price budget** — `δ* = argmin_δ E[ε(h^δ)]` s.t. `p(δ) ≤ budget`.

use crate::error_curve::ErrorCurve;
use crate::pricing::PricingFunction;
use crate::{CoreError, InverseNcp, Ncp, Result};

/// One point of the buyer-facing curve.
#[derive(Debug, Clone, Copy)]
pub struct PriceErrorPoint {
    /// Noise control parameter δ.
    pub delta: f64,
    /// Inverse NCP `x = 1/δ`.
    pub inverse: f64,
    /// Expected error `E[ε(h^δ, D)]` (smoothed estimate).
    pub expected_error: f64,
    /// Posted price at this version.
    pub price: f64,
}

/// The resolved outcome of a buyer's purchase request.
#[derive(Debug, Clone, Copy)]
pub struct PurchaseChoice {
    /// The version the broker will produce.
    pub point: PriceErrorPoint,
}

/// The buyer-facing curve: error and price per version.
#[derive(Debug, Clone)]
pub struct PriceErrorCurve {
    points: Vec<PriceErrorPoint>,
}

impl PriceErrorCurve {
    /// Assembles the curve from an estimated [`ErrorCurve`] and a pricing
    /// function. Points come out ordered by increasing δ (decreasing x).
    pub fn new<P: PricingFunction + ?Sized>(error_curve: &ErrorCurve, pricing: &P) -> Result<Self> {
        if error_curve.is_empty() {
            return Err(CoreError::EmptyCurve);
        }
        let mut points = Vec::with_capacity(error_curve.len());
        for ep in error_curve.points() {
            let x = InverseNcp::new(ep.inverse)?;
            let price = pricing.price(x);
            if !(price.is_finite() && price >= 0.0) {
                return Err(CoreError::InvalidPrice { value: price });
            }
            points.push(PriceErrorPoint {
                delta: ep.delta,
                inverse: ep.inverse,
                expected_error: ep.smoothed_error,
                price,
            });
        }
        Ok(PriceErrorCurve { points })
    }

    /// The curve points, ordered by increasing δ.
    pub fn points(&self) -> &[PriceErrorPoint] {
        &self.points
    }

    /// Number of versions on offer.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `(expected error, price)` range covered by the curve: errors of
    /// the most/least accurate versions and the corresponding prices.
    /// Useful for snapshot consumers that need bounds without walking the
    /// points.
    pub fn ranges(&self) -> ((f64, f64), (f64, f64)) {
        let first = &self.points[0];
        let last = &self.points[self.points.len() - 1];
        let (e_lo, e_hi) = if first.expected_error <= last.expected_error {
            (first.expected_error, last.expected_error)
        } else {
            (last.expected_error, first.expected_error)
        };
        let (p_lo, p_hi) = if first.price <= last.price {
            (first.price, last.price)
        } else {
            (last.price, first.price)
        };
        ((e_lo, e_hi), (p_lo, p_hi))
    }

    /// Option 1 — the buyer picks the version at a specific δ (must be one
    /// of the offered grid points, matched within relative tolerance).
    pub fn choose_at(&self, ncp: Ncp) -> Result<PurchaseChoice> {
        let d = ncp.delta();
        let found = self
            .points
            .iter()
            .find(|p| (p.delta - d).abs() <= 1e-9 * d.max(1.0));
        match found {
            Some(&point) => Ok(PurchaseChoice { point }),
            None => Err(CoreError::BudgetUnsatisfiable {
                kind: "error",
                budget: d,
            }),
        }
    }

    /// Option 2 — cheapest version whose expected error is within
    /// `error_budget`.
    pub fn choose_with_error_budget(&self, error_budget: f64) -> Result<PurchaseChoice> {
        let best = self
            .points
            .iter()
            .filter(|p| p.expected_error <= error_budget)
            .min_by(|a, b| {
                a.price
                    .partial_cmp(&b.price)
                    .expect("prices are finite")
                    // Among equal prices prefer the lower error.
                    .then(
                        a.expected_error
                            .partial_cmp(&b.expected_error)
                            .expect("errors are finite"),
                    )
            });
        match best {
            Some(&point) => Ok(PurchaseChoice { point }),
            None => Err(CoreError::BudgetUnsatisfiable {
                kind: "error",
                budget: error_budget,
            }),
        }
    }

    /// Option 3 — most accurate version whose price is within
    /// `price_budget`.
    pub fn choose_with_price_budget(&self, price_budget: f64) -> Result<PurchaseChoice> {
        let best = self
            .points
            .iter()
            .filter(|p| p.price <= price_budget)
            .min_by(|a, b| {
                a.expected_error
                    .partial_cmp(&b.expected_error)
                    .expect("errors are finite")
                    .then(a.price.partial_cmp(&b.price).expect("prices are finite"))
            });
        match best {
            Some(&point) => Ok(PurchaseChoice { point }),
            None => Err(CoreError::BudgetUnsatisfiable {
                kind: "price",
                budget: price_budget,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_curve::ErrorCurve;
    use crate::pricing::PiecewiseLinearPricing;

    fn curve() -> PriceErrorCurve {
        // Square-loss analytic curve over δ ∈ {0.25, 0.5, 1, 2, 4}, i.e.
        // x ∈ {4, 2, 1, 0.5, 0.25}; pricing is 10·x capped via breakpoints.
        let deltas: Vec<Ncp> = [0.25, 0.5, 1.0, 2.0, 4.0]
            .iter()
            .map(|&d| Ncp::new(d).unwrap())
            .collect();
        let ec = ErrorCurve::analytic_square_loss(&deltas).unwrap();
        let pricing = PiecewiseLinearPricing::new(vec![(0.25, 2.5), (4.0, 40.0)]).unwrap();
        PriceErrorCurve::new(&ec, &pricing).unwrap()
    }

    #[test]
    fn points_pair_error_and_price() {
        let c = curve();
        assert_eq!(c.len(), 5);
        // δ = 0.25 → x = 4 → price 40; error = δ = 0.25.
        let sharpest = &c.points()[0];
        assert_eq!(sharpest.delta, 0.25);
        assert!((sharpest.price - 40.0).abs() < 1e-9);
        assert_eq!(sharpest.expected_error, 0.25);
        // Price decreases along increasing δ.
        let prices: Vec<f64> = c.points().iter().map(|p| p.price).collect();
        assert!(prices.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn choose_at_exact_point() {
        let c = curve();
        let got = c.choose_at(Ncp::new(1.0).unwrap()).unwrap();
        assert_eq!(got.point.delta, 1.0);
        assert!(c.choose_at(Ncp::new(3.0).unwrap()).is_err());
    }

    #[test]
    fn error_budget_picks_cheapest_feasible() {
        let c = curve();
        // Versions with error ≤ 2.0 are δ ∈ {0.25, 0.5, 1, 2}; the cheapest
        // is the noisiest feasible one, δ = 2 (x = 0.5, price 5).
        let got = c.choose_with_error_budget(2.0).unwrap();
        assert_eq!(got.point.delta, 2.0);
        assert!((got.point.price - 5.0).abs() < 1e-9);
        // Infeasible budget.
        assert!(matches!(
            c.choose_with_error_budget(0.1),
            Err(CoreError::BudgetUnsatisfiable { kind: "error", .. })
        ));
    }

    #[test]
    fn price_budget_picks_most_accurate_feasible() {
        let c = curve();
        // Budget 20 affords x ≤ 2 (δ ≥ 0.5): best error is δ = 0.5.
        let got = c.choose_with_price_budget(20.0).unwrap();
        assert_eq!(got.point.delta, 0.5);
        // Tiny budget affords only the cheapest version (δ = 4, price 2.5).
        let got = c.choose_with_price_budget(2.5).unwrap();
        assert_eq!(got.point.delta, 4.0);
        assert!(matches!(
            c.choose_with_price_budget(1.0),
            Err(CoreError::BudgetUnsatisfiable { kind: "price", .. })
        ));
    }

    #[test]
    fn budget_exactly_on_point_is_feasible() {
        let c = curve();
        let got = c.choose_with_error_budget(0.25).unwrap();
        assert_eq!(got.point.delta, 0.25);
        let got = c.choose_with_price_budget(40.0).unwrap();
        assert_eq!(got.point.delta, 0.25);
    }
}
