//! Pricing functions over the inverse noise control parameter.
//!
//! Per Theorem 5, all pricing analysis happens in the transformed view
//! `p(x) = p_ε,λ(1/x, D)` where `x = 1/δ`: a price curve is arbitrage-free
//! for the Gaussian mechanism iff `p` is monotone non-decreasing and
//! subadditive on `x > 0`.
//!
//! Three families are provided:
//!
//! * [`PiecewiseLinearPricing`] — the optimizer's output format. Given the
//!   values at the `n` parameter points, Proposition 1 shows the piecewise
//!   linear interpolant (through the origin before the first point,
//!   constant after the last) satisfies the relaxed constraints whenever
//!   the point values do, and is therefore arbitrage-free by Lemma 8.
//! * [`ConstantPricing`] — the MaxC / MedC / OptC baselines of §6.2:
//!   trivially monotone and subadditive.
//! * [`LinearPricing`] — the Lin baseline: `p(x) = slope·x + intercept`
//!   with `slope, intercept ≥ 0`, which is monotone and subadditive
//!   (subadditivity costs one intercept).

use crate::{CoreError, InverseNcp, Result};

/// A buyer-facing pricing function over the inverse NCP `x = 1/δ`.
pub trait PricingFunction {
    /// Price at inverse NCP `x` (`x > 0`).
    fn price(&self, x: InverseNcp) -> f64;

    /// Short stable identifier for reports.
    fn name(&self) -> &'static str;

    /// Prices at many points (convenience).
    fn prices(&self, xs: &[InverseNcp]) -> Vec<f64> {
        xs.iter().map(|&x| self.price(x)).collect()
    }
}

/// Piecewise-linear pricing through `(a_i, z_i)` points (Proposition 1).
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinearPricing {
    /// Strictly increasing inverse-NCP breakpoints `a_1 < … < a_n`.
    xs: Vec<f64>,
    /// Non-negative prices `z_i = p(a_i)`.
    zs: Vec<f64>,
}

impl PiecewiseLinearPricing {
    /// Builds the interpolant from `(a_i, z_i)` pairs. Points are sorted by
    /// `a`; requires `a_i > 0` and distinct, `z_i ≥ 0` and finite.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.is_empty() {
            return Err(CoreError::EmptyCurve);
        }
        let mut pts = points;
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for (i, (a, z)) in pts.iter().enumerate() {
            if !(a.is_finite() && *a > 0.0) {
                return Err(CoreError::InvalidCurvePoint {
                    index: i,
                    reason: "inverse NCP breakpoint must be positive and finite",
                });
            }
            if !(z.is_finite() && *z >= 0.0) {
                return Err(CoreError::InvalidCurvePoint {
                    index: i,
                    reason: "price must be non-negative and finite",
                });
            }
            if i > 0 && pts[i - 1].0 >= *a {
                return Err(CoreError::InvalidCurvePoint {
                    index: i,
                    reason: "breakpoints must be strictly increasing",
                });
            }
        }
        let (xs, zs) = pts.into_iter().unzip();
        Ok(PiecewiseLinearPricing { xs, zs })
    }

    /// The breakpoints `a_i`.
    pub fn breakpoints(&self) -> &[f64] {
        &self.xs
    }

    /// The prices `z_i` at the breakpoints.
    pub fn values(&self) -> &[f64] {
        &self.zs
    }

    /// The posted `(a_i, z_i)` menu pairs, in breakpoint order. Snapshot
    /// consumers use this instead of zipping [`Self::breakpoints`] and
    /// [`Self::values`] by hand.
    pub fn menu(&self) -> Vec<(f64, f64)> {
        self.xs
            .iter()
            .copied()
            .zip(self.zs.iter().copied())
            .collect()
    }

    /// The breakpoint range `(a_1, a_n)` — the inverse-NCP interval on which
    /// the menu interpolates (outside it the curve extends through the
    /// origin on the left and as a constant on the right).
    pub fn support(&self) -> (f64, f64) {
        (self.xs[0], self.xs[self.xs.len() - 1])
    }

    /// Checks the relaxed constraints of program (5): `z` non-decreasing and
    /// the unit price `z_i/a_i` non-increasing. By Lemma 8 + Proposition 1,
    /// these imply the interpolant is arbitrage-free everywhere.
    pub fn satisfies_relaxed_constraints(&self, tol: f64) -> bool {
        let monotone = self.zs.windows(2).all(|w| w[1] >= w[0] - tol);
        let unit: Vec<f64> = self.zs.iter().zip(&self.xs).map(|(z, a)| z / a).collect();
        let decreasing_unit = unit.windows(2).all(|w| w[1] <= w[0] + tol);
        monotone && decreasing_unit
    }
}

impl PricingFunction for PiecewiseLinearPricing {
    fn price(&self, x: InverseNcp) -> f64 {
        let v = x.value();
        let xs = &self.xs;
        let zs = &self.zs;
        if v <= xs[0] {
            // Through the origin: p(x) = (z_1 / a_1) · x on [0, a_1].
            return zs[0] / xs[0] * v;
        }
        let n = xs.len();
        if v >= xs[n - 1] {
            return zs[n - 1];
        }
        let idx = xs.partition_point(|&a| a < v);
        let (x0, x1) = (xs[idx - 1], xs[idx]);
        let (z0, z1) = (zs[idx - 1], zs[idx]);
        z0 + (z1 - z0) * (v - x0) / (x1 - x0)
    }

    fn name(&self) -> &'static str {
        "piecewise_linear"
    }
}

/// A constant price for every model version (the MaxC/MedC/OptC baselines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantPricing {
    price: f64,
}

impl ConstantPricing {
    /// Creates a constant pricing function; the price must be non-negative
    /// and finite.
    pub fn new(price: f64) -> Result<Self> {
        if price.is_finite() && price >= 0.0 {
            Ok(ConstantPricing { price })
        } else {
            Err(CoreError::InvalidPrice { value: price })
        }
    }

    /// The constant price.
    pub fn value(&self) -> f64 {
        self.price
    }
}

impl PricingFunction for ConstantPricing {
    fn price(&self, _x: InverseNcp) -> f64 {
        self.price
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

/// Linear pricing `p(x) = slope·x + intercept` (the Lin baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearPricing {
    slope: f64,
    intercept: f64,
}

impl LinearPricing {
    /// Creates a linear pricing function. Both coefficients must be
    /// non-negative and finite for the function to be monotone and
    /// subadditive (hence arbitrage-free).
    pub fn new(slope: f64, intercept: f64) -> Result<Self> {
        if !(slope.is_finite() && slope >= 0.0) {
            return Err(CoreError::InvalidPrice { value: slope });
        }
        if !(intercept.is_finite() && intercept >= 0.0) {
            return Err(CoreError::InvalidPrice { value: intercept });
        }
        Ok(LinearPricing { slope, intercept })
    }

    /// Fits the Lin baseline of §6.2: the line through the smallest and
    /// largest buyer values over the inverse-NCP range `[x_lo, x_hi]`,
    /// clamped to a non-negative intercept.
    pub fn through(x_lo: f64, v_lo: f64, x_hi: f64, v_hi: f64) -> Result<Self> {
        if x_hi <= x_lo || x_hi.is_nan() || x_lo.is_nan() {
            return Err(CoreError::InvalidCurvePoint {
                index: 1,
                reason: "x_hi must exceed x_lo",
            });
        }
        let slope = ((v_hi - v_lo) / (x_hi - x_lo)).max(0.0);
        let intercept = (v_lo - slope * x_lo).max(0.0);
        LinearPricing::new(slope, intercept)
    }

    /// Slope coefficient.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Intercept coefficient.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl PricingFunction for LinearPricing {
    fn price(&self, x: InverseNcp) -> f64 {
        self.slope * x.value() + self.intercept
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(v: f64) -> InverseNcp {
        InverseNcp::new(v).unwrap()
    }

    #[test]
    fn piecewise_linear_interpolates() {
        let p = PiecewiseLinearPricing::new(vec![(1.0, 10.0), (3.0, 30.0), (5.0, 40.0)]).unwrap();
        assert_eq!(p.price(x(1.0)), 10.0);
        assert_eq!(p.price(x(2.0)), 20.0);
        assert_eq!(p.price(x(4.0)), 35.0);
        // Before the first point: through the origin.
        assert_eq!(p.price(x(0.5)), 5.0);
        // After the last point: constant.
        assert_eq!(p.price(x(100.0)), 40.0);
    }

    #[test]
    fn piecewise_linear_sorts_input() {
        let p = PiecewiseLinearPricing::new(vec![(3.0, 30.0), (1.0, 10.0)]).unwrap();
        assert_eq!(p.breakpoints(), &[1.0, 3.0]);
        assert_eq!(p.values(), &[10.0, 30.0]);
    }

    #[test]
    fn piecewise_linear_rejects_bad_points() {
        assert!(PiecewiseLinearPricing::new(vec![]).is_err());
        assert!(PiecewiseLinearPricing::new(vec![(0.0, 1.0)]).is_err());
        assert!(PiecewiseLinearPricing::new(vec![(-1.0, 1.0)]).is_err());
        assert!(PiecewiseLinearPricing::new(vec![(1.0, -1.0)]).is_err());
        assert!(PiecewiseLinearPricing::new(vec![(1.0, 1.0), (1.0, 2.0)]).is_err());
        assert!(PiecewiseLinearPricing::new(vec![(1.0, f64::NAN)]).is_err());
    }

    #[test]
    fn relaxed_constraints_detection() {
        // z increasing, z/a decreasing: 10/1 ≥ 15/2 ≥ 18/3.
        let good =
            PiecewiseLinearPricing::new(vec![(1.0, 10.0), (2.0, 15.0), (3.0, 18.0)]).unwrap();
        assert!(good.satisfies_relaxed_constraints(1e-12));
        // Unit price increases: violates the relaxed subadditivity.
        let bad = PiecewiseLinearPricing::new(vec![(1.0, 1.0), (2.0, 5.0)]).unwrap();
        assert!(!bad.satisfies_relaxed_constraints(1e-12));
        // Price decreases: violates monotonicity.
        let bad2 = PiecewiseLinearPricing::new(vec![(1.0, 5.0), (2.0, 3.0)]).unwrap();
        assert!(!bad2.satisfies_relaxed_constraints(1e-12));
    }

    #[test]
    fn constant_pricing() {
        let c = ConstantPricing::new(7.0).unwrap();
        assert_eq!(c.price(x(0.1)), 7.0);
        assert_eq!(c.price(x(1000.0)), 7.0);
        assert!(ConstantPricing::new(-1.0).is_err());
        assert!(ConstantPricing::new(f64::INFINITY).is_err());
    }

    #[test]
    fn linear_pricing_and_fit() {
        let l = LinearPricing::new(2.0, 1.0).unwrap();
        assert_eq!(l.price(x(3.0)), 7.0);
        assert!(LinearPricing::new(-1.0, 0.0).is_err());
        assert!(LinearPricing::new(1.0, -0.1).is_err());

        let fit = LinearPricing::through(1.0, 10.0, 100.0, 100.0).unwrap();
        assert!((fit.price(x(1.0)) - 10.0).abs() < 1e-9);
        assert!((fit.price(x(100.0)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn linear_through_clamps_negative_intercept() {
        // Steep line would have negative intercept; clamp to 0 keeps it
        // subadditive at the cost of slightly higher prices at low x.
        let fit = LinearPricing::through(10.0, 1.0, 20.0, 100.0).unwrap();
        assert!(fit.intercept() >= 0.0);
        assert!(fit.price(x(0.001)) >= 0.0);
    }

    #[test]
    fn prices_batch_helper() {
        let c = ConstantPricing::new(2.0).unwrap();
        let xs = vec![x(1.0), x(2.0)];
        assert_eq!(c.prices(&xs), vec![2.0, 2.0]);
    }

    #[test]
    fn single_point_piecewise() {
        let p = PiecewiseLinearPricing::new(vec![(2.0, 8.0)]).unwrap();
        assert_eq!(p.price(x(1.0)), 4.0); // through origin
        assert_eq!(p.price(x(2.0)), 8.0);
        assert_eq!(p.price(x(5.0)), 8.0); // constant tail
    }
}
