//! Empirical verifiers for the mechanism restrictions of §3.2.
//!
//! Any randomized mechanism `K` the broker deploys must be (1) **unbiased**
//! and (2) **error-monotone** in δ. These checks quantify both properties by
//! Monte Carlo so that new mechanisms (or new error functions) can be
//! validated before they are offered for sale — the MBP analogue of an
//! admission test for market instruments.

use crate::mechanism::RandomizedMechanism;
use crate::{Ncp, Result};
use nimbus_ml::LinearModel;
use nimbus_randkit::{NimbusRng, RunningStats};

/// Result of an unbiasedness check.
#[derive(Debug, Clone)]
pub struct UnbiasednessReport {
    /// Infinity norm of the empirical bias `‖mean(h^δ) − h*‖∞`.
    pub bias_inf_norm: f64,
    /// Largest per-coordinate standard error; the bias should be a small
    /// multiple of this for an unbiased mechanism.
    pub max_std_error: f64,
    /// Samples drawn.
    pub samples: usize,
}

impl UnbiasednessReport {
    /// Heuristic verdict: bias within `k` standard errors.
    pub fn is_unbiased_within(&self, k: f64) -> bool {
        self.bias_inf_norm <= k * self.max_std_error.max(1e-12)
    }
}

/// Estimates the empirical bias of `mechanism` at one NCP.
pub fn check_unbiased<M: RandomizedMechanism + ?Sized>(
    mechanism: &M,
    optimal: &LinearModel,
    ncp: Ncp,
    samples: usize,
    rng: &mut NimbusRng,
) -> Result<UnbiasednessReport> {
    let d = optimal.dim();
    let mut stats: Vec<RunningStats> = vec![RunningStats::new(); d];
    for _ in 0..samples {
        let noisy = mechanism.perturb(optimal, ncp, rng)?;
        for (s, w) in stats.iter_mut().zip(noisy.weights().as_slice()) {
            s.push(*w);
        }
    }
    let mut bias: f64 = 0.0;
    let mut max_se: f64 = 0.0;
    for (s, target) in stats.iter().zip(optimal.weights().as_slice()) {
        bias = bias.max((s.mean() - target).abs());
        max_se = max_se.max(s.standard_error());
    }
    Ok(UnbiasednessReport {
        bias_inf_norm: bias,
        max_std_error: max_se,
        samples,
    })
}

/// Result of a monotonicity check over a δ grid.
#[derive(Debug, Clone)]
pub struct MonotonicityReport {
    /// `(δ, mean error)` pairs in increasing-δ order.
    pub curve: Vec<(f64, f64)>,
    /// Largest downward step `max(err_i − err_{i+1}, 0)` between adjacent
    /// grid points — 0 for a perfectly monotone empirical curve.
    pub worst_violation: f64,
}

impl MonotonicityReport {
    /// Verdict with an absolute tolerance for Monte-Carlo jitter.
    pub fn is_monotone_within(&self, tol: f64) -> bool {
        self.worst_violation <= tol
    }
}

/// Estimates `E[ε(h^δ)]` on a δ grid and measures monotonicity violations.
pub fn check_error_monotonicity<M, F>(
    mechanism: &M,
    optimal: &LinearModel,
    mut evaluate: F,
    deltas: &[Ncp],
    samples: usize,
    rng: &mut NimbusRng,
) -> Result<MonotonicityReport>
where
    M: RandomizedMechanism + ?Sized,
    F: FnMut(&LinearModel) -> Result<f64>,
{
    let mut grid: Vec<Ncp> = deltas.to_vec();
    grid.sort_by(|a, b| a.delta().partial_cmp(&b.delta()).expect("finite"));
    let mut curve = Vec::with_capacity(grid.len());
    for ncp in &grid {
        let mut stats = RunningStats::new();
        for _ in 0..samples {
            let noisy = mechanism.perturb(optimal, *ncp, rng)?;
            stats.push(evaluate(&noisy)?);
        }
        curve.push((ncp.delta(), stats.mean()));
    }
    let mut worst: f64 = 0.0;
    for w in curve.windows(2) {
        worst = worst.max(w[0].1 - w[1].1);
    }
    Ok(MonotonicityReport {
        curve,
        worst_violation: worst,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{GaussianMechanism, LaplaceMechanism, UniformMechanism};
    use crate::square_loss::square_loss;
    use nimbus_linalg::Vector;
    use nimbus_randkit::seeded_rng;

    fn model() -> LinearModel {
        LinearModel::new(Vector::from_vec(vec![2.0, -1.0, 0.5]))
    }

    #[test]
    fn all_additive_mechanisms_pass_unbiasedness() {
        let m = model();
        let ncp = Ncp::new(1.0).unwrap();
        for mech in [
            &GaussianMechanism as &dyn RandomizedMechanism,
            &LaplaceMechanism,
            &UniformMechanism,
        ] {
            let mut rng = seeded_rng(11);
            let report = check_unbiased(mech, &m, ncp, 20_000, &mut rng).unwrap();
            assert!(
                report.is_unbiased_within(4.0),
                "{}: bias {} vs se {}",
                mech.name(),
                report.bias_inf_norm,
                report.max_std_error
            );
        }
    }

    #[test]
    fn biased_mechanism_is_caught() {
        // A deliberately biased mechanism: adds +1 to every coordinate.
        struct Biased;
        impl RandomizedMechanism for Biased {
            fn name(&self) -> &'static str {
                "biased"
            }
            fn perturb(
                &self,
                optimal: &LinearModel,
                _ncp: Ncp,
                _rng: &mut NimbusRng,
            ) -> Result<LinearModel> {
                let ones = Vector::filled(optimal.dim(), 1.0);
                optimal.perturbed(&ones).map_err(Into::into)
            }
            fn total_variance(&self, _ncp: Ncp, _d: usize) -> f64 {
                0.0
            }
        }
        let mut rng = seeded_rng(1);
        let report =
            check_unbiased(&Biased, &model(), Ncp::new(1.0).unwrap(), 500, &mut rng).unwrap();
        assert!(!report.is_unbiased_within(4.0));
        assert!(report.bias_inf_norm > 0.9);
    }

    #[test]
    fn square_loss_error_is_monotone_in_delta() {
        let m = model();
        let grid: Vec<Ncp> = [0.25, 0.5, 1.0, 2.0, 4.0]
            .iter()
            .map(|&d| Ncp::new(d).unwrap())
            .collect();
        let mut rng = seeded_rng(5);
        let opt = m.clone();
        let report = check_error_monotonicity(
            &GaussianMechanism,
            &m,
            |h| square_loss(h, &opt),
            &grid,
            4_000,
            &mut rng,
        )
        .unwrap();
        assert!(
            report.is_monotone_within(0.05),
            "worst violation {}",
            report.worst_violation
        );
        assert_eq!(report.curve.len(), 5);
        // The curve should roughly track δ itself (Lemma 3).
        for (delta, err) in &report.curve {
            assert!((err - delta).abs() < 0.2 * delta.max(1.0));
        }
    }

    #[test]
    fn monotonicity_check_sorts_grid() {
        let m = model();
        let grid: Vec<Ncp> = [4.0, 1.0].iter().map(|&d| Ncp::new(d).unwrap()).collect();
        let mut rng = seeded_rng(3);
        let opt = m.clone();
        let report = check_error_monotonicity(
            &GaussianMechanism,
            &m,
            |h| square_loss(h, &opt),
            &grid,
            500,
            &mut rng,
        )
        .unwrap();
        assert!(report.curve[0].0 < report.curve[1].0);
    }
}
