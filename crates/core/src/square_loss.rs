//! The square loss `ε_s` and the Lemma 3 identity.
//!
//! Section 4.1 analyzes the Gaussian mechanism under the square loss
//!
//! ```text
//! ε_s(h, D) = ‖h − h*_λ(D)‖²
//! ```
//!
//! for which `E[ε_s(h^δ, D)] = δ` exactly (Lemma 3) — the NCP *is* the
//! expected error. This module provides the loss itself and helpers for the
//! identity, which anchor the analytic error-inverse `φ(e) = e` used by the
//! pricing layer when `ε = ε_s`.

use crate::{Ncp, Result};
use nimbus_ml::LinearModel;

/// Computes `ε_s(h, D) = ‖h − h*‖²` given the released instance and the
/// optimal instance.
pub fn square_loss(instance: &LinearModel, optimal: &LinearModel) -> Result<f64> {
    instance.distance_squared(optimal).map_err(Into::into)
}

/// Lemma 3: the exact expected square loss of any mechanism that injects
/// total variance `δ` — i.e. simply `δ`. Centralizing the identity keeps
/// call sites self-documenting.
pub fn expected_square_loss(ncp: Ncp) -> f64 {
    ncp.delta()
}

/// The analytic error-inverse `φ` for the square loss (Theorem 6 notation):
/// the `δ` that produces a given expected square loss is the loss itself.
/// Returns an error for non-positive targets since `δ` must be positive.
pub fn square_loss_error_inverse(expected_error: f64) -> Result<Ncp> {
    Ncp::new(expected_error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{GaussianMechanism, RandomizedMechanism};
    use nimbus_linalg::Vector;
    use nimbus_randkit::seeded_rng;

    #[test]
    fn square_loss_is_squared_distance() {
        let a = LinearModel::new(Vector::from_vec(vec![1.0, 2.0]));
        let b = LinearModel::new(Vector::from_vec(vec![4.0, 6.0]));
        assert_eq!(square_loss(&a, &b).unwrap(), 25.0);
        assert_eq!(square_loss(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn lemma3_monte_carlo() {
        // E[ε_s(h^δ)] = δ for the Gaussian mechanism, any d.
        for (d, delta) in [(4usize, 0.5), (16, 2.0), (64, 10.0)] {
            let optimal = LinearModel::new(Vector::from_vec(
                (0..d).map(|i| (i as f64 * 0.31).sin()).collect(),
            ));
            let ncp = Ncp::new(delta).unwrap();
            let mut rng = seeded_rng(d as u64);
            let reps = 30_000;
            let mut total = 0.0;
            for _ in 0..reps {
                let noisy = GaussianMechanism.perturb(&optimal, ncp, &mut rng).unwrap();
                total += square_loss(&noisy, &optimal).unwrap();
            }
            let mean = total / reps as f64;
            assert!(
                (mean - delta).abs() < 0.03 * delta.max(1.0),
                "d={d}, δ={delta}: mean {mean}"
            );
            assert_eq!(expected_square_loss(ncp), delta);
        }
    }

    #[test]
    fn error_inverse_is_identity() {
        let ncp = square_loss_error_inverse(3.5).unwrap();
        assert_eq!(ncp.delta(), 3.5);
        assert!(square_loss_error_inverse(0.0).is_err());
        assert!(square_loss_error_inverse(-1.0).is_err());
    }

    #[test]
    fn dimension_mismatch_propagates() {
        let a = LinearModel::zeros(2);
        let b = LinearModel::zeros(3);
        assert!(square_loss(&a, &b).is_err());
    }
}
