//! Property tests for the φ error-inverse layer (Theorem 6).
//!
//! An arbitrage-free price curve posted over the inverse NCP stays monotone
//! and subadditive when re-examined on the φ-mapped grid of a Monte-Carlo
//! error curve — including the non-convex losses (logistic, hinge, 0/1)
//! whose curves are only monotone after isotonic smoothing. Also checks
//! that curve estimation is bitwise-deterministic in the seed, regardless
//! of how many threads the estimator fans out over.

use nimbus_core::arbitrage::check_arbitrage_free_after_phi;
use nimbus_core::{CurveProvider, ErrorCurve, GaussianMechanism, Ncp, PiecewiseLinearPricing};
use nimbus_data::{Dataset, Task};
use nimbus_linalg::{Matrix, Vector};
use nimbus_ml::{ErrorMetric, LinearModel, LossMetric};
use proptest::prelude::*;

/// A small, fixed, linearly-separable-ish binary classification set: the
/// properties quantify over seeds and pricing shapes, not over data.
fn tiny_classification() -> Dataset {
    let rows: Vec<Vec<f64>> = (0..16)
        .map(|i| {
            let t = i as f64 * 0.4;
            vec![t.sin() + if i % 2 == 0 { 0.8 } else { -0.8 }, t.cos() * 0.5]
        })
        .collect();
    let labels: Vec<f64> = (0..16)
        .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
        .collect();
    Dataset::new(
        Matrix::from_rows(&rows).expect("rectangular"),
        Vector::from_vec(labels),
        Task::BinaryClassification,
    )
    .expect("valid dataset")
}

fn optimal_model() -> LinearModel {
    LinearModel::new(Vector::from_vec(vec![1.4, -0.3]))
}

fn metric_for(hinge: bool) -> Box<dyn ErrorMetric> {
    let data = tiny_classification();
    if hinge {
        Box::new(LossMetric::hinge(data, 1e-3).expect("valid hinge margin"))
    } else {
        Box::new(LossMetric::logistic(data))
    }
}

fn delta_grid() -> Vec<Ncp> {
    (1..=8)
        .map(|i| Ncp::new(0.125 * i as f64).expect("positive"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    // Theorem 6: if the posted curve p(x) is monotone + subadditive, then
    // the induced error-domain pricing p(φ(e)) admits no arbitrage. We
    // verify the numerical contrapositive: mapping a Monte-Carlo curve's
    // error levels back through φ and re-running the Theorem 5 check on
    // the collapsed grid still passes, for concave power pricings s·x^γ.
    #[test]
    fn phi_mapped_concave_prices_stay_arbitrage_free(
        scale in 5.0..200.0f64,
        gamma in 0.1..1.0f64,
        seed in 0u64..u64::MAX,
        hinge in 0u32..2,
    ) {
        let metric = metric_for(hinge == 1);
        let provider = CurveProvider::new(60, seed);
        let curve = provider
            .curve_for(metric.as_ref(), &GaussianMechanism, &optimal_model(), &delta_grid())
            .unwrap();
        let points: Vec<(f64, f64)> = curve
            .points()
            .iter()
            .map(|p| (p.inverse, scale * p.inverse.powf(gamma)))
            .collect();
        let pricing = PiecewiseLinearPricing::new(points).unwrap();
        let report = check_arbitrage_free_after_phi(&pricing, &curve, 1e-6).unwrap();
        prop_assert!(
            report.is_arbitrage_free(),
            "violations: {:?}",
            report
        );
    }

    // A convex pricing (superlinear unit price) must be caught by the same
    // post-φ re-check: the guard is not vacuous.
    #[test]
    fn phi_recheck_flags_convex_prices(
        scale in 1.0..50.0f64,
        seed in 0u64..u64::MAX,
    ) {
        let metric = metric_for(false);
        let provider = CurveProvider::new(60, seed);
        let curve = provider
            .curve_for(metric.as_ref(), &GaussianMechanism, &optimal_model(), &delta_grid())
            .unwrap();
        let points: Vec<(f64, f64)> = curve
            .points()
            .iter()
            .map(|p| (p.inverse, scale * p.inverse * p.inverse))
            .collect();
        let pricing = PiecewiseLinearPricing::new(points).unwrap();
        let report = check_arbitrage_free_after_phi(&pricing, &curve, 1e-6).unwrap();
        prop_assert!(!report.is_arbitrage_free());
    }

    // The parallel estimator must be bitwise-identical to the sequential
    // one for every seed, sample count, and thread count: the per-δ seed
    // streams make scheduling irrelevant.
    #[test]
    fn estimation_is_bitwise_deterministic_across_threads(
        seed in 0u64..u64::MAX,
        samples in 20usize..80,
        threads in 2usize..9,
        hinge in 0u32..2,
    ) {
        let metric = metric_for(hinge == 1);
        let model = optimal_model();
        let deltas = delta_grid();
        let eval = |h: &LinearModel| metric.evaluate(h).map_err(Into::into);
        let sequential =
            ErrorCurve::estimate(&GaussianMechanism, &model, eval, &deltas, samples, seed).unwrap();
        let parallel = ErrorCurve::estimate_parallel(
            &GaussianMechanism,
            &model,
            eval,
            &deltas,
            samples,
            seed,
            Some(threads),
        )
        .unwrap();
        prop_assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.points().iter().zip(parallel.points()) {
            prop_assert_eq!(s.delta.to_bits(), p.delta.to_bits());
            prop_assert_eq!(s.mean_error.to_bits(), p.mean_error.to_bits());
            prop_assert_eq!(s.std_error.to_bits(), p.std_error.to_bits());
            prop_assert_eq!(s.smoothed_error.to_bits(), p.smoothed_error.to_bits());
        }
    }
}
