//! Property-based tests for the MBP core: isotonic projection laws,
//! pricing-function invariants, error-curve inverse consistency.

use nimbus_core::isotonic::{
    is_non_decreasing, is_non_increasing, isotonic_decreasing, isotonic_increasing,
};
use nimbus_core::pricing::{LinearPricing, PiecewiseLinearPricing, PricingFunction};
use nimbus_core::{ErrorCurve, InverseNcp, Ncp};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pav_output_is_monotone_and_idempotent(
        values in prop::collection::vec(-100.0..100.0f64, 1..60),
        weights in prop::collection::vec(0.1..10.0f64, 60),
    ) {
        let w = &weights[..values.len()];
        let out = isotonic_increasing(&values, w);
        prop_assert!(is_non_decreasing(&out, 1e-9));
        let again = isotonic_increasing(&out, w);
        for (a, b) in out.iter().zip(&again) {
            prop_assert!((a - b).abs() < 1e-9, "projection must be idempotent");
        }
        // Weighted mean is preserved.
        let mean_in: f64 = values.iter().zip(w).map(|(v, wi)| v * wi).sum();
        let mean_out: f64 = out.iter().zip(w).map(|(v, wi)| v * wi).sum();
        prop_assert!((mean_in - mean_out).abs() < 1e-6 * (1.0 + mean_in.abs()));
    }

    #[test]
    fn pav_never_moves_values_past_range(
        values in prop::collection::vec(-50.0..50.0f64, 1..40),
    ) {
        let w = vec![1.0; values.len()];
        let out = isotonic_increasing(&values, &w);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in &out {
            prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
        }
    }

    #[test]
    fn decreasing_pav_mirrors_increasing(
        values in prop::collection::vec(-50.0..50.0f64, 1..40),
    ) {
        let w = vec![1.0; values.len()];
        let dec = isotonic_decreasing(&values, &w);
        prop_assert!(is_non_increasing(&dec, 1e-9));
        let neg: Vec<f64> = values.iter().map(|v| -v).collect();
        let inc_of_neg = isotonic_increasing(&neg, &w);
        for (a, b) in dec.iter().zip(&inc_of_neg) {
            prop_assert!((a + b).abs() < 1e-9);
        }
    }

    #[test]
    fn piecewise_linear_pricing_is_continuous_and_bounded(
        points in prop::collection::vec((0.1..100.0f64, 0.0..1000.0f64), 1..20),
        query in 0.01..200.0f64,
    ) {
        // Dedup x coordinates to satisfy the constructor.
        let mut pts = points;
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-6);
        let max_price = pts.iter().map(|p| p.1).fold(0.0, f64::max);
        let pricing = PiecewiseLinearPricing::new(pts).unwrap();
        let p = pricing.price(InverseNcp::new(query).unwrap());
        prop_assert!(p >= 0.0);
        prop_assert!(p <= max_price + 1e-9);
        // Continuity: nearby queries give nearby prices.
        let p2 = pricing.price(InverseNcp::new(query * (1.0 + 1e-9)).unwrap());
        prop_assert!((p - p2).abs() < 1e-3 * (1.0 + p.abs()));
    }

    #[test]
    fn linear_pricing_is_subadditive_pointwise(
        slope in 0.0..50.0f64,
        intercept in 0.0..50.0f64,
        x in 0.1..100.0f64,
        y in 0.1..100.0f64,
    ) {
        let l = LinearPricing::new(slope, intercept).unwrap();
        let px = l.price(InverseNcp::new(x).unwrap());
        let py = l.price(InverseNcp::new(y).unwrap());
        let pxy = l.price(InverseNcp::new(x + y).unwrap());
        prop_assert!(pxy <= px + py + 1e-9);
    }

    #[test]
    fn error_curve_inverse_is_right_inverse(
        deltas in prop::collection::vec(0.01..100.0f64, 2..15),
    ) {
        let mut ds = deltas;
        ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ds.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        if ds.len() < 2 {
            return Ok(());
        }
        let ncps: Vec<Ncp> = ds.iter().map(|&d| Ncp::new(d).unwrap()).collect();
        let curve = ErrorCurve::analytic_square_loss(&ncps).unwrap();
        // For any error level within range, expected_error_at(error_inverse(e)) = e.
        let lo = ds[0];
        let hi = *ds.last().unwrap();
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            // Clamp: lo + (hi-lo)·1.0 can exceed hi by one ulp.
            let target = (lo + (hi - lo) * frac).clamp(lo, hi);
            let ncp = curve.error_inverse(target).unwrap();
            let back = curve.expected_error_at(ncp);
            prop_assert!((back - target).abs() < 1e-9 * (1.0 + target));
        }
    }

    #[test]
    fn ncp_inverse_is_involutive(delta in 1e-6..1e6f64) {
        let ncp = Ncp::new(delta).unwrap();
        let twice = ncp.inverse().ncp();
        prop_assert!((twice.delta() - delta).abs() < 1e-9 * delta);
    }
}
