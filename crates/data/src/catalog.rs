//! The six evaluation datasets of the paper (Table 3).
//!
//! | Task           | Dataset    | n₁ (train) | n₂ (test) | d  |
//! |----------------|------------|-----------:|----------:|---:|
//! | Regression     | Simulated1 |  7,500,000 | 2,500,000 | 20 |
//! | Regression     | YearMSD    |    386,509 |   128,836 | 90 |
//! | Regression     | CASP       |     34,298 |    11,433 |  9 |
//! | Classification | Simulated2 |  7,500,000 | 2,500,000 | 20 |
//! | Classification | CovType    |    435,759 |   145,253 | 54 |
//! | Classification | SUSY       |  3,750,000 | 1,250,000 | 18 |
//!
//! The two simulated datasets are generated exactly as §6.1 describes. The
//! four UCI datasets are replaced by *shape-matched stand-ins* (see
//! DESIGN.md): planted-hyperplane generators with the same task, `n` and
//! `d`, plus target noise / label noise chosen so that the optimal model's
//! test error lands in the same numeric regime as the corresponding Figure 6
//! panel. Figure 6 demonstrates monotonicity of the expected error in the
//! inverse noise control parameter — a property of the mechanism and loss,
//! not of the original UCI bytes — so the stand-ins exercise the identical
//! code path.
//!
//! Full Table 3 sizes are expensive to materialize on a laptop; the
//! [`DatasetSpec::scaled`] constructor shrinks `n` while preserving `d`, the
//! train/test ratio and the noise structure, which is how the experiment
//! binaries run by default (`--full` restores paper sizes).

use crate::synthetic::{
    generate_classification, generate_regression, ClassificationSpec, RegressionSpec,
};
use crate::{train_test_split, Result, Task, TrainTest};
use nimbus_linalg::Vector;
use nimbus_randkit::seeded_rng;

/// Identifier for each dataset used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// §6.1 simulated regression data (noiseless planted hyperplane).
    Simulated1,
    /// Year prediction from audio features (UCI YearMSD) — stand-in.
    YearMsd,
    /// Protein structure RMSD prediction (UCI CASP) — stand-in.
    Casp,
    /// §6.1 simulated classification data (5% label flips).
    Simulated2,
    /// Forest cover type (UCI CovType, binarized) — stand-in.
    CovType,
    /// SUSY particle detection (UCI SUSY) — stand-in.
    Susy,
}

impl PaperDataset {
    /// All six datasets in Table 3 order.
    pub const ALL: [PaperDataset; 6] = [
        PaperDataset::Simulated1,
        PaperDataset::YearMsd,
        PaperDataset::Casp,
        PaperDataset::Simulated2,
        PaperDataset::CovType,
        PaperDataset::Susy,
    ];

    /// Human-readable dataset name as printed in Table 3.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Simulated1 => "Simulated1",
            PaperDataset::YearMsd => "YearMSD",
            PaperDataset::Casp => "CASP",
            PaperDataset::Simulated2 => "Simulated2",
            PaperDataset::CovType => "CovType",
            PaperDataset::Susy => "SUSY",
        }
    }

    /// Task type of the dataset.
    pub fn task(&self) -> Task {
        match self {
            PaperDataset::Simulated1 | PaperDataset::YearMsd | PaperDataset::Casp => {
                Task::Regression
            }
            _ => Task::BinaryClassification,
        }
    }

    /// `(n_train, n_test, d)` exactly as reported in Table 3.
    pub fn paper_shape(&self) -> (usize, usize, usize) {
        match self {
            PaperDataset::Simulated1 => (7_500_000, 2_500_000, 20),
            PaperDataset::YearMsd => (386_509, 128_836, 90),
            PaperDataset::Casp => (34_298, 11_433, 9),
            PaperDataset::Simulated2 => (7_500_000, 2_500_000, 20),
            PaperDataset::CovType => (435_759, 145_253, 54),
            PaperDataset::Susy => (3_750_000, 1_250_000, 18),
        }
    }

    /// The full-size specification matching Table 3.
    pub fn spec(&self) -> DatasetSpec {
        let (n_train, n_test, d) = self.paper_shape();
        DatasetSpec {
            dataset: *self,
            n_train,
            n_test,
            d,
        }
    }
}

/// A concrete (possibly scaled-down) instantiation plan for a paper dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Which dataset this spec instantiates.
    pub dataset: PaperDataset,
    /// Number of training examples to generate.
    pub n_train: usize,
    /// Number of test examples to generate.
    pub n_test: usize,
    /// Number of features (always the paper's d).
    pub d: usize,
}

impl DatasetSpec {
    /// Scales the example counts down to at most `max_total` rows while
    /// preserving `d` and the 75/25 train/test ratio. Row counts never drop
    /// below 40 so that splits remain meaningful.
    pub fn scaled(dataset: PaperDataset, max_total: usize) -> DatasetSpec {
        let (n_train, n_test, d) = dataset.paper_shape();
        let total = n_train + n_test;
        let target = max_total.max(40).min(total);
        let ratio = n_train as f64 / total as f64;
        let st = ((target as f64 * ratio).round() as usize).max(20);
        let se = (target - st.min(target)).max(20);
        DatasetSpec {
            dataset,
            n_train: st,
            n_test: se,
            d,
        }
    }

    /// Total rows this spec will generate.
    pub fn total(&self) -> usize {
        self.n_train + self.n_test
    }

    /// Materializes the dataset as a train/test pair. Returns the split plus
    /// the planted ground-truth hyperplane (useful for diagnostics).
    ///
    /// Per-dataset noise parameters are fixed constants chosen so the
    /// optimal model's test error sits in the same regime as the matching
    /// Figure 6 panel (e.g. YearMSD square loss around 10²; CovType 0/1
    /// error near 0.1).
    pub fn materialize(&self, seed: u64) -> Result<(TrainTest, Vector)> {
        let n = self.total();
        let (dataset, hyperplane) = match self.dataset {
            PaperDataset::Simulated1 => {
                generate_regression(&RegressionSpec::simulated1(n, self.d), seed)?
            }
            PaperDataset::YearMsd => {
                // Audio-feature year regression: heavy irreducible noise
                // (base MSE ≈ 100) and wide-scale audio features so model
                // noise of variance δ inflates the test MSE by ≈ 40·δ —
                // reproducing the visible 160 → 100 drop of the paper's
                // YearMSD panel.
                let spec = RegressionSpec {
                    n,
                    d: self.d,
                    target_noise: 10.0,
                    target_scale: 3.0,
                    feature_scale: 6.3,
                };
                generate_regression(&spec, seed)?
            }
            PaperDataset::Casp => {
                // Protein RMSD regression: irreducible MSE ≈ 100 with
                // physical-unit features large enough that δ = 1 noise
                // roughly half-again the base error (paper panel: square
                // loss near 10², visibly decaying).
                let spec = RegressionSpec {
                    n,
                    d: self.d,
                    target_noise: 10.0,
                    target_scale: 2.0,
                    feature_scale: 7.0,
                };
                generate_regression(&spec, seed)?
            }
            PaperDataset::Simulated2 => {
                generate_classification(&ClassificationSpec::simulated2(n, self.d), seed)?
            }
            PaperDataset::CovType => {
                // Binarized forest cover: ~8% Bayes error in the paper's 0/1
                // panel.
                let spec = ClassificationSpec {
                    n,
                    d: self.d,
                    positive_fidelity: 0.92,
                };
                generate_classification(&spec, seed)?
            }
            PaperDataset::Susy => {
                // SUSY detection is the hardest task in Fig. 6 (0/1 error
                // ~0.22 at best).
                let spec = ClassificationSpec {
                    n,
                    d: self.d,
                    positive_fidelity: 0.78,
                };
                generate_classification(&spec, seed)?
            }
        };
        let frac = self.n_train as f64 / self.total() as f64;
        let mut rng = seeded_rng(seed ^ 0x0005_7117_u64);
        let split = train_test_split(&dataset, frac, &mut rng)?;
        Ok((split, hyperplane))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shapes_match_paper() {
        assert_eq!(
            PaperDataset::Simulated1.paper_shape(),
            (7_500_000, 2_500_000, 20)
        );
        assert_eq!(PaperDataset::YearMsd.paper_shape(), (386_509, 128_836, 90));
        assert_eq!(PaperDataset::Casp.paper_shape(), (34_298, 11_433, 9));
        assert_eq!(PaperDataset::CovType.paper_shape(), (435_759, 145_253, 54));
        assert_eq!(PaperDataset::Susy.paper_shape(), (3_750_000, 1_250_000, 18));
    }

    #[test]
    fn tasks_match_table3() {
        assert_eq!(PaperDataset::Simulated1.task(), Task::Regression);
        assert_eq!(PaperDataset::YearMsd.task(), Task::Regression);
        assert_eq!(PaperDataset::Casp.task(), Task::Regression);
        assert_eq!(PaperDataset::Simulated2.task(), Task::BinaryClassification);
        assert_eq!(PaperDataset::CovType.task(), Task::BinaryClassification);
        assert_eq!(PaperDataset::Susy.task(), Task::BinaryClassification);
    }

    #[test]
    fn scaled_preserves_d_and_ratio() {
        let spec = DatasetSpec::scaled(PaperDataset::Simulated1, 10_000);
        assert_eq!(spec.d, 20);
        assert!(spec.total() <= 10_000);
        let ratio = spec.n_train as f64 / spec.total() as f64;
        assert!((ratio - 0.75).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn scaled_never_exceeds_paper_size() {
        let spec = DatasetSpec::scaled(PaperDataset::Casp, usize::MAX / 2);
        assert!(spec.total() <= 34_298 + 11_433);
    }

    #[test]
    fn materialize_each_dataset_small() {
        for ds in PaperDataset::ALL {
            let spec = DatasetSpec::scaled(ds, 400);
            let (tt, w) = spec.materialize(11).unwrap();
            assert_eq!(tt.train.num_features(), spec.d, "{}", ds.name());
            assert_eq!(tt.train.task(), ds.task());
            assert_eq!(w.len(), spec.d);
            assert_eq!(tt.total_len(), spec.total());
        }
    }

    #[test]
    fn materialize_is_deterministic() {
        let spec = DatasetSpec::scaled(PaperDataset::CovType, 300);
        let (a, _) = spec.materialize(5).unwrap();
        let (b, _) = spec.materialize(5).unwrap();
        assert_eq!(a.train.features().as_slice(), b.train.features().as_slice());
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = PaperDataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "Simulated1",
                "YearMSD",
                "CASP",
                "Simulated2",
                "CovType",
                "SUSY"
            ]
        );
    }
}
