//! Minimal CSV I/O for numeric tables.
//!
//! Two callers: users loading their own relational data into a [`Dataset`],
//! and the experiment harness persisting figure/table series under
//! `results/`. The format is deliberately narrow — comma-separated `f64`
//! columns with one optional header row — which keeps the parser small,
//! dependency-free and easy to audit.

use crate::{DataError, Dataset, Result, Task};
use nimbus_linalg::{Matrix, Vector};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// A parsed numeric table.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericTable {
    /// Column names; synthesized as `c0..c{k-1}` when the file has no header.
    pub columns: Vec<String>,
    /// Row-major cell values, one `Vec` per row.
    pub rows: Vec<Vec<f64>>,
}

impl NumericTable {
    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }
}

/// Reads a numeric table from any reader. When `has_header` is true the
/// first line names the columns; otherwise names are synthesized.
pub fn read_table<R: Read>(reader: R, has_header: bool) -> Result<NumericTable> {
    let buf = BufReader::new(reader);
    let mut columns: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut expected_cols: Option<usize> = None;

    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if idx == 0 && has_header {
            columns = fields.iter().map(|s| s.to_string()).collect();
            expected_cols = Some(columns.len());
            continue;
        }
        if let Some(k) = expected_cols {
            if fields.len() != k {
                return Err(DataError::Csv {
                    line: line_no,
                    message: format!("expected {k} fields, found {}", fields.len()),
                });
            }
        } else {
            expected_cols = Some(fields.len());
        }
        let mut row = Vec::with_capacity(fields.len());
        for f in &fields {
            let v: f64 = f.parse().map_err(|_| DataError::Csv {
                line: line_no,
                message: format!("cannot parse {f:?} as a number"),
            })?;
            row.push(v);
        }
        rows.push(row);
    }

    if columns.is_empty() {
        let k = expected_cols.unwrap_or(0);
        columns = (0..k).map(|i| format!("c{i}")).collect();
    }
    Ok(NumericTable { columns, rows })
}

/// Reads a numeric table from a file path.
pub fn read_table_from_path<P: AsRef<Path>>(path: P, has_header: bool) -> Result<NumericTable> {
    let f = std::fs::File::open(path)?;
    read_table(f, has_header)
}

/// Writes a numeric table (header plus rows) to any writer.
pub fn write_table<W: Write>(writer: &mut W, columns: &[&str], rows: &[Vec<f64>]) -> Result<()> {
    writeln!(writer, "{}", columns.join(","))?;
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(writer, "{}", line.join(","))?;
    }
    Ok(())
}

/// Writes a numeric table to a file path, creating parent directories.
pub fn write_table_to_path<P: AsRef<Path>>(
    path: P,
    columns: &[&str],
    rows: &[Vec<f64>],
) -> Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    write_table(&mut f, columns, rows)
}

/// Converts a table into a [`Dataset`], taking the column named
/// `target_column` as the label and everything else as features.
pub fn table_to_dataset(table: &NumericTable, target_column: &str, task: Task) -> Result<Dataset> {
    let target_idx = table
        .columns
        .iter()
        .position(|c| c == target_column)
        .ok_or_else(|| DataError::Csv {
            line: 1,
            message: format!("no column named {target_column:?}"),
        })?;
    let d = table.num_cols().saturating_sub(1);
    let mut features = Vec::with_capacity(table.num_rows() * d);
    let mut targets = Vec::with_capacity(table.num_rows());
    for row in &table.rows {
        for (j, v) in row.iter().enumerate() {
            if j != target_idx {
                features.push(*v);
            }
        }
        targets.push(row[target_idx]);
    }
    let x = Matrix::from_row_major(table.num_rows(), d, features)?;
    Dataset::new(x, Vector::from_vec(targets), task)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_header() {
        let mut buf = Vec::new();
        write_table(&mut buf, &["x", "y"], &[vec![1.0, 2.0], vec![3.5, -4.0]]).unwrap();
        let t = read_table(&buf[..], true).unwrap();
        assert_eq!(t.columns, vec!["x", "y"]);
        assert_eq!(t.rows, vec![vec![1.0, 2.0], vec![3.5, -4.0]]);
    }

    #[test]
    fn headerless_synthesizes_names() {
        let data = b"1,2,3\n4,5,6\n";
        let t = read_table(&data[..], false).unwrap();
        assert_eq!(t.columns, vec!["c0", "c1", "c2"]);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let data = b"a,b\n1,2\n\n  \n3,4\n";
        let t = read_table(&data[..], true).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn ragged_rows_are_rejected_with_line_number() {
        let data = b"a,b\n1,2\n3\n";
        match read_table(&data[..], true) {
            Err(DataError::Csv { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected CSV error, got {other:?}"),
        }
    }

    #[test]
    fn bad_number_is_rejected() {
        let data = b"1,apple\n";
        assert!(matches!(
            read_table(&data[..], false),
            Err(DataError::Csv { line: 1, .. })
        ));
    }

    #[test]
    fn whitespace_around_fields_is_tolerated() {
        let data = b" 1 , 2 \n";
        let t = read_table(&data[..], false).unwrap();
        assert_eq!(t.rows[0], vec![1.0, 2.0]);
    }

    #[test]
    fn table_to_dataset_extracts_target() {
        let data = b"f1,label,f2\n1,0,2\n3,1,4\n";
        let t = read_table(&data[..], true).unwrap();
        let d = table_to_dataset(&t, "label", Task::BinaryClassification).unwrap();
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.targets().as_slice(), &[0.0, 1.0]);
        assert_eq!(d.features().row(0), &[1.0, 2.0]);
    }

    #[test]
    fn missing_target_column_is_reported() {
        let data = b"a,b\n1,2\n";
        let t = read_table(&data[..], true).unwrap();
        assert!(table_to_dataset(&t, "nope", Task::Regression).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("nimbus_csv_test");
        let path = dir.join("t.csv");
        write_table_to_path(&path, &["v"], &[vec![42.0]]).unwrap();
        let t = read_table_from_path(&path, true).unwrap();
        assert_eq!(t.rows, vec![vec![42.0]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_input_gives_empty_table() {
        let t = read_table(&b""[..], false).unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_cols(), 0);
    }
}
