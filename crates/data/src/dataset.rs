//! The labeled-dataset container used across Nimbus.

use crate::{DataError, Result};
use nimbus_linalg::{Matrix, Vector};

/// Supervised task type, which determines valid targets and the error
/// functions the broker offers (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Real-valued target; least-squares style losses.
    Regression,
    /// Binary target encoded as `0.0` / `1.0`; logistic or hinge losses.
    /// Hinge-based trainers map labels to `±1` internally.
    BinaryClassification,
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Task::Regression => write!(f, "regression"),
            Task::BinaryClassification => write!(f, "classification"),
        }
    }
}

/// A dense labeled dataset: `n` examples of `d` features plus targets.
///
/// Rows are examples `z_i = (x_i, y_i)`, matching the paper's relational
/// setting where features and target are attributes of a single relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Matrix,
    targets: Vector,
    task: Task,
}

impl Dataset {
    /// Creates a dataset, validating shapes, finiteness and (for
    /// classification) that every target is `0.0` or `1.0`.
    pub fn new(features: Matrix, targets: Vector, task: Task) -> Result<Self> {
        if features.rows() != targets.len() {
            return Err(DataError::LengthMismatch {
                features: features.rows(),
                targets: targets.len(),
            });
        }
        for i in 0..features.rows() {
            if !features.row(i).iter().all(|v| v.is_finite()) || !targets[i].is_finite() {
                return Err(DataError::NonFinite { row: i });
            }
            if task == Task::BinaryClassification && targets[i] != 0.0 && targets[i] != 1.0 {
                return Err(DataError::InvalidTarget {
                    row: i,
                    value: targets[i],
                });
            }
        }
        Ok(Dataset {
            features,
            targets,
            task,
        })
    }

    /// Number of examples `n`.
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of features `d`.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// The task tag.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Feature matrix (rows are examples).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Target vector.
    pub fn targets(&self) -> &Vector {
        &self.targets
    }

    /// Feature row of example `i`.
    pub fn example(&self, i: usize) -> (&[f64], f64) {
        (self.features.row(i), self.targets[i])
    }

    /// Builds a new dataset containing the rows at `indices`, in order.
    /// Out-of-range indices are a programming error and panic.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let d = self.num_features();
        let mut data = Vec::with_capacity(indices.len() * d);
        let mut y = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.features.row(i));
            y.push(self.targets[i]);
        }
        Dataset {
            features: Matrix::from_row_major(indices.len(), d, data)
                .expect("selection preserves row width"),
            targets: Vector::from_vec(y),
            task: self.task,
        }
    }

    /// Fraction of positive labels; `None` for regression datasets.
    pub fn positive_rate(&self) -> Option<f64> {
        if self.task != Task::BinaryClassification || self.is_empty() {
            return None;
        }
        let pos = self
            .targets
            .as_slice()
            .iter()
            .filter(|&&y| y == 1.0)
            .count();
        Some(pos as f64 / self.len() as f64)
    }

    /// Mean of the target column (the "average" hypothesis of the paper's
    /// Example 1). Errors on an empty dataset.
    pub fn target_mean(&self) -> Result<f64> {
        self.targets.mean().ok_or(DataError::EmptyDataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let x = Matrix::from_row_major(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = Vector::from_vec(vec![1.0, 0.0, 1.0]);
        Dataset::new(x, y, Task::BinaryClassification).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.task(), Task::BinaryClassification);
        let (x0, y0) = d.example(0);
        assert_eq!(x0, &[1.0, 2.0]);
        assert_eq!(y0, 1.0);
    }

    #[test]
    fn rejects_length_mismatch() {
        let x = Matrix::zeros(2, 2);
        let y = Vector::zeros(3);
        assert!(matches!(
            Dataset::new(x, y, Task::Regression),
            Err(DataError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_classification_labels() {
        let x = Matrix::zeros(2, 1);
        let y = Vector::from_vec(vec![0.0, 2.0]);
        assert!(matches!(
            Dataset::new(x, y, Task::BinaryClassification),
            Err(DataError::InvalidTarget { row: 1, .. })
        ));
    }

    #[test]
    fn regression_allows_arbitrary_targets() {
        let x = Matrix::zeros(2, 1);
        let y = Vector::from_vec(vec![-3.5, 12.0]);
        assert!(Dataset::new(x, y, Task::Regression).is_ok());
    }

    #[test]
    fn rejects_non_finite() {
        let x = Matrix::from_row_major(1, 1, vec![f64::NAN]).unwrap();
        let y = Vector::from_vec(vec![0.0]);
        assert!(matches!(
            Dataset::new(x, y, Task::Regression),
            Err(DataError::NonFinite { row: 0 })
        ));
        let x = Matrix::zeros(1, 1);
        let y = Vector::from_vec(vec![f64::INFINITY]);
        assert!(Dataset::new(x, y, Task::Regression).is_err());
    }

    #[test]
    fn select_reorders_rows() {
        let d = tiny();
        let s = d.select(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.example(0).0, &[5.0, 6.0]);
        assert_eq!(s.example(1).0, &[1.0, 2.0]);
        assert_eq!(s.targets().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn positive_rate() {
        let d = tiny();
        assert!((d.positive_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        let x = Matrix::zeros(1, 1);
        let y = Vector::from_vec(vec![2.5]);
        let r = Dataset::new(x, y, Task::Regression).unwrap();
        assert!(r.positive_rate().is_none());
    }

    #[test]
    fn target_mean_and_empty() {
        let x = Matrix::zeros(2, 1);
        let y = Vector::from_vec(vec![2.0, 4.0]);
        let d = Dataset::new(x, y, Task::Regression).unwrap();
        assert_eq!(d.target_mean().unwrap(), 3.0);

        let empty = Dataset::new(Matrix::zeros(0, 1), Vector::zeros(0), Task::Regression).unwrap();
        assert!(empty.is_empty());
        assert!(matches!(empty.target_mean(), Err(DataError::EmptyDataset)));
    }

    #[test]
    fn task_display() {
        assert_eq!(Task::Regression.to_string(), "regression");
        assert_eq!(Task::BinaryClassification.to_string(), "classification");
    }
}
