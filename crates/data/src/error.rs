//! Error type for dataset construction, splitting and I/O.

use std::fmt;

/// Errors produced by the `nimbus-data` crate.
#[derive(Debug)]
pub enum DataError {
    /// Feature matrix and target vector disagree on the number of examples.
    LengthMismatch {
        /// Rows in the feature matrix.
        features: usize,
        /// Entries in the target vector.
        targets: usize,
    },
    /// A split fraction was outside `(0, 1)`.
    InvalidSplitFraction {
        /// The offending fraction.
        fraction: f64,
    },
    /// An operation needed a non-empty dataset.
    EmptyDataset,
    /// Targets were not valid for the declared task (e.g. a classification
    /// label other than 0/1).
    InvalidTarget {
        /// Row of the offending target.
        row: usize,
        /// The offending value.
        value: f64,
    },
    /// A dataset value was NaN or infinite.
    NonFinite {
        /// Row of the offending value.
        row: usize,
    },
    /// CSV parsing failed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
    /// An underlying linear-algebra error.
    Linalg(nimbus_linalg::LinalgError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::LengthMismatch { features, targets } => write!(
                f,
                "feature matrix has {features} rows but target vector has {targets} entries"
            ),
            DataError::InvalidSplitFraction { fraction } => {
                write!(
                    f,
                    "split fraction {fraction} must be strictly between 0 and 1"
                )
            }
            DataError::EmptyDataset => write!(f, "dataset is empty"),
            DataError::InvalidTarget { row, value } => {
                write!(f, "invalid target {value} at row {row} for this task")
            }
            DataError::NonFinite { row } => write!(f, "non-finite value at row {row}"),
            DataError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<nimbus_linalg::LinalgError> for DataError {
    fn from(e: nimbus_linalg::LinalgError) -> Self {
        DataError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DataError::LengthMismatch {
            features: 3,
            targets: 4,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('4'));
        let e = DataError::Csv {
            line: 7,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_source_chain() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e = DataError::from(inner);
        assert!(e.source().is_some());
    }
}
