//! Datasets for Nimbus: containers, splits, scaling, CSV I/O and the
//! synthetic generators behind the paper's evaluation.
//!
//! The paper's market sells models trained on a seller dataset `D = (D_train,
//! D_test)` of labeled examples `z = (x, y)` (Section 3.1). This crate
//! provides:
//!
//! * [`Dataset`] — a dense labeled dataset with a task tag (regression /
//!   binary classification) and the train/test split machinery of standard
//!   ML practice ([`split::train_test_split`]).
//! * [`scale::Standardizer`] — feature standardization fit on the train set
//!   only, applied to both splits (no test-set leakage).
//! * [`csv`] — minimal, dependency-free CSV read/write for numeric tables so
//!   experiments can persist results and users can load their own data.
//! * [`synthetic`] — the paper's `Simulated1` (regression: targets are inner
//!   products with a planted hyperplane) and `Simulated2` (classification:
//!   labels flip with probability 0.05 around a planted hyperplane),
//!   exactly as described in Section 6.1.
//! * [`catalog`] — shape-matched stand-ins for the four UCI datasets of
//!   Table 3 (YearMSD, CASP, CovType, SUSY). See DESIGN.md for the
//!   substitution rationale: Figure 6 only needs datasets with these task
//!   types and dimensions, not the original bytes.
//! * [`stream`] — constant-memory example streams, so paper-scale (10M-row)
//!   regression training runs without materializing the dataset.

pub mod catalog;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod scale;
pub mod split;
pub mod stream;
pub mod synthetic;

pub use catalog::{DatasetSpec, PaperDataset};
pub use dataset::{Dataset, Task};
pub use error::DataError;
pub use scale::Standardizer;
pub use split::{train_test_split, TrainTest};
pub use stream::{DatasetStream, ExampleStream, SyntheticRegressionStream};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, DataError>;
