//! Feature standardization.
//!
//! Gradient-based trainers (logistic regression, Pegasos SVM) converge far
//! faster on standardized features, and the planted-hyperplane generators
//! already produce roughly unit-scale columns — so the default experiment
//! pipelines standardize using train-set statistics only.

use crate::{DataError, Dataset, Result};
use nimbus_linalg::{Matrix, Vector};

/// Per-column affine transform `x' = (x - mean) / std`, fit on a training
/// set. Columns with (near-)zero variance pass through centered but
/// unscaled, so constant columns (e.g. an intercept feature) are preserved
/// rather than amplified into NaNs.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

/// Variance below this threshold is treated as a constant column.
const VARIANCE_FLOOR: f64 = 1e-12;

impl Standardizer {
    /// Fits column means and standard deviations from `data`.
    pub fn fit(data: &Dataset) -> Result<Self> {
        if data.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        let n = data.len() as f64;
        let d = data.num_features();
        let mut means = vec![0.0; d];
        for i in 0..data.len() {
            for (m, v) in means.iter_mut().zip(data.features().row(i)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for i in 0..data.len() {
            for ((s, v), m) in vars.iter_mut().zip(data.features().row(i)).zip(&means) {
                let c = v - m;
                *s += c * c;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let var = v / n;
                if var < VARIANCE_FLOOR {
                    1.0
                } else {
                    var.sqrt()
                }
            })
            .collect();
        Ok(Standardizer { means, stds })
    }

    /// Column means captured at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Column standard deviations (1.0 for constant columns).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Applies the transform, producing a new dataset with the same targets
    /// and task. Errors if the feature width differs from fit time.
    pub fn transform(&self, data: &Dataset) -> Result<Dataset> {
        let d = data.num_features();
        if d != self.means.len() {
            return Err(DataError::LengthMismatch {
                features: d,
                targets: self.means.len(),
            });
        }
        let mut out = Vec::with_capacity(data.len() * d);
        for i in 0..data.len() {
            for ((v, m), s) in data
                .features()
                .row(i)
                .iter()
                .zip(&self.means)
                .zip(&self.stds)
            {
                out.push((v - m) / s);
            }
        }
        let features = Matrix::from_row_major(data.len(), d, out)?;
        Dataset::new(
            features,
            Vector::from_vec(data.targets().as_slice().to_vec()),
            data.task(),
        )
    }

    /// Fits on `train` and transforms both splits — the no-leakage pattern.
    pub fn fit_transform_pair(train: &Dataset, test: &Dataset) -> Result<(Dataset, Dataset)> {
        let s = Standardizer::fit(train)?;
        Ok((s.transform(train)?, s.transform(test)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Task;

    fn dataset(rows: &[Vec<f64>], y: Vec<f64>) -> Dataset {
        let m = Matrix::from_rows(rows).unwrap();
        Dataset::new(m, Vector::from_vec(y), Task::Regression).unwrap()
    }

    #[test]
    fn transform_zero_mean_unit_variance() {
        let d = dataset(
            &[
                vec![1.0, 10.0],
                vec![2.0, 20.0],
                vec![3.0, 30.0],
                vec![4.0, 40.0],
            ],
            vec![0.0; 4],
        );
        let s = Standardizer::fit(&d).unwrap();
        let t = s.transform(&d).unwrap();
        for j in 0..2 {
            let col = t.features().col(j);
            assert!(col.mean().unwrap().abs() < 1e-12);
            let var: f64 = col.as_slice().iter().map(|v| v * v).sum::<f64>() / col.len() as f64;
            assert!((var - 1.0).abs() < 1e-10, "var {var}");
        }
    }

    #[test]
    fn constant_column_is_centered_not_scaled() {
        let d = dataset(
            &[vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]],
            vec![0.0; 3],
        );
        let s = Standardizer::fit(&d).unwrap();
        assert_eq!(s.stds()[0], 1.0);
        let t = s.transform(&d).unwrap();
        for i in 0..3 {
            assert_eq!(t.features().get(i, 0), 0.0);
        }
    }

    #[test]
    fn targets_and_task_unchanged() {
        let d = dataset(&[vec![1.0], vec![2.0]], vec![7.0, -1.0]);
        let s = Standardizer::fit(&d).unwrap();
        let t = s.transform(&d).unwrap();
        assert_eq!(t.targets().as_slice(), &[7.0, -1.0]);
        assert_eq!(t.task(), Task::Regression);
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let d1 = dataset(&[vec![1.0, 2.0]], vec![0.0]);
        let d2 = dataset(&[vec![1.0]], vec![0.0]);
        let s = Standardizer::fit(&d1).unwrap();
        assert!(s.transform(&d2).is_err());
    }

    #[test]
    fn empty_dataset_rejected() {
        let d = Dataset::new(Matrix::zeros(0, 2), Vector::zeros(0), Task::Regression).unwrap();
        assert!(matches!(
            Standardizer::fit(&d),
            Err(DataError::EmptyDataset)
        ));
    }

    #[test]
    fn fit_transform_pair_uses_train_stats_only() {
        let train = dataset(&[vec![0.0], vec![2.0]], vec![0.0, 0.0]); // mean 1, std 1
        let test = dataset(&[vec![3.0]], vec![0.0]);
        let (tr, te) = Standardizer::fit_transform_pair(&train, &test).unwrap();
        assert_eq!(tr.features().get(0, 0), -1.0);
        assert_eq!(tr.features().get(1, 0), 1.0);
        // Test point transformed with TRAIN statistics: (3 - 1) / 1 = 2.
        assert_eq!(te.features().get(0, 0), 2.0);
    }
}
