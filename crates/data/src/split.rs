//! Train/test splitting.
//!
//! The seller's dataset is delivered as a pair `(D_train, D_test)`
//! (Section 3.1): the broker trains `h*` on `D_train` while the buyer-facing
//! error function `ε` is typically evaluated on `D_test`.

use crate::{DataError, Dataset, Result};
use nimbus_randkit::uniform::shuffle_indices;
use nimbus_randkit::NimbusRng;

/// A train/test split of a dataset.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// The training portion `D_train` (n₁ examples).
    pub train: Dataset,
    /// The held-out portion `D_test` (n₂ examples).
    pub test: Dataset,
}

impl TrainTest {
    /// Total number of examples across both splits (`n₀` in Table 1).
    pub fn total_len(&self) -> usize {
        self.train.len() + self.test.len()
    }
}

/// Splits `data` into train/test with the given train fraction, shuffling
/// with the provided RNG.
///
/// The paper's evaluation (Table 3) uses a 75/25 split for every dataset;
/// that is the conventional choice here too, but any fraction strictly
/// inside `(0, 1)` is accepted. Both sides are guaranteed non-empty for
/// datasets with at least 2 examples; degenerate rounding is nudged so that
/// neither side is empty.
pub fn train_test_split(
    data: &Dataset,
    train_fraction: f64,
    rng: &mut NimbusRng,
) -> Result<TrainTest> {
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(DataError::InvalidSplitFraction {
            fraction: train_fraction,
        });
    }
    let n = data.len();
    if n < 2 {
        return Err(DataError::EmptyDataset);
    }
    let mut indices: Vec<usize> = (0..n).collect();
    shuffle_indices(rng, &mut indices);
    let mut n_train = (n as f64 * train_fraction).round() as usize;
    n_train = n_train.clamp(1, n - 1);
    let train = data.select(&indices[..n_train]);
    let test = data.select(&indices[n_train..]);
    Ok(TrainTest { train, test })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Task;
    use nimbus_linalg::{Matrix, Vector};
    use nimbus_randkit::seeded_rng;

    fn dataset(n: usize) -> Dataset {
        let x = Matrix::from_row_major(n, 1, (0..n).map(|i| i as f64).collect()).unwrap();
        let y = Vector::from_vec((0..n).map(|i| (i * 2) as f64).collect());
        Dataset::new(x, y, Task::Regression).unwrap()
    }

    #[test]
    fn split_sizes_match_fraction() {
        let d = dataset(100);
        let mut rng = seeded_rng(1);
        let tt = train_test_split(&d, 0.75, &mut rng).unwrap();
        assert_eq!(tt.train.len(), 75);
        assert_eq!(tt.test.len(), 25);
        assert_eq!(tt.total_len(), 100);
    }

    #[test]
    fn split_partitions_rows_exactly() {
        let d = dataset(50);
        let mut rng = seeded_rng(3);
        let tt = train_test_split(&d, 0.6, &mut rng).unwrap();
        // Reconstruct the multiset of targets across both sides.
        let mut all: Vec<f64> = tt
            .train
            .targets()
            .as_slice()
            .iter()
            .chain(tt.test.targets().as_slice())
            .copied()
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (0..50).map(|i| (i * 2) as f64).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn rows_stay_aligned_with_targets() {
        let d = dataset(20);
        let mut rng = seeded_rng(5);
        let tt = train_test_split(&d, 0.5, &mut rng).unwrap();
        for side in [&tt.train, &tt.test] {
            for i in 0..side.len() {
                let (x, y) = side.example(i);
                assert_eq!(y, x[0] * 2.0, "row/target pairing broke in the shuffle");
            }
        }
    }

    #[test]
    fn extreme_fractions_keep_both_sides_non_empty() {
        let d = dataset(10);
        let mut rng = seeded_rng(7);
        let tt = train_test_split(&d, 0.999, &mut rng).unwrap();
        assert!(!tt.test.is_empty());
        let tt = train_test_split(&d, 0.001, &mut rng).unwrap();
        assert!(!tt.train.is_empty());
    }

    #[test]
    fn rejects_invalid_fraction_and_tiny_data() {
        let d = dataset(10);
        let mut rng = seeded_rng(0);
        assert!(train_test_split(&d, 0.0, &mut rng).is_err());
        assert!(train_test_split(&d, 1.0, &mut rng).is_err());
        assert!(train_test_split(&d, f64::NAN, &mut rng).is_err());
        let one = dataset(1);
        assert!(matches!(
            train_test_split(&one, 0.5, &mut rng),
            Err(DataError::EmptyDataset)
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset(30);
        let a = train_test_split(&d, 0.7, &mut seeded_rng(99)).unwrap();
        let b = train_test_split(&d, 0.7, &mut seeded_rng(99)).unwrap();
        assert_eq!(a.train.targets().as_slice(), b.train.targets().as_slice());
        assert_eq!(a.test.targets().as_slice(), b.test.targets().as_slice());
    }
}
