//! Streaming access to labeled examples.
//!
//! Table 3's largest datasets (Simulated1/2 at 10M rows, SUSY at 5M) are
//! uncomfortable to materialize: 10M × 20 features × 8 bytes ≈ 1.6 GB
//! before the train/test copies. The broker's one-time training for the
//! square loss, however, only needs the Gram sums `XᵀX` and `Xᵀy`, which
//! accumulate in `O(d²)` memory from a single pass. [`ExampleStream`]
//! abstracts that pass; [`SyntheticRegressionStream`] regenerates the §6.1
//! data on the fly so full paper-scale training runs in constant memory.

use crate::synthetic::RegressionSpec;
use crate::Dataset;
use nimbus_randkit::{seeded_rng, split_stream, NimbusRng, StandardNormal};

/// A restartable stream of labeled examples `(x, y)`.
pub trait ExampleStream {
    /// Number of features per example.
    fn num_features(&self) -> usize;

    /// Total number of examples the stream will yield.
    fn len(&self) -> usize;

    /// Whether the stream yields no examples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets the stream to its first example.
    fn reset(&mut self);

    /// Writes the next example's features into `x` and returns its target,
    /// or `None` when exhausted. `x.len()` must equal `num_features()`.
    fn next_example(&mut self, x: &mut [f64]) -> Option<f64>;
}

/// Streams a materialized [`Dataset`] (adapter for the in-memory path).
#[derive(Debug, Clone)]
pub struct DatasetStream<'a> {
    data: &'a Dataset,
    pos: usize,
}

impl<'a> DatasetStream<'a> {
    /// Wraps a dataset as a stream.
    pub fn new(data: &'a Dataset) -> Self {
        DatasetStream { data, pos: 0 }
    }
}

impl ExampleStream for DatasetStream<'_> {
    fn num_features(&self) -> usize {
        self.data.num_features()
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn reset(&mut self) {
        self.pos = 0;
    }

    fn next_example(&mut self, x: &mut [f64]) -> Option<f64> {
        if self.pos >= self.data.len() {
            return None;
        }
        let (features, y) = self.data.example(self.pos);
        x.copy_from_slice(features);
        self.pos += 1;
        Some(y)
    }
}

/// Regenerates a planted-hyperplane regression dataset on the fly —
/// identical distribution to [`crate::synthetic::generate_regression`]
/// (same seed ⇒ same planted hyperplane) without materializing rows.
#[derive(Debug, Clone)]
pub struct SyntheticRegressionStream {
    spec: RegressionSpec,
    seed: u64,
    hyperplane: Vec<f64>,
    rng: NimbusRng,
    normal: StandardNormal,
    emitted: usize,
}

impl SyntheticRegressionStream {
    /// Creates the stream. The planted hyperplane is drawn identically to
    /// the materializing generator for the same seed.
    pub fn new(spec: RegressionSpec, seed: u64) -> Self {
        assert!(
            spec.feature_scale > 0.0 && spec.feature_scale.is_finite(),
            "feature_scale must be positive"
        );
        let mut rng = seeded_rng(split_stream(seed, 0xda7a));
        let mut normal = StandardNormal::new();
        let hyperplane: Vec<f64> = (0..spec.d).map(|_| normal.sample(&mut rng)).collect();
        SyntheticRegressionStream {
            spec,
            seed,
            hyperplane,
            rng,
            normal,
            emitted: 0,
        }
    }

    /// The planted hyperplane (scaled by `target_scale`, as the
    /// materializing generator reports it).
    pub fn planted_hyperplane(&self) -> Vec<f64> {
        self.hyperplane
            .iter()
            .map(|w| w * self.spec.target_scale)
            .collect()
    }
}

impl ExampleStream for SyntheticRegressionStream {
    fn num_features(&self) -> usize {
        self.spec.d
    }

    fn len(&self) -> usize {
        self.spec.n
    }

    fn reset(&mut self) {
        // Re-derive the RNG and skip the hyperplane draws so the stream
        // replays the identical example sequence.
        let mut rng = seeded_rng(split_stream(self.seed, 0xda7a));
        let mut normal = StandardNormal::new();
        for _ in 0..self.spec.d {
            normal.sample(&mut rng);
        }
        self.rng = rng;
        self.normal = normal;
        self.emitted = 0;
    }

    fn next_example(&mut self, x: &mut [f64]) -> Option<f64> {
        if self.emitted >= self.spec.n {
            return None;
        }
        debug_assert_eq!(x.len(), self.spec.d);
        self.normal
            .fill_isotropic(&mut self.rng, self.spec.feature_scale, x);
        let mut y = 0.0;
        for (xi, wi) in x.iter().zip(&self.hyperplane) {
            y += xi * wi;
        }
        y *= self.spec.target_scale;
        if self.spec.target_noise > 0.0 {
            y += self
                .normal
                .sample_scaled(&mut self.rng, 0.0, self.spec.target_noise);
        }
        self.emitted += 1;
        Some(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::generate_regression;

    #[test]
    fn dataset_stream_replays_rows() {
        let (ds, _) = generate_regression(&RegressionSpec::simulated1(30, 3), 1).unwrap();
        let mut stream = DatasetStream::new(&ds);
        assert_eq!(stream.len(), 30);
        assert_eq!(stream.num_features(), 3);
        let mut x = vec![0.0; 3];
        let mut count = 0;
        while let Some(y) = stream.next_example(&mut x) {
            let (expected_x, expected_y) = ds.example(count);
            assert_eq!(x.as_slice(), expected_x);
            assert_eq!(y, expected_y);
            count += 1;
        }
        assert_eq!(count, 30);
        // Reset replays from the top.
        stream.reset();
        assert!(stream.next_example(&mut x).is_some());
    }

    #[test]
    fn synthetic_stream_matches_materialized_generator() {
        let spec = RegressionSpec::simulated1(50, 4);
        let (ds, planted) = generate_regression(&spec, 9).unwrap();
        let mut stream = SyntheticRegressionStream::new(spec, 9);
        assert_eq!(stream.planted_hyperplane(), planted.as_slice());
        let mut x = vec![0.0; 4];
        for i in 0..50 {
            let y = stream.next_example(&mut x).unwrap();
            let (ex, ey) = ds.example(i);
            assert_eq!(x.as_slice(), ex, "row {i}");
            assert_eq!(y, ey, "target {i}");
        }
        assert!(stream.next_example(&mut x).is_none());
    }

    #[test]
    fn synthetic_stream_reset_is_exact() {
        let spec = RegressionSpec {
            n: 20,
            d: 3,
            target_noise: 1.0,
            target_scale: 2.0,
            feature_scale: 1.5,
        };
        let mut stream = SyntheticRegressionStream::new(spec, 3);
        let mut x = vec![0.0; 3];
        let first_pass: Vec<f64> = std::iter::from_fn(|| stream.next_example(&mut x)).collect();
        stream.reset();
        let second_pass: Vec<f64> = std::iter::from_fn(|| stream.next_example(&mut x)).collect();
        assert_eq!(first_pass, second_pass);
        assert_eq!(first_pass.len(), 20);
    }

    #[test]
    fn stream_is_constant_memory_at_scale() {
        // 200k rows × 20 features would be 32 MB materialized; the stream
        // touches only one row buffer. Just verify it runs and counts.
        let spec = RegressionSpec::simulated1(200_000, 20);
        let mut stream = SyntheticRegressionStream::new(spec, 7);
        let mut x = vec![0.0; 20];
        let mut count = 0usize;
        while stream.next_example(&mut x).is_some() {
            count += 1;
        }
        assert_eq!(count, 200_000);
    }
}
