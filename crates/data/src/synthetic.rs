//! Synthetic dataset generators.
//!
//! Section 6.1 of the paper describes two simulated datasets:
//!
//! * **Simulated1** (regression): feature vectors drawn from a normal
//!   distribution; targets are the inner product of the features with a
//!   planted hyperplane.
//! * **Simulated2** (classification): feature vectors drawn from a normal
//!   distribution; the label of a point above a planted hyperplane is 1 with
//!   probability 0.95 (and symmetric below), i.e. a 5% label-flip rate.
//!
//! Both generators here are parameterized by `n`, `d`, seed and (for
//! regression) target noise, so the catalog module can also reuse them to
//! build shape-matched stand-ins for the UCI datasets of Table 3.

use crate::{Dataset, Result, Task};
use nimbus_linalg::{Matrix, Vector};
use nimbus_randkit::{seeded_rng, split_stream, StandardNormal};
use rand::Rng;

/// Parameters for the planted-hyperplane regression generator.
#[derive(Debug, Clone)]
pub struct RegressionSpec {
    /// Number of examples to generate.
    pub n: usize,
    /// Number of features.
    pub d: usize,
    /// Standard deviation of additive Gaussian noise on the target
    /// (0.0 reproduces the paper's noiseless Simulated1 exactly).
    pub target_noise: f64,
    /// Scale applied to the generated targets, used by catalog stand-ins to
    /// land test errors in the same numeric regime as the paper's figures.
    pub target_scale: f64,
    /// Standard deviation of the feature coordinates (features are
    /// `N(0, feature_scale²)`). Model perturbation of total variance δ
    /// inflates the test MSE by `δ·feature_scale²`, so catalog stand-ins
    /// use this to match the visible error drop of the paper's Figure 6
    /// panels.
    pub feature_scale: f64,
}

impl RegressionSpec {
    /// The paper's `Simulated1` shape: noiseless linear targets.
    pub fn simulated1(n: usize, d: usize) -> Self {
        RegressionSpec {
            n,
            d,
            target_noise: 0.0,
            target_scale: 1.0,
            feature_scale: 1.0,
        }
    }
}

/// Parameters for the planted-hyperplane classification generator.
#[derive(Debug, Clone)]
pub struct ClassificationSpec {
    /// Number of examples to generate.
    pub n: usize,
    /// Number of features.
    pub d: usize,
    /// Probability that a point on the positive side of the hyperplane is
    /// labeled 1 (the paper's Simulated2 uses 0.95).
    pub positive_fidelity: f64,
}

impl ClassificationSpec {
    /// The paper's `Simulated2` shape: 95% label fidelity.
    pub fn simulated2(n: usize, d: usize) -> Self {
        ClassificationSpec {
            n,
            d,
            positive_fidelity: 0.95,
        }
    }
}

/// Generates a regression dataset with targets `y = s·(wᵀx) + noise` for a
/// planted hyperplane `w` drawn from the unit normal, features `x ~ N(0, I)`.
/// Returns the dataset and the planted hyperplane.
pub fn generate_regression(spec: &RegressionSpec, seed: u64) -> Result<(Dataset, Vector)> {
    let mut rng = seeded_rng(split_stream(seed, 0xda7a));
    let mut normal = StandardNormal::new();

    let w: Vec<f64> = (0..spec.d).map(|_| normal.sample(&mut rng)).collect();
    let mut features = Vec::with_capacity(spec.n * spec.d);
    let mut targets = Vec::with_capacity(spec.n);
    let mut row = vec![0.0; spec.d];
    assert!(
        spec.feature_scale > 0.0 && spec.feature_scale.is_finite(),
        "feature_scale must be positive"
    );
    for _ in 0..spec.n {
        normal.fill_isotropic(&mut rng, spec.feature_scale, &mut row);
        let mut y = 0.0;
        for (xi, wi) in row.iter().zip(&w) {
            y += xi * wi;
        }
        y *= spec.target_scale;
        if spec.target_noise > 0.0 {
            y += normal.sample_scaled(&mut rng, 0.0, spec.target_noise);
        }
        features.extend_from_slice(&row);
        targets.push(y);
    }
    let x = Matrix::from_row_major(spec.n, spec.d, features)?;
    let ds = Dataset::new(x, Vector::from_vec(targets), Task::Regression)?;
    Ok((
        ds,
        Vector::from_vec(w.iter().map(|v| v * spec.target_scale).collect()),
    ))
}

/// Generates a classification dataset: labels follow the sign of `wᵀx` for a
/// planted hyperplane `w`, flipped with probability `1 - positive_fidelity`.
/// Returns the dataset and the planted hyperplane.
pub fn generate_classification(spec: &ClassificationSpec, seed: u64) -> Result<(Dataset, Vector)> {
    assert!(
        (0.5..=1.0).contains(&spec.positive_fidelity),
        "fidelity must be in [0.5, 1]"
    );
    let mut rng = seeded_rng(split_stream(seed, 0xc1a5));
    let mut normal = StandardNormal::new();

    let w: Vec<f64> = (0..spec.d).map(|_| normal.sample(&mut rng)).collect();
    let mut features = Vec::with_capacity(spec.n * spec.d);
    let mut targets = Vec::with_capacity(spec.n);
    let mut row = vec![0.0; spec.d];
    for _ in 0..spec.n {
        normal.fill_isotropic(&mut rng, 1.0, &mut row);
        let mut score = 0.0;
        for (xi, wi) in row.iter().zip(&w) {
            score += xi * wi;
        }
        let above = score > 0.0;
        let faithful = rng.random::<f64>() < spec.positive_fidelity;
        let label = if above == faithful { 1.0 } else { 0.0 };
        features.extend_from_slice(&row);
        targets.push(label);
    }
    let x = Matrix::from_row_major(spec.n, spec.d, features)?;
    let ds = Dataset::new(x, Vector::from_vec(targets), Task::BinaryClassification)?;
    Ok((ds, Vector::from_vec(w)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated1_targets_are_exact_inner_products() {
        let (ds, w) = generate_regression(&RegressionSpec::simulated1(200, 5), 1).unwrap();
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.num_features(), 5);
        for i in 0..ds.len() {
            let (x, y) = ds.example(i);
            let pred: f64 = x.iter().zip(w.as_slice()).map(|(a, b)| a * b).sum();
            assert!((pred - y).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn regression_noise_perturbs_targets() {
        let spec = RegressionSpec {
            n: 500,
            d: 3,
            target_noise: 1.0,
            target_scale: 1.0,
            feature_scale: 1.0,
        };
        let (ds, w) = generate_regression(&spec, 2).unwrap();
        let mut sse = 0.0;
        for i in 0..ds.len() {
            let (x, y) = ds.example(i);
            let pred: f64 = x.iter().zip(w.as_slice()).map(|(a, b)| a * b).sum();
            sse += (pred - y) * (pred - y);
        }
        let mse = sse / ds.len() as f64;
        assert!(
            (mse - 1.0).abs() < 0.2,
            "noise variance should be ~1, got {mse}"
        );
    }

    #[test]
    fn target_scale_scales_targets() {
        let spec = RegressionSpec {
            n: 100,
            d: 4,
            target_noise: 0.0,
            target_scale: 10.0,
            feature_scale: 1.0,
        };
        let (ds, w) = generate_regression(&spec, 3).unwrap();
        // Returned hyperplane absorbs the scale: predictions still match.
        for i in 0..5 {
            let (x, y) = ds.example(i);
            let pred: f64 = x.iter().zip(w.as_slice()).map(|(a, b)| a * b).sum();
            assert!((pred - y).abs() < 1e-9);
        }
    }

    #[test]
    fn simulated2_flip_rate_is_about_five_percent() {
        let (ds, w) =
            generate_classification(&ClassificationSpec::simulated2(20_000, 8), 4).unwrap();
        let mut flips = 0usize;
        for i in 0..ds.len() {
            let (x, y) = ds.example(i);
            let score: f64 = x.iter().zip(w.as_slice()).map(|(a, b)| a * b).sum();
            let ideal = if score > 0.0 { 1.0 } else { 0.0 };
            if ideal != y {
                flips += 1;
            }
        }
        let rate = flips as f64 / ds.len() as f64;
        assert!((rate - 0.05).abs() < 0.01, "flip rate {rate}");
    }

    #[test]
    fn classification_labels_are_binary_and_balanced() {
        let (ds, _) =
            generate_classification(&ClassificationSpec::simulated2(10_000, 6), 5).unwrap();
        let pos = ds.positive_rate().unwrap();
        // A zero-threshold hyperplane over symmetric features gives ~50/50.
        assert!((pos - 0.5).abs() < 0.05, "positive rate {pos}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = generate_regression(&RegressionSpec::simulated1(50, 3), 7).unwrap();
        let b = generate_regression(&RegressionSpec::simulated1(50, 3), 7).unwrap();
        assert_eq!(a.0.features().as_slice(), b.0.features().as_slice());
        assert_eq!(a.1.as_slice(), b.1.as_slice());
        let c = generate_regression(&RegressionSpec::simulated1(50, 3), 8).unwrap();
        assert_ne!(a.0.features().as_slice(), c.0.features().as_slice());
    }

    #[test]
    #[should_panic(expected = "fidelity")]
    fn classification_rejects_bad_fidelity() {
        let spec = ClassificationSpec {
            n: 1,
            d: 1,
            positive_fidelity: 0.2,
        };
        let _ = generate_classification(&spec, 0);
    }
}
