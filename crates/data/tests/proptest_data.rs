//! Property-based tests for dataset invariants.

use nimbus_data::csv::{read_table, write_table};
use nimbus_data::synthetic::{
    generate_classification, generate_regression, ClassificationSpec, RegressionSpec,
};
use nimbus_data::{train_test_split, Dataset, Standardizer, Task};
use nimbus_linalg::{Matrix, Vector};
use nimbus_randkit::seeded_rng;
use proptest::prelude::*;

proptest! {
    #[test]
    fn split_partitions_any_dataset(n in 2usize..200, frac in 0.05..0.95f64, seed in 0u64..500) {
        let x = Matrix::from_row_major(n, 1, (0..n).map(|i| i as f64).collect()).unwrap();
        let y = Vector::from_vec((0..n).map(|i| i as f64 * 3.0).collect());
        let d = Dataset::new(x, y, Task::Regression).unwrap();
        let mut rng = seeded_rng(seed);
        let tt = train_test_split(&d, frac, &mut rng).unwrap();
        prop_assert_eq!(tt.total_len(), n);
        prop_assert!(!tt.train.is_empty());
        prop_assert!(!tt.test.is_empty());
        // Rows stay paired with their targets.
        for side in [&tt.train, &tt.test] {
            for i in 0..side.len() {
                let (xi, yi) = side.example(i);
                prop_assert!((yi - xi[0] * 3.0).abs() < 1e-12);
            }
        }
        // The union of targets is exactly the original multiset.
        let mut all: Vec<f64> = tt.train.targets().as_slice().to_vec();
        all.extend_from_slice(tt.test.targets().as_slice());
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (0..n).map(|i| i as f64 * 3.0).collect();
        prop_assert_eq!(all, expected);
    }

    #[test]
    fn standardizer_is_affine_and_reversible_in_distribution(
        rows in prop::collection::vec(prop::collection::vec(-100.0..100.0f64, 3), 2..40),
    ) {
        let m = Matrix::from_rows(&rows).unwrap();
        let y = Vector::zeros(rows.len());
        let d = Dataset::new(m, y, Task::Regression).unwrap();
        let s = Standardizer::fit(&d).unwrap();
        let t = s.transform(&d).unwrap();
        // Transformed columns have ~zero mean.
        for j in 0..3 {
            let col = t.features().col(j);
            prop_assert!(col.mean().unwrap().abs() < 1e-8);
        }
        // The transform is invertible: x = x' * std + mean.
        for i in 0..d.len() {
            for j in 0..3 {
                let reconstructed = t.features().get(i, j) * s.stds()[j] + s.means()[j];
                prop_assert!((reconstructed - d.features().get(i, j)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn csv_roundtrip_preserves_values(
        rows in prop::collection::vec(prop::collection::vec(-1e6..1e6f64, 4), 0..30),
    ) {
        let mut buf = Vec::new();
        write_table(&mut buf, &["a", "b", "c", "d"], &rows).unwrap();
        let table = read_table(&buf[..], true).unwrap();
        prop_assert_eq!(table.num_rows(), rows.len());
        for (got, want) in table.rows.iter().zip(&rows) {
            for (g, w) in got.iter().zip(want) {
                prop_assert!((g - w).abs() <= 1e-9 * w.abs().max(1.0));
            }
        }
    }

    #[test]
    fn regression_generator_plants_recoverable_signal(
        n in 50usize..300,
        d in 1usize..6,
        seed in 0u64..300,
    ) {
        let (ds, w) = generate_regression(&RegressionSpec::simulated1(n, d), seed).unwrap();
        prop_assert_eq!(ds.len(), n);
        prop_assert_eq!(ds.num_features(), d);
        prop_assert_eq!(w.len(), d);
        // Noiseless: targets are exact inner products.
        for i in 0..n.min(20) {
            let (x, y) = ds.example(i);
            let pred: f64 = x.iter().zip(w.as_slice()).map(|(a, b)| a * b).sum();
            prop_assert!((pred - y).abs() < 1e-9);
        }
    }

    #[test]
    fn classification_generator_respects_fidelity(
        fidelity in 0.6..0.99f64,
        seed in 0u64..100,
    ) {
        let spec = ClassificationSpec {
            n: 4_000,
            d: 5,
            positive_fidelity: fidelity,
        };
        let (ds, w) = generate_classification(&spec, seed).unwrap();
        let mut agree = 0usize;
        for i in 0..ds.len() {
            let (x, y) = ds.example(i);
            let score: f64 = x.iter().zip(w.as_slice()).map(|(a, b)| a * b).sum();
            let ideal = if score > 0.0 { 1.0 } else { 0.0 };
            if ideal == y {
                agree += 1;
            }
        }
        let rate = agree as f64 / ds.len() as f64;
        prop_assert!((rate - fidelity).abs() < 0.04, "agreement {rate} vs fidelity {fidelity}");
    }
}
