//! Minimal command-line flag parsing for the experiment binaries.
//!
//! No external dependency: the binaries only need a handful of numeric
//! flags and two booleans. Unknown flags abort with a usage message so
//! typos never silently run the wrong configuration.

/// Parsed experiment options.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Number of price points / versions on the menu (figure-specific
    /// default when `None`).
    pub points: Option<usize>,
    /// Monte-Carlo samples per NCP for error curves (paper fidelity: 2000).
    pub samples: Option<usize>,
    /// Buyer population size for realized-market checks.
    pub buyers: Option<usize>,
    /// Base random seed.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out: String,
    /// Run at full paper scale (Table 3 dataset sizes, 2000 samples).
    pub full: bool,
    /// Run at reduced scale for smoke testing.
    pub quick: bool,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            points: None,
            samples: None,
            buyers: None,
            seed: 20190707,
            out: crate::DEFAULT_RESULTS_DIR.to_string(),
            full: false,
            quick: false,
        }
    }
}

impl ExperimentArgs {
    /// Parses flags from an argument iterator (excluding the program name).
    /// Returns an error message suitable for printing on bad input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = ExperimentArgs::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--points" => out.points = Some(next_num(&mut iter, "--points")?),
                "--samples" => out.samples = Some(next_num(&mut iter, "--samples")?),
                "--buyers" => out.buyers = Some(next_num(&mut iter, "--buyers")?),
                "--seed" => out.seed = next_num(&mut iter, "--seed")?,
                "--out" => {
                    out.out = iter
                        .next()
                        .ok_or_else(|| "--out requires a directory".to_string())?
                }
                "--full" => out.full = true,
                "--quick" => out.quick = true,
                "--help" | "-h" => return Err(usage()),
                other => return Err(format!("unknown flag {other}\n{}", usage())),
            }
        }
        if out.full && out.quick {
            return Err("--full and --quick are mutually exclusive".to_string());
        }
        Ok(out)
    }

    /// Parses from the process environment, exiting with a message on
    /// failure (binary-`main` convenience).
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Monte-Carlo samples per NCP: 2000 at `--full` (the §6.1 number),
    /// 50 at `--quick`, 200 otherwise, unless overridden.
    pub fn effective_samples(&self) -> usize {
        self.samples.unwrap_or(if self.full {
            2000
        } else if self.quick {
            50
        } else {
            200
        })
    }

    /// Dataset row budget: full Table 3 sizes at `--full`, 2k rows at
    /// `--quick`, 20k rows otherwise.
    pub fn dataset_rows(&self) -> usize {
        if self.full {
            usize::MAX / 2
        } else if self.quick {
            2_000
        } else {
            20_000
        }
    }
}

fn next_num<T: std::str::FromStr, I: Iterator<Item = String>>(
    iter: &mut I,
    flag: &str,
) -> Result<T, String> {
    let raw = iter
        .next()
        .ok_or_else(|| format!("{flag} requires a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse {raw:?}"))
}

fn usage() -> String {
    "usage: <experiment> [--points N] [--samples N] [--buyers N] [--seed N] \
     [--out DIR] [--full | --quick]"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<ExperimentArgs, String> {
        ExperimentArgs::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.points, None);
        assert_eq!(a.effective_samples(), 200);
        assert!(!a.full);
    }

    #[test]
    fn parses_flags() {
        let a = parse(&[
            "--points",
            "50",
            "--samples",
            "17",
            "--seed",
            "9",
            "--out",
            "tmp",
            "--full",
        ])
        .unwrap();
        assert_eq!(a.points, Some(50));
        assert_eq!(a.effective_samples(), 17);
        assert_eq!(a.seed, 9);
        assert_eq!(a.out, "tmp");
        assert!(a.full);
    }

    #[test]
    fn full_and_quick_presets() {
        let a = parse(&["--full"]).unwrap();
        assert_eq!(a.effective_samples(), 2000);
        let a = parse(&["--quick"]).unwrap();
        assert_eq!(a.effective_samples(), 50);
        assert_eq!(a.dataset_rows(), 2_000);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--points"]).is_err());
        assert!(parse(&["--points", "abc"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--full", "--quick"]).is_err());
    }
}
