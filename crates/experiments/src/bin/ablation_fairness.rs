//! Ablation: the revenue ↔ affordability (fairness) trade-off.
//!
//! The paper's §6.3 observes that MedC can occasionally beat MBP on
//! affordability because it *explicitly* targets a 50% floor, and defers a
//! formal revenue/fairness study to future work. This binary runs that
//! study on our implementation: a Lagrangian sweep of the generalized
//! Algorithm 1 DP traces the exact Pareto frontier between revenue and the
//! affordability ratio, on the convex-value market where the tension is
//! strongest.

use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::report::{save_csv, TextTable};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};
use nimbus_optim::fairness::{fairness_frontier, maximize_revenue_with_affordability_floor};
use nimbus_optim::{affordability_ratio, solve_revenue_dp, Baseline, BaselineKind};

fn main() {
    let args = ExperimentArgs::from_env();
    let n_points = args.points.unwrap_or(100);

    let problem = MarketCurves::new(ValueCurve::standard_convex(), DemandCurve::Uniform)
        .build_problem(n_points)
        .expect("problem");

    // Reference points: pure revenue (λ = 0) and the MedC baseline that
    // hard-codes a 50% affordability target.
    let pure = solve_revenue_dp(&problem).expect("dp");
    let pure_aff = affordability_ratio(&pure.prices, &problem).expect("aff");
    let medc = Baseline::fit(BaselineKind::MedC, &problem).expect("medc");
    let medc_rev = nimbus_optim::revenue(&medc.prices, &problem).expect("rev");
    let medc_aff = affordability_ratio(&medc.prices, &problem).expect("aff");

    let lambdas: Vec<f64> = vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    let frontier = fairness_frontier(&problem, &lambdas).expect("frontier");

    let mut t = TextTable::new(["lambda", "revenue", "affordability", "revenue kept (%)"]);
    let mut rows = Vec::new();
    for p in &frontier {
        t.row([
            format!("{:.1}", p.lambda),
            format!("{:.3}", p.revenue),
            format!("{:.3}", p.affordability),
            format!("{:.1}", 100.0 * p.revenue / pure.revenue),
        ]);
        rows.push(vec![p.lambda, p.revenue, p.affordability]);
    }
    t.print("Ablation: Lagrangian revenue/affordability frontier (convex value, uniform demand)");
    println!(
        "\nreference: pure MBP revenue {:.3} @ affordability {:.3}; MedC {:.3} @ {:.3}",
        pure.revenue, pure_aff, medc_rev, medc_aff
    );

    // Affordability floors: what revenue does a hard constraint cost?
    let mut floors = TextTable::new(["floor tau", "lambda*", "revenue", "affordability"]);
    for tau in [0.5, 0.75, 0.9, 1.0] {
        let sol = maximize_revenue_with_affordability_floor(&problem, tau).expect("floor");
        floors.row([
            format!("{tau:.2}"),
            format!("{:.3}", sol.lambda),
            format!("{:.3}", sol.revenue),
            format!("{:.3}", sol.affordability),
        ]);
    }
    floors.print("Ablation: revenue under hard affordability floors");

    save_csv(
        &args.out,
        "ablation_fairness_frontier",
        &["lambda", "revenue", "affordability"],
        &rows,
    )
    .expect("csv");
    println!("\nSaved results/ablation_fairness_frontier.csv");
}
