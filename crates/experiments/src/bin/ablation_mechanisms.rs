//! Ablation: does the choice of noise mechanism matter?
//!
//! The pricing theory only uses two mechanism properties — unbiasedness and
//! total injected variance δ — so Gaussian, Laplace and bounded-uniform
//! noise should produce *identical* expected square-loss curves (Lemma 3
//! holds for all of them) while differing in tail behaviour. This ablation
//! measures both: the mean curve per mechanism (should coincide) and the
//! 95th-percentile square loss (where the heavy-tailed Laplace separates).

use nimbus_core::square_loss::square_loss;
use nimbus_core::{
    GaussianMechanism, LaplaceMechanism, Ncp, RandomizedMechanism, UniformMechanism,
};
use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::report::{save_csv, TextTable};
use nimbus_linalg::Vector;
use nimbus_ml::LinearModel;
use nimbus_randkit::{seeded_rng, split_stream};

fn main() {
    let args = ExperimentArgs::from_env();
    let samples = args.effective_samples().max(500);
    let d = 20;
    let optimal = LinearModel::new(Vector::from_vec(
        (0..d).map(|i| (i as f64 * 0.43).sin() * 2.0).collect(),
    ));
    let deltas = [0.1, 0.5, 1.0, 2.0];

    let mechanisms: Vec<Box<dyn RandomizedMechanism>> = vec![
        Box::new(GaussianMechanism),
        Box::new(LaplaceMechanism),
        Box::new(UniformMechanism),
    ];

    let mut t = TextTable::new([
        "delta",
        "mechanism",
        "mean sq loss",
        "p95 sq loss",
        "max sq loss",
    ]);
    let mut rows = Vec::new();
    for (di, &delta) in deltas.iter().enumerate() {
        let ncp = Ncp::new(delta).expect("positive");
        for (mi, mech) in mechanisms.iter().enumerate() {
            let mut rng = seeded_rng(split_stream(args.seed, (di * 10 + mi) as u64));
            let mut losses: Vec<f64> = (0..samples)
                .map(|_| {
                    let noisy = mech.perturb(&optimal, ncp, &mut rng).expect("perturb");
                    square_loss(&noisy, &optimal).expect("loss")
                })
                .collect();
            losses.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let mean: f64 = losses.iter().sum::<f64>() / losses.len() as f64;
            let p95 = losses[(losses.len() as f64 * 0.95) as usize];
            let max = *losses.last().expect("non-empty");
            t.row([
                format!("{delta}"),
                mech.name().to_string(),
                format!("{mean:.4}"),
                format!("{p95:.4}"),
                format!("{max:.4}"),
            ]);
            rows.push(vec![delta, mi as f64, mean, p95, max]);
        }
    }
    t.print(&format!(
        "Ablation: mechanism choice at d={d} ({samples} samples per cell; Lemma 3 predicts mean = delta for every mechanism)"
    ));
    println!(
        "\nReading: means coincide (the pricing layer is mechanism-agnostic); \
         tails rank uniform < gaussian < laplace."
    );

    save_csv(
        &args.out,
        "ablation_mechanisms",
        &["delta", "mechanism_index", "mean", "p95", "max"],
        &rows,
    )
    .expect("csv");
    println!("Saved results/ablation_mechanisms.csv");
}
