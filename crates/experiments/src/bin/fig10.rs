//! Reproduces **Figure 10**: runtime / revenue / affordability as the
//! number of price values grows, with the buyer value curve fixed
//! (concave) and the demand distribution varied (mid-peaked vs bimodal).
//!
//! Same headline as Figure 9: MBP's dynamic program is orders of magnitude
//! faster than the MILP brute force with near-optimal revenue, regardless
//! of the demand shape.

use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::revenue_experiments::{run_runtime_figure, MarketScenario};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};

fn main() {
    let args = ExperimentArgs::from_env();
    let max_k = args.points.unwrap_or(if args.quick { 6 } else { 10 });

    let scenarios = vec![
        MarketScenario::new(
            "mid_peaked_demand",
            MarketCurves::new(
                ValueCurve::standard_concave(),
                DemandCurve::MidPeaked { width: 0.15 },
            ),
        ),
        MarketScenario::new(
            "bimodal_demand",
            MarketCurves::new(
                ValueCurve::standard_concave(),
                DemandCurve::BimodalExtremes { width: 0.12 },
            ),
        ),
    ];
    run_runtime_figure("fig10", &scenarios, max_k, &args.out).expect("figure 10");
    println!("\nSaved results/fig10_*.csv");
}
