//! Reproduces **Figure 11** (appendix): revenue and affordability across
//! FOUR value-curve shapes — convex, concave, sigmoid and linear — with the
//! buyer distribution fixed (uniform).

use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::revenue_experiments::{run_revenue_figure, MarketScenario};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};

fn main() {
    let args = ExperimentArgs::from_env();
    let n_points = args.points.unwrap_or(100);
    let buyers = args
        .buyers
        .unwrap_or(if args.quick { 1_000 } else { 20_000 });

    let scenarios: Vec<MarketScenario> = [
        ("convex_value", ValueCurve::standard_convex()),
        ("concave_value", ValueCurve::standard_concave()),
        ("sigmoid_value", ValueCurve::standard_sigmoid()),
        ("linear_value", ValueCurve::standard_linear()),
    ]
    .into_iter()
    .map(|(label, value)| {
        MarketScenario::new(label, MarketCurves::new(value, DemandCurve::Uniform))
    })
    .collect();

    run_revenue_figure("fig11", &scenarios, n_points, buyers, args.seed, &args.out)
        .expect("figure 11");
    println!("\nSaved results/fig11_*.csv");
}
