//! Reproduces **Figure 12** (appendix): revenue and affordability across
//! FOUR demand shapes — mid-peaked, bimodal-extremes, decreasing and
//! increasing — with the buyer value curve fixed (concave).

use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::revenue_experiments::{run_revenue_figure, MarketScenario};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};

fn main() {
    let args = ExperimentArgs::from_env();
    let n_points = args.points.unwrap_or(100);
    let buyers = args
        .buyers
        .unwrap_or(if args.quick { 1_000 } else { 20_000 });

    let scenarios: Vec<MarketScenario> = [
        ("mid_peaked_demand", DemandCurve::MidPeaked { width: 0.15 }),
        (
            "bimodal_demand",
            DemandCurve::BimodalExtremes { width: 0.12 },
        ),
        ("decreasing_demand", DemandCurve::Decreasing),
        ("increasing_demand", DemandCurve::Increasing),
    ]
    .into_iter()
    .map(|(label, demand)| {
        MarketScenario::new(
            label,
            MarketCurves::new(ValueCurve::standard_concave(), demand),
        )
    })
    .collect();

    run_revenue_figure("fig12", &scenarios, n_points, buyers, args.seed, &args.out)
        .expect("figure 12");
    println!("\nSaved results/fig12_*.csv");
}
