//! Reproduces **Figure 13** (appendix): runtime / revenue / affordability
//! vs number of price values across FOUR value-curve shapes (uniform
//! demand).

use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::revenue_experiments::{run_runtime_figure, MarketScenario};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};

fn main() {
    let args = ExperimentArgs::from_env();
    let max_k = args.points.unwrap_or(if args.quick { 6 } else { 10 });

    let scenarios: Vec<MarketScenario> = [
        ("convex_value", ValueCurve::standard_convex()),
        ("concave_value", ValueCurve::standard_concave()),
        ("sigmoid_value", ValueCurve::standard_sigmoid()),
        ("linear_value", ValueCurve::standard_linear()),
    ]
    .into_iter()
    .map(|(label, value)| {
        MarketScenario::new(label, MarketCurves::new(value, DemandCurve::Uniform))
    })
    .collect();

    run_runtime_figure("fig13", &scenarios, max_k, &args.out).expect("figure 13");
    println!("\nSaved results/fig13_*.csv");
}
