//! Reproduces **Figure 14** (appendix): runtime / revenue / affordability
//! vs number of price values across FOUR demand shapes (concave value
//! curve).

use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::revenue_experiments::{run_runtime_figure, MarketScenario};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};

fn main() {
    let args = ExperimentArgs::from_env();
    let max_k = args.points.unwrap_or(if args.quick { 6 } else { 10 });

    let scenarios: Vec<MarketScenario> = [
        ("mid_peaked_demand", DemandCurve::MidPeaked { width: 0.15 }),
        (
            "bimodal_demand",
            DemandCurve::BimodalExtremes { width: 0.12 },
        ),
        ("decreasing_demand", DemandCurve::Decreasing),
        ("increasing_demand", DemandCurve::Increasing),
    ]
    .into_iter()
    .map(|(label, demand)| {
        MarketScenario::new(
            label,
            MarketCurves::new(ValueCurve::standard_concave(), demand),
        )
    })
    .collect();

    run_runtime_figure("fig14", &scenarios, max_k, &args.out).expect("figure 14");
    println!("\nSaved results/fig14_*.csv");
}
