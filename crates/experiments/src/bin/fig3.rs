//! Reproduces **Figure 3**: the error-monotonicity illustration.
//!
//! The left panel of Figure 3 shows an error-monotone price curve; the
//! right panel a non-monotone one with a "region of arbitrage": a point A
//! with both lower price and lower error than a point B means no rational
//! buyer picks B, and the whole shaded region is revenue the seller can
//! never collect. This binary constructs exactly that situation, quantifies
//! the dominated region, and shows the isotonic repair (the monotone
//! envelope the broker would post instead).

use nimbus_core::isotonic::isotonic_decreasing;
use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::report::{save_csv, TextTable};

fn main() {
    let args = ExperimentArgs::from_env();

    // Price as a function of ERROR (the figure's axes): should decrease.
    // Hand-crafted violation around errors 0.4-0.6 (price rises again).
    let errors: Vec<f64> = (1..=20).map(|i| i as f64 * 0.05).collect();
    let bad_prices: Vec<f64> = errors
        .iter()
        .map(|e| {
            let base = 100.0 * (1.0 - e);
            if (0.4..0.6).contains(e) {
                base + 35.0 // the non-monotone bump
            } else {
                base
            }
        })
        .collect();

    // Dominated points: some cheaper AND more accurate point exists.
    let mut dominated = vec![false; errors.len()];
    for i in 0..errors.len() {
        for j in 0..errors.len() {
            if errors[j] < errors[i] && bad_prices[j] < bad_prices[i] {
                dominated[i] = true;
                break;
            }
        }
    }

    // The repair: isotonic (decreasing in error) projection — the price
    // curve a monotonicity-aware broker would post.
    let weights = vec![1.0; errors.len()];
    let repaired = isotonic_decreasing(&bad_prices, &weights);

    let mut t = TextTable::new([
        "error",
        "price (non-monotone)",
        "dominated?",
        "repaired price",
    ]);
    let mut rows = Vec::new();
    for i in 0..errors.len() {
        t.row([
            format!("{:.2}", errors[i]),
            format!("{:.2}", bad_prices[i]),
            if dominated[i] {
                "YES".into()
            } else {
                String::new()
            },
            format!("{:.2}", repaired[i]),
        ]);
        rows.push(vec![
            errors[i],
            bad_prices[i],
            if dominated[i] { 1.0 } else { 0.0 },
            repaired[i],
        ]);
    }
    t.print("Figure 3: error monotonicity and the region of arbitrage");

    let n_dominated = dominated.iter().filter(|&&d| d).count();
    // Revenue the seller forfeits on dominated versions if buyers always
    // switch to a dominating point (uniform interest across versions).
    let forfeited: f64 = errors
        .iter()
        .zip(&bad_prices)
        .zip(&dominated)
        .filter(|(_, &d)| d)
        .map(|((e, p), _)| {
            let best_alternative = errors
                .iter()
                .zip(&bad_prices)
                .filter(|(e2, p2)| **e2 < *e && **p2 < *p)
                .map(|(_, p2)| *p2)
                .fold(f64::INFINITY, f64::min);
            p - best_alternative
        })
        .sum();
    println!(
        "\n{n_dominated}/{} versions are strictly dominated (the shaded region); \
         naive pricing forfeits {forfeited:.1} in list-price value across them.",
        errors.len()
    );
    println!(
        "The isotonic repair is monotone and loses nothing outside the bump — this is \
         why error monotonicity (Definition 2) is a hard requirement, and why it follows \
         from arbitrage-freeness (Lemma 1)."
    );

    save_csv(
        &args.out,
        "fig3",
        &["error", "price", "dominated", "repaired"],
        &rows,
    )
    .expect("csv");
    println!("Saved results/fig3.csv");
}
