//! Reproduces **Figure 5**: the worked revenue-optimization example.
//!
//! Instance: `a = (1,2,3,4)`, `b = (0.25, …)`, `v = (100, 150, 280, 350)`.
//! Panels: (a) pricing at the valuations creates arbitrage; (b)/(c)
//! constant and linear prices are arbitrage-free but leave revenue on the
//! table; (d) the exact subadditive optimum (coNP-hard in general, brute
//! force here); (e) the paper's polynomial-time approximation (Algorithm 1
//! DP) comes close.

use nimbus_core::arbitrage::find_attack;
use nimbus_core::pricing::PiecewiseLinearPricing;
use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::report::{save_csv, TextTable};
use nimbus_market::simulation::{compare_strategies, PricingStrategy};
use nimbus_optim::{revenue, RevenueProblem};

fn main() {
    let args = ExperimentArgs::from_env();
    let problem = RevenueProblem::figure5_example();

    // Panel (a): price at valuation — revenue if everyone bought, plus the
    // arbitrage attack that breaks it.
    let naive = problem.valuations();
    let naive_revenue = revenue(&naive, &problem).expect("aligned prices");
    let mut t = TextTable::new(["point a_j", "valuation v_j", "naive price"]);
    for (p, z) in problem.points().iter().zip(&naive) {
        t.row([format!("{}", p.a), format!("{}", p.v), format!("{}", z)]);
    }
    t.print("Figure 5(a): pricing at the valuations");
    println!("naive revenue (if honored): {naive_revenue}");

    let pricing = PiecewiseLinearPricing::new(
        problem
            .parameters()
            .into_iter()
            .zip(naive.iter().copied())
            .collect(),
    )
    .expect("valid points");
    match find_attack(&pricing, 3.0, &problem.parameters(), 300).expect("attack search") {
        Some(attack) => {
            println!(
                "ARBITRAGE: buying {:?} costs {} < posted p(3) = {} (savings {:.2})",
                attack.purchases,
                attack.total_cost,
                attack.target_price,
                attack.savings()
            );
        }
        None => println!("no arbitrage found (unexpected for this instance)"),
    }

    // Panels (b)-(e): strategy comparison including the brute force.
    let outcomes = compare_strategies(&problem, &PricingStrategy::ALL).expect("strategies");
    let mut t = TextTable::new(["strategy", "p(1)", "p(2)", "p(3)", "p(4)", "revenue"]);
    let mut csv_rows = Vec::new();
    for o in &outcomes {
        t.row([
            o.name.to_string(),
            format!("{:.2}", o.prices[0]),
            format!("{:.2}", o.prices[1]),
            format!("{:.2}", o.prices[2]),
            format!("{:.2}", o.prices[3]),
            format!("{:.2}", o.revenue),
        ]);
        let mut row = o.prices.clone();
        row.push(o.revenue);
        csv_rows.push(row);
    }
    t.print("Figure 5(b)-(e): arbitrage-free pricing strategies");

    let mbp = &outcomes[0];
    let milp = outcomes.iter().find(|o| o.name == "MILP").expect("MILP");
    println!(
        "\nexact subadditive optimum (d): {:.2}; Algorithm 1 approximation (e): {:.2} ({:.1}% of optimal, Prop. 3 guarantees ≥ 50%)",
        milp.revenue,
        mbp.revenue,
        100.0 * mbp.revenue / milp.revenue
    );

    save_csv(
        &args.out,
        "fig5",
        &["p1", "p2", "p3", "p4", "revenue"],
        &csv_rows,
    )
    .expect("csv");
    println!("Saved results/fig5.csv");
}
