//! Reproduces **Figure 6**: the error transformation curves.
//!
//! For each of the six datasets (Table 3), train the optimal model, then
//! for each inverse NCP `x ∈ [1, 100]` draw random noisy models from the
//! Gaussian mechanism and average their *test-set* error:
//!
//! * row 1 — square loss on the three regression datasets;
//! * row 2 — logistic loss on the three classification datasets;
//! * row 3 — 0/1 classification error on the same.
//!
//! The paper's claim verified here: every curve decreases monotonically in
//! `1/NCP` (equivalently, expected error increases with δ — Theorem 4),
//! including the non-convex 0/1 error, with a steep initial drop that
//! flattens near the optimal model.

use nimbus_core::{ErrorCurve, GaussianMechanism, Ncp};
use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_data::Task;
use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::report::{save_csv, TextTable};
use nimbus_ml::{
    metrics, LinearModel, LinearRegressionTrainer, LogisticRegressionTrainer, Trainer,
};
use nimbus_randkit::split_stream;

type EvalFn = Box<dyn Fn(&LinearModel) -> nimbus_core::Result<f64> + Sync>;

fn main() {
    let args = ExperimentArgs::from_env();
    let samples = args.effective_samples();
    let grid_points = args.points.unwrap_or(if args.quick { 8 } else { 25 });

    // x = 1/NCP grid over [1, 100] as in the figure's axes.
    let xs: Vec<f64> = (0..grid_points)
        .map(|i| 1.0 + 99.0 * i as f64 / (grid_points - 1).max(1) as f64)
        .collect();
    let deltas: Vec<Ncp> = xs
        .iter()
        .map(|&x| Ncp::new(1.0 / x).expect("positive"))
        .collect();

    println!(
        "Figure 6: error transformation curves ({samples} noisy models per NCP, {grid_points} grid points)"
    );

    for ds in PaperDataset::ALL {
        let spec = DatasetSpec::scaled(ds, args.dataset_rows());
        let (tt, _) = spec
            .materialize(split_stream(args.seed, ds as u64))
            .expect("materialize");
        let curve_seed = split_stream(args.seed, 100 + ds as u64);

        let (model, losses): (LinearModel, Vec<(&str, EvalFn)>) = match ds.task() {
            Task::Regression => {
                let model = LinearRegressionTrainer::ridge(1e-6)
                    .train(&tt.train)
                    .expect("train");
                let test = tt.test.clone();
                let eval: EvalFn = Box::new(move |h| metrics::mse(h, &test).map_err(Into::into));
                (model, vec![("square", eval)])
            }
            Task::BinaryClassification => {
                let model = LogisticRegressionTrainer::new(1e-4)
                    .train(&tt.train)
                    .expect("train");
                let test_a = tt.test.clone();
                let test_b = tt.test.clone();
                let log: EvalFn =
                    Box::new(move |h| metrics::log_loss(h, &test_a).map_err(Into::into));
                let zo: EvalFn =
                    Box::new(move |h| metrics::zero_one_error(h, &test_b).map_err(Into::into));
                (model, vec![("logistic", log), ("zero_one", zo)])
            }
        };
        run_dataset(ds, &model, losses, &deltas, samples, curve_seed, &args.out);
    }
    println!("\nSaved results/fig6_<dataset>_<loss>.csv");
}

fn run_dataset(
    ds: PaperDataset,
    model: &LinearModel,
    losses: Vec<(&str, EvalFn)>,
    deltas: &[Ncp],
    samples: usize,
    seed: u64,
    out_dir: &str,
) {
    for (loss_index, (loss_name, eval)) in losses.into_iter().enumerate() {
        // One seed stream per (dataset, loss); the parallel estimator is
        // bitwise-identical to the sequential one, so CSVs stay stable.
        let curve = ErrorCurve::estimate_parallel(
            &GaussianMechanism,
            model,
            eval,
            deltas,
            samples,
            split_stream(seed, loss_index as u64),
            None,
        )
        .expect("estimate");

        let mut t = TextTable::new(["1/NCP", "expected error", "std err", "smoothed"]);
        // Points come back sorted by δ ascending = 1/NCP descending; show
        // in increasing 1/NCP like the figure's x axis.
        let mut pts: Vec<_> = curve.points().to_vec();
        pts.reverse();
        for p in &pts {
            t.row([
                format!("{:.1}", p.inverse),
                format!("{:.4}", p.mean_error),
                format!("{:.4}", p.std_error),
                format!("{:.4}", p.smoothed_error),
            ]);
        }
        t.print(&format!("Figure 6: {} / {} loss", ds.name(), loss_name));

        // The monotonicity claim: the raw curve must be non-increasing in
        // 1/NCP up to Monte-Carlo jitter.
        let worst = pts
            .windows(2)
            .map(|w| w[1].mean_error - w[0].mean_error)
            .fold(0.0f64, f64::max);
        let range = pts[0].mean_error - pts[pts.len() - 1].mean_error;
        println!(
            "monotone in 1/NCP: worst upward jitter {:.4} over a total drop of {:.4} ({})",
            worst,
            range,
            if worst <= 0.05 * range.abs().max(1e-9) {
                "PASS"
            } else {
                "NOISY — increase --samples"
            }
        );

        let rows: Vec<Vec<f64>> = pts
            .iter()
            .map(|p| vec![p.inverse, p.mean_error, p.std_error, p.smoothed_error])
            .collect();
        save_csv(
            out_dir,
            &format!("fig6_{}_{}", ds.name().to_lowercase(), loss_name),
            &["inverse_ncp", "mean_error", "std_error", "smoothed_error"],
            &rows,
        )
        .expect("csv");
    }
}
