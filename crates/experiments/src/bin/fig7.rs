//! Reproduces **Figure 7**: revenue and affordability gains when the buyer
//! *demand* is fixed (uniform) and the buyer *value* curve varies between
//! convex (panel a/c/e/g) and concave (panel b/d/f/h).
//!
//! Expected shape (paper §6.2): on the convex curve MBP beats Lin by a
//! large factor (Lin misses mid-market buyers); on the concave curve MBP
//! matches the curve almost exactly (a concave curve is subadditive) while
//! the constant baselines leave revenue behind.

use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::revenue_experiments::{run_revenue_figure, MarketScenario};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};

fn main() {
    let args = ExperimentArgs::from_env();
    let n_points = args.points.unwrap_or(100);
    let buyers = args
        .buyers
        .unwrap_or(if args.quick { 1_000 } else { 20_000 });

    let scenarios = vec![
        MarketScenario::new(
            "convex_value",
            MarketCurves::new(ValueCurve::standard_convex(), DemandCurve::Uniform),
        ),
        MarketScenario::new(
            "concave_value",
            MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform),
        ),
    ];
    run_revenue_figure("fig7", &scenarios, n_points, buyers, args.seed, &args.out)
        .expect("figure 7");
    println!("\nSaved results/fig7_*.csv");
}
