//! Reproduces **Figure 8**: revenue and affordability gains when the buyer
//! *value* curve is fixed (concave) and the *demand* distribution varies:
//! most buyers mid-market (panels a/c/e/g) vs. buyers at the extremes
//! (panels b/d/f/h).
//!
//! Expected shape (paper §6.2): MBP adapts its price curve to where the
//! demand mass sits; Lin/MaxC/MedC cannot, and OptC's single price adapts
//! only weakly.

use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::revenue_experiments::{run_revenue_figure, MarketScenario};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};

fn main() {
    let args = ExperimentArgs::from_env();
    let n_points = args.points.unwrap_or(100);
    let buyers = args
        .buyers
        .unwrap_or(if args.quick { 1_000 } else { 20_000 });

    let scenarios = vec![
        MarketScenario::new(
            "mid_peaked_demand",
            MarketCurves::new(
                ValueCurve::standard_concave(),
                DemandCurve::MidPeaked { width: 0.15 },
            ),
        ),
        MarketScenario::new(
            "bimodal_demand",
            MarketCurves::new(
                ValueCurve::standard_concave(),
                DemandCurve::BimodalExtremes { width: 0.12 },
            ),
        ),
    ];
    run_revenue_figure("fig8", &scenarios, n_points, buyers, args.seed, &args.out)
        .expect("figure 8");
    println!("\nSaved results/fig8_*.csv");
}
