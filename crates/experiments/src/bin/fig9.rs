//! Reproduces **Figure 9**: runtime / revenue / affordability as the number
//! of price values grows, with the buyer distribution fixed (uniform) and
//! the value curve varied (convex vs concave).
//!
//! Expected shape (paper §6.3): the MILP brute force blows up exponentially
//! in the number of price values while the MBP dynamic program stays
//! microseconds-fast, at a revenue within a few percent of the exact
//! optimum (empirically far better than the factor-2 bound of Prop. 3).

use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::revenue_experiments::{run_runtime_figure, MarketScenario};
use nimbus_market::curves::{DemandCurve, MarketCurves, ValueCurve};

fn main() {
    let args = ExperimentArgs::from_env();
    let max_k = args.points.unwrap_or(if args.quick { 6 } else { 10 });

    let scenarios = vec![
        MarketScenario::new(
            "convex_value",
            MarketCurves::new(ValueCurve::standard_convex(), DemandCurve::Uniform),
        ),
        MarketScenario::new(
            "concave_value",
            MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform),
        ),
    ];
    run_runtime_figure("fig9", &scenarios, max_k, &args.out).expect("figure 9");
    println!("\nSaved results/fig9_*.csv");
}
