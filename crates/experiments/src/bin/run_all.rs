//! Runs every figure/table reproduction in sequence (at the current scale
//! flags) — the one-command regeneration entry point referenced by
//! EXPERIMENTS.md.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let binaries = [
        "table3",
        "fig3",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "ablation_fairness",
        "ablation_mechanisms",
    ];
    for bin in binaries {
        println!("\n############ running {bin} ############");
        let status = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} failed with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments completed; CSV artifacts under results/.");
}
