//! Reproduces **Table 3** (dataset statistics): task, dataset, n₁, n₂, d.
//!
//! With `--full` the stand-in generators are also materialized at a scaled
//! size and their empirical shapes verified; the printed table always shows
//! the paper's exact sizes.

use nimbus_data::catalog::{DatasetSpec, PaperDataset};
use nimbus_experiments::args::ExperimentArgs;
use nimbus_experiments::report::{save_csv, TextTable};

fn main() {
    let args = ExperimentArgs::from_env();

    let mut table = TextTable::new(["Task", "DataSet", "n1", "n2", "d"]);
    let mut rows = Vec::new();
    for ds in PaperDataset::ALL {
        let (n1, n2, d) = ds.paper_shape();
        table.row([
            ds.task().to_string(),
            ds.name().to_string(),
            n1.to_string(),
            n2.to_string(),
            d.to_string(),
        ]);
        rows.push(vec![n1 as f64, n2 as f64, d as f64]);
    }
    table.print("Table 3: Dataset Statistics");

    // Materialize each dataset (scaled) to prove the generators produce the
    // promised shapes and tasks.
    let mut check = TextTable::new(["DataSet", "rows generated", "d", "task", "positive rate"]);
    for ds in PaperDataset::ALL {
        let spec = DatasetSpec::scaled(ds, args.dataset_rows().min(5_000));
        let (tt, _) = spec.materialize(args.seed).expect("generator must succeed");
        let pos = tt
            .train
            .positive_rate()
            .map(|p| format!("{p:.3}"))
            .unwrap_or_else(|| "-".to_string());
        check.row([
            ds.name().to_string(),
            tt.total_len().to_string(),
            tt.train.num_features().to_string(),
            tt.train.task().to_string(),
            pos,
        ]);
    }
    check.print("Generator verification (scaled instantiation)");

    save_csv(&args.out, "table3", &["n1", "n2", "d"], &rows).expect("csv");
    println!("\nSaved results/table3.csv");
}
