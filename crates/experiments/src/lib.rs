//! Shared infrastructure for the figure/table reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md's per-experiment index). They share:
//!
//! * [`args`] — a tiny flag parser (`--points`, `--samples`, `--buyers`,
//!   `--seed`, `--out`, `--full`, `--quick`) so every binary runs at paper
//!   fidelity or laptop speed;
//! * [`report`] — aligned text tables for stdout plus CSV persistence under
//!   `results/`, so runs are both human-readable and machine-diffable;
//! * [`revenue_experiments`] — the shared engine behind Figures 7/8/11/12
//!   (revenue & affordability vs baselines) and 9/10/13/14 (runtime &
//!   revenue vs the brute force as the number of price values grows).

pub mod args;
pub mod report;
pub mod revenue_experiments;

/// Default directory for experiment outputs, relative to the workspace
/// root when run via `cargo run`.
pub const DEFAULT_RESULTS_DIR: &str = "results";
