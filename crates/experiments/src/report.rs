//! Text-table and CSV reporting for experiment outputs.

use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count; extra/missing cells are
    /// padded or truncated defensively).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            // Trim trailing alignment spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout with a title line.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Formats a ratio like the paper's bar annotations (`33.6x`).
pub fn ratio_label(ours: f64, theirs: f64) -> String {
    if theirs <= 0.0 {
        return "inf x".to_string();
    }
    format!("{:.1}x", ours / theirs)
}

/// Formats a duration in the figures' seconds-with-magnitude style.
pub fn seconds_label(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.2}us", s * 1e6)
    }
}

/// Persists a numeric series as CSV under `dir/name.csv`.
pub fn save_csv(
    dir: &str,
    name: &str,
    columns: &[&str],
    rows: &[Vec<f64>],
) -> nimbus_data::Result<std::path::PathBuf> {
    let path = Path::new(dir).join(format!("{name}.csv"));
    nimbus_data::csv::write_table_to_path(&path, columns, rows)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Values aligned at the same column.
        let c1 = lines[2].find('1').unwrap();
        let c2 = lines[3].find('2').unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn ratio_and_seconds_labels() {
        assert_eq!(ratio_label(100.0, 3.0), "33.3x");
        assert_eq!(ratio_label(1.0, 0.0), "inf x");
        assert_eq!(
            seconds_label(std::time::Duration::from_millis(2500)),
            "2.50s"
        );
        assert_eq!(
            seconds_label(std::time::Duration::from_micros(1500)),
            "1.50ms"
        );
        assert_eq!(
            seconds_label(std::time::Duration::from_nanos(800)),
            "0.80us"
        );
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("nimbus_report_test");
        let path = save_csv(
            dir.to_str().unwrap(),
            "series",
            &["x", "y"],
            &[vec![1.0, 2.0]],
        )
        .unwrap();
        let table = nimbus_data::csv::read_table_from_path(&path, true).unwrap();
        assert_eq!(table.columns, vec!["x", "y"]);
        assert_eq!(table.rows, vec![vec![1.0, 2.0]]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
