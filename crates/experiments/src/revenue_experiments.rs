//! Shared engines for the revenue/affordability figures (7, 8, 11, 12) and
//! the runtime figures (9, 10, 13, 14).

use crate::report::{ratio_label, save_csv, seconds_label, TextTable};
use nimbus_market::curves::MarketCurves;
use nimbus_market::simulation::{compare_strategies, PricingStrategy, StrategyOutcome};
use nimbus_market::{BuyerPopulation, MarketError};
use nimbus_optim::{PricePoint, RevenueProblem};
use nimbus_randkit::{seeded_rng, split_stream};

/// One market scenario (a value/demand curve pair) in a figure.
#[derive(Debug, Clone)]
pub struct MarketScenario {
    /// Panel label, e.g. `"convex_value_uniform_demand"`.
    pub label: String,
    /// The market curves of this panel.
    pub curves: MarketCurves,
}

impl MarketScenario {
    /// Creates a labeled scenario.
    pub fn new(label: impl Into<String>, curves: MarketCurves) -> Self {
        MarketScenario {
            label: label.into(),
            curves,
        }
    }
}

/// Runs one revenue/affordability figure: for each scenario, compares MBP
/// against the four baselines on the market-research demand model and on a
/// sampled buyer population, printing the paper-style tables and saving CSV
/// series. Returns the outcomes per scenario for downstream assertions.
pub fn run_revenue_figure(
    fig: &str,
    scenarios: &[MarketScenario],
    n_points: usize,
    buyers: usize,
    seed: u64,
    out_dir: &str,
) -> Result<Vec<(String, Vec<StrategyOutcome>)>, MarketError> {
    let mut all = Vec::new();
    for (si, scenario) in scenarios.iter().enumerate() {
        let problem = scenario.curves.build_problem(n_points)?;
        let outcomes = compare_strategies(&problem, &PricingStrategy::FAST)?;

        // Panel (a)/(b): the market curves themselves, sampled.
        let mut curve_table = TextTable::new(["1/NCP", "buyer value", "buyer demand"]);
        let stride = (n_points / 10).max(1);
        for p in problem.points().iter().step_by(stride) {
            curve_table.row([
                format!("{:.1}", p.a),
                format!("{:.2}", p.v),
                format!("{:.4}", p.b),
            ]);
        }
        curve_table.print(&format!(
            "{fig} ({label}): market research curves (value: {}, demand: {})",
            scenario.curves.value.name(),
            scenario.curves.demand.name(),
            label = scenario.label,
        ));

        // Panel (c)/(d): posted price curves per strategy.
        let mut price_table = TextTable::new(
            std::iter::once("1/NCP".to_string()).chain(outcomes.iter().map(|o| o.name.to_string())),
        );
        for (j, p) in problem.points().iter().enumerate().step_by(stride) {
            price_table.row(
                std::iter::once(format!("{:.1}", p.a))
                    .chain(outcomes.iter().map(|o| format!("{:.2}", o.prices[j]))),
            );
        }
        price_table.print(&format!("{fig} ({}): posted price curves", scenario.label));

        // Panels (e)-(h): revenue and affordability bars with the paper's
        // "N.Nx" gain annotations relative to each baseline.
        let mbp = &outcomes[0];
        let mut summary = TextTable::new([
            "strategy",
            "revenue",
            "MBP gain",
            "affordability",
            "MBP aff. gain",
        ]);
        for o in &outcomes {
            summary.row([
                o.name.to_string(),
                format!("{:.3}", o.revenue),
                if o.name == "MBP" {
                    "-".to_string()
                } else {
                    ratio_label(mbp.revenue, o.revenue)
                },
                format!("{:.3}", o.affordability),
                if o.name == "MBP" {
                    "-".to_string()
                } else {
                    ratio_label(mbp.affordability, o.affordability)
                },
            ]);
        }
        summary.print(&format!(
            "{fig} ({}): revenue and affordability",
            scenario.label
        ));

        // Realized-market Monte Carlo check.
        let mut rng = seeded_rng(split_stream(seed, si as u64));
        let pop = BuyerPopulation::sample(&problem, buyers, &mut rng)?;
        let mut realized = TextTable::new(["strategy", "realized rev/buyer", "realized afford."]);
        for o in &outcomes {
            let (rev, aff) = pop.evaluate_prices(&o.prices)?;
            realized.row([
                o.name.to_string(),
                format!("{:.3}", rev / buyers as f64),
                format!("{:.3}", aff),
            ]);
        }
        realized.print(&format!(
            "{fig} ({}): realized market with {buyers} sampled buyers",
            scenario.label
        ));

        // CSV artifacts.
        let price_rows: Vec<Vec<f64>> = problem
            .points()
            .iter()
            .enumerate()
            .map(|(j, p)| {
                let mut row = vec![p.a, p.v, p.b];
                row.extend(outcomes.iter().map(|o| o.prices[j]));
                row
            })
            .collect();
        let mut cols = vec!["inverse_ncp", "value", "demand"];
        cols.extend(outcomes.iter().map(|o| o.name));
        save_csv(
            out_dir,
            &format!("{fig}_{}_prices", scenario.label),
            &cols,
            &price_rows,
        )?;
        let summary_rows: Vec<Vec<f64>> = outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| vec![i as f64, o.revenue, o.affordability])
            .collect();
        save_csv(
            out_dir,
            &format!("{fig}_{}_summary", scenario.label),
            &["strategy_index", "revenue", "affordability"],
            &summary_rows,
        )?;

        all.push((scenario.label.clone(), outcomes));
    }
    Ok(all)
}

/// Builds the integer-grid problem used by the runtime figures: `k` price
/// values at `a_j = 10·j` (grid-rational for the brute force), valuations
/// from the scenario's value curve and masses from its demand curve.
pub fn integer_grid_problem(
    curves: &MarketCurves,
    k: usize,
) -> Result<RevenueProblem, MarketError> {
    let weights = curves.demand.weights(k)?;
    let points: Vec<PricePoint> = (0..k)
        .map(|j| {
            let t = if k == 1 {
                0.5
            } else {
                j as f64 / (k - 1) as f64
            };
            PricePoint {
                a: 10.0 * (j + 1) as f64,
                b: weights[j],
                v: curves.value.value_at(t),
            }
        })
        .collect();
    RevenueProblem::new(points).map_err(Into::into)
}

/// One row of a runtime figure: per-strategy runtime / revenue /
/// affordability at a given number of price values.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Number of price values `k`.
    pub k: usize,
    /// Outcomes for every strategy (MBP, the four baselines, MILP).
    pub outcomes: Vec<StrategyOutcome>,
}

/// Runs one runtime figure: sweeps `k = 1..=max_k` price values for each
/// scenario, timing MBP, the baselines and the exponential brute force.
pub fn run_runtime_figure(
    fig: &str,
    scenarios: &[MarketScenario],
    max_k: usize,
    out_dir: &str,
) -> Result<Vec<(String, Vec<RuntimeRow>)>, MarketError> {
    let mut all = Vec::new();
    for scenario in scenarios {
        let mut rows = Vec::new();
        for k in 1..=max_k {
            let problem = integer_grid_problem(&scenario.curves, k)?;
            let outcomes = compare_strategies(&problem, &PricingStrategy::ALL)?;
            rows.push(RuntimeRow { k, outcomes });
        }

        // Three tables per scenario: runtime, revenue, affordability.
        let names: Vec<&str> = rows[0].outcomes.iter().map(|o| o.name).collect();
        for (title, extract) in [
            (
                "runtime",
                Box::new(|o: &StrategyOutcome| seconds_label(o.runtime))
                    as Box<dyn Fn(&StrategyOutcome) -> String>,
            ),
            (
                "revenue",
                Box::new(|o: &StrategyOutcome| format!("{:.3}", o.revenue)),
            ),
            (
                "affordability",
                Box::new(|o: &StrategyOutcome| format!("{:.3}", o.affordability)),
            ),
        ] {
            let mut t = TextTable::new(
                std::iter::once("k".to_string()).chain(names.iter().map(|n| n.to_string())),
            );
            for row in &rows {
                t.row(std::iter::once(row.k.to_string()).chain(row.outcomes.iter().map(&extract)));
            }
            t.print(&format!(
                "{fig} ({}): {title} vs number of price values",
                scenario.label
            ));
        }

        // Headline claim of §6.3: the DP is orders of magnitude faster than
        // the brute force at the largest k.
        let last = rows.last().expect("at least one k");
        let mbp = &last.outcomes[0];
        let milp = last
            .outcomes
            .iter()
            .find(|o| o.name == "MILP")
            .expect("MILP included");
        println!(
            "\n{fig} ({}): at k={}, MBP={} vs MILP={} ({} speedup); revenue ratio MBP/MILP = {:.3}",
            scenario.label,
            last.k,
            seconds_label(mbp.runtime),
            seconds_label(milp.runtime),
            ratio_label(milp.runtime.as_secs_f64(), mbp.runtime.as_secs_f64()),
            mbp.revenue / milp.revenue.max(1e-12),
        );

        // CSV artifact: one row per (k, strategy).
        let csv_rows: Vec<Vec<f64>> = rows
            .iter()
            .flat_map(|row| {
                row.outcomes.iter().enumerate().map(move |(i, o)| {
                    vec![
                        row.k as f64,
                        i as f64,
                        o.runtime.as_secs_f64(),
                        o.revenue,
                        o.affordability,
                    ]
                })
            })
            .collect();
        save_csv(
            out_dir,
            &format!("{fig}_{}_runtime", scenario.label),
            &[
                "k",
                "strategy_index",
                "runtime_s",
                "revenue",
                "affordability",
            ],
            &csv_rows,
        )?;

        all.push((scenario.label.clone(), rows));
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_market::curves::{DemandCurve, ValueCurve};

    #[test]
    fn integer_grid_problem_is_grid_rational() {
        let curves = MarketCurves::new(ValueCurve::standard_convex(), DemandCurve::Uniform);
        let p = integer_grid_problem(&curves, 7).unwrap();
        assert_eq!(
            p.parameters(),
            vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0]
        );
        // Brute force must accept it.
        assert!(nimbus_optim::solve_revenue_brute_force(&p).is_ok());
    }

    #[test]
    fn revenue_figure_smoke() {
        let tmp = std::env::temp_dir().join("nimbus_fig_smoke");
        let scenarios = vec![MarketScenario::new(
            "convex",
            MarketCurves::new(ValueCurve::standard_convex(), DemandCurve::Uniform),
        )];
        let results =
            run_revenue_figure("figX", &scenarios, 20, 500, 1, tmp.to_str().unwrap()).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1.len(), 5);
        assert!(tmp.join("figX_convex_prices.csv").exists());
        assert!(tmp.join("figX_convex_summary.csv").exists());
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn runtime_figure_smoke() {
        let tmp = std::env::temp_dir().join("nimbus_runtime_smoke");
        let scenarios = vec![MarketScenario::new(
            "convex",
            MarketCurves::new(ValueCurve::standard_convex(), DemandCurve::Uniform),
        )];
        let results = run_runtime_figure("figY", &scenarios, 5, tmp.to_str().unwrap()).unwrap();
        assert_eq!(results[0].1.len(), 5);
        // MILP revenue ≥ MBP revenue ≥ MILP/2 at every k.
        for row in &results[0].1 {
            let mbp = &row.outcomes[0];
            let milp = row.outcomes.iter().find(|o| o.name == "MILP").unwrap();
            assert!(mbp.revenue <= milp.revenue + 1e-9);
            assert!(mbp.revenue >= milp.revenue / 2.0 - 1e-9);
        }
        std::fs::remove_dir_all(&tmp).ok();
    }
}
