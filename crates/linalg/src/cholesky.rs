//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The broker's one-time training cost for ridge / ordinary least squares is
//! dominated by solving the normal equations `(XᵀX + μI) w = Xᵀy`. The system
//! matrix is symmetric positive definite whenever `μ > 0` (or `X` has full
//! column rank), which makes Cholesky the canonical solver: `O(d³/3)` flops,
//! unconditionally stable, no pivoting.

use crate::triangular::{solve_lower, solve_lower_transposed};
use crate::{LinalgError, Matrix, Result, Vector};

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read, so callers may pass a matrix
    /// whose upper triangle is garbage (e.g. a partially assembled Gram
    /// matrix). Returns [`LinalgError::NotPositiveDefinite`] when a pivot is
    /// non-positive, which for the normal equations signals collinear
    /// features and no (or insufficient) regularization.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { op: "cholesky" });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorizes `a`, retrying with exponentially growing diagonal jitter
    /// when `a` is numerically semi-definite. Returns the factorization and
    /// the jitter that was finally added (0.0 when none was needed).
    ///
    /// This is the trainer-facing entry point: with float rounding a Gram
    /// matrix of nearly collinear features can have a tiny negative pivot
    /// even though the exact matrix is PSD.
    pub fn factor_with_jitter(a: &Matrix, max_attempts: usize) -> Result<(Self, f64)> {
        match Cholesky::factor(a) {
            Ok(c) => return Ok((c, 0.0)),
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            Err(e) => return Err(e),
        }
        // Scale the initial jitter with the matrix magnitude so that it is
        // meaningful for both tiny and huge Gram matrices.
        let scale = a.frobenius_norm().max(1.0);
        let mut jitter = scale * 1e-12;
        for _ in 0..max_attempts {
            let mut aj = a.clone();
            aj.add_diagonal(jitter)?;
            match Cholesky::factor(&aj) {
                Ok(c) => return Ok((c, jitter)),
                Err(LinalgError::NotPositiveDefinite { .. }) => jitter *= 10.0,
                Err(e) => return Err(e),
            }
        }
        Err(LinalgError::NotPositiveDefinite {
            pivot: 0,
            value: jitter,
        })
    }

    /// The lower-triangular factor `L`.
    pub fn factor_matrix(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via the two triangular solves `L y = b`, `Lᵀ x = y`.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let y = solve_lower(&self.l, b)?;
        solve_lower_transposed(&self.l, &y)
    }

    /// Log-determinant of `A`, i.e. `2 Σ log L_ii`. Useful as a conditioning
    /// diagnostic for the trained system.
    pub fn log_det(&self) -> f64 {
        let n = self.l.rows();
        (0..n).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }

    /// Reconstructs `A = L Lᵀ` (testing / diagnostics only — `O(n³)`).
    pub fn reconstruct(&self) -> Matrix {
        let lt = self.l.transposed();
        self.l.matmul(&lt).expect("square factors always multiply")
    }
}

/// One-shot convenience: solves the SPD system `A x = b`.
pub fn solve_spd(a: &Matrix, b: &Vector) -> Result<Vector> {
    Cholesky::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for a fixed B, hence strictly positive definite.
        let b = Matrix::from_row_major(3, 3, vec![1.0, 2.0, 0.0, 0.5, 1.0, 1.0, -1.0, 0.0, 2.0])
            .unwrap();
        let mut a = b.matmul(&b.transposed()).unwrap();
        a.add_diagonal(1.0).unwrap();
        a
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let r = c.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!((a.get(i, j) - r.get(i, j)).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd3();
        let x_true = Vector::from_vec(vec![1.0, -2.0, 3.0]);
        let b = a.matvec(&x_true).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_non_finite() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_err());
        let mut a = Matrix::identity(2);
        a.set(0, 0, f64::NAN);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn jitter_recovers_semidefinite() {
        // Rank-1 PSD matrix: exactly semi-definite, plain factor fails.
        let a = Matrix::from_row_major(2, 2, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(Cholesky::factor(&a).is_err());
        let (c, jitter) = Cholesky::factor_with_jitter(&a, 30).unwrap();
        assert!(jitter > 0.0);
        // The jittered factor still approximately solves against A + jitter I.
        let b = Vector::from_vec(vec![2.0, 2.0]);
        let x = c.solve(&b).unwrap();
        assert!(x.is_finite());
    }

    #[test]
    fn jitter_zero_for_pd_input() {
        let a = spd3();
        let (_, jitter) = Cholesky::factor_with_jitter(&a, 5).unwrap();
        assert_eq!(jitter, 0.0);
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let c = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!(c.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_scales() {
        let a = Matrix::identity(3).scaled(4.0);
        let c = Cholesky::factor(&a).unwrap();
        assert!((c.log_det() - 3.0 * 4.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn only_lower_triangle_is_read() {
        let mut a = spd3();
        // Poison the strict upper triangle; factorization must not care.
        a.set(0, 1, 999.0);
        a.set(0, 2, -999.0);
        a.set(1, 2, 42.0);
        let c = Cholesky::factor(&a).unwrap();
        let r = c.reconstruct();
        // Lower triangle of reconstruction matches the lower triangle input.
        for i in 0..3 {
            for j in 0..=i {
                assert!((a.get(i, j) - r.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn large_random_like_system() {
        // Deterministic pseudo-random SPD system of moderate size.
        let n = 24;
        let mut b = Matrix::zeros(n, n);
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in 0..n {
            for j in 0..n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                b.set(i, j, u - 0.5);
            }
        }
        let mut a = b.matmul(&b.transposed()).unwrap();
        a.add_diagonal(0.5).unwrap();
        let x_true = Vector::from_vec((0..n).map(|i| (i as f64 * 0.37).sin()).collect());
        let rhs = a.matvec(&x_true).unwrap();
        let x = solve_spd(&a, &rhs).unwrap();
        let err = x.sub(&x_true).unwrap().norm_inf();
        assert!(err < 1e-8, "residual too large: {err}");
    }
}
