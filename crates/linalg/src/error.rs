//! Error type shared by all fallible linear-algebra operations.

use std::fmt;

/// Errors produced by dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes. Carries the human-readable
    /// operation name and both shapes as `(rows, cols)`; vectors report
    /// `(len, 1)`.
    ShapeMismatch {
        /// Name of the operation that failed (e.g. `"matvec"`).
        op: &'static str,
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// A factorization required a (strictly) positive-definite matrix but the
    /// input was not, detected at the given pivot index.
    NotPositiveDefinite {
        /// Pivot index where positive-definiteness failed.
        pivot: usize,
        /// The offending diagonal value after elimination.
        value: f64,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Observed number of rows.
        rows: usize,
        /// Observed number of columns.
        cols: usize,
    },
    /// A dimension argument was zero or otherwise unusable.
    EmptyDimension {
        /// Name of the operation that rejected the input.
        op: &'static str,
    },
    /// A triangular solve hit a zero (or non-finite) diagonal entry.
    SingularDiagonal {
        /// Index of the singular diagonal entry.
        index: usize,
    },
    /// An input contained NaN or infinity where finite values are required.
    NonFinite {
        /// Name of the operation that rejected the input.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value}"
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::EmptyDimension { op } => {
                write!(f, "operation {op} requires non-empty dimensions")
            }
            LinalgError::SingularDiagonal { index } => {
                write!(f, "singular diagonal entry at index {index}")
            }
            LinalgError::NonFinite { op } => {
                write!(f, "operation {op} received non-finite input")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matvec",
            left: (3, 4),
            right: (5, 1),
        };
        let s = e.to_string();
        assert!(s.contains("matvec"));
        assert!(s.contains("3x4"));
        assert!(s.contains("5x1"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(LinalgError::NonFinite { op: "dot" });
        assert!(e.to_string().contains("dot"));
    }
}
