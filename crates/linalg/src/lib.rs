//! Dense linear algebra substrate for the Nimbus model-based pricing system.
//!
//! The Nimbus broker trains convex linear models (ordinary least squares /
//! ridge regression via the normal equations, logistic regression via damped
//! Newton steps) and the Gaussian noise mechanism perturbs model vectors in
//! `R^d`. Everything those code paths need — dense vectors and matrices,
//! Gram-matrix assembly, Cholesky factorization, and triangular solves — is
//! implemented here from scratch with no external numeric dependencies.
//!
//! Design notes:
//!
//! * Storage is `f64` throughout: the paper's models are small (`d` in the
//!   tens), so numerical head-room matters more than memory.
//! * [`Matrix`] is row-major, which matches the row-at-a-time access pattern
//!   of dataset scans in `nimbus-data` and keeps Gram-matrix assembly cache
//!   friendly.
//! * All fallible operations return [`LinalgError`] rather than panicking, so
//!   callers (e.g. the broker) can surface degenerate training data as a
//!   market error instead of aborting.

pub mod cholesky;
pub mod error;
pub mod matrix;
pub mod triangular;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use vector::Vector;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Absolute tolerance used by approximate comparisons in tests and
/// diagnostics. Chosen to be loose enough for accumulated rounding across
/// `O(d^3)` factorizations at the dimensions Nimbus uses (`d <= 128`).
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` when `a` and `b` are within `tol` of each other, treating
/// non-finite inputs as never approximately equal.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    a.is_finite() && b.is_finite() && (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_rejects_non_finite() {
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
        assert!(!approx_eq(f64::INFINITY, f64::INFINITY, 1.0));
    }
}
