//! Dense row-major `f64` matrix.

use crate::vector::dot_slices;
use crate::{LinalgError, Result, Vector};

/// A dense row-major matrix.
///
/// Row-major layout is deliberate: datasets in `nimbus-data` are scanned one
/// labeled example (row) at a time, and Gram-matrix assembly (`XᵀX`) walks
/// rows sequentially, so this layout keeps the training hot loops on
/// contiguous memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data. Errors when `data.len() !=
    /// rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_row_major",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a slice of equal-length rows. Errors if the rows
    /// are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    op: "from_rows",
                    left: (i, cols),
                    right: (i, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Entry at `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = value;
    }

    /// Immutable view of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    pub fn col(&self, j: usize) -> Vector {
        debug_assert!(j < self.cols);
        Vector::from_vec((0..self.rows).map(|i| self.get(i, j)).collect())
    }

    /// Immutable view of the full row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector> {
        if self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        let xs = x.as_slice();
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            out.push(dot_slices(self.row(i), xs));
        }
        Ok(Vector::from_vec(out))
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    pub fn matvec_transposed(&self, x: &Vector) -> Result<Vector> {
        if self.rows != x.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_transposed",
                left: (self.cols, self.rows),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, r) in out.iter_mut().zip(row.iter()) {
                *o += xi * r;
            }
        }
        Ok(Vector::from_vec(out))
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps both `self` and `other` accesses sequential.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(other_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Gram matrix `selfᵀ * self`, assembled row-at-a-time as a sum of outer
    /// products. Only the upper triangle is computed and then mirrored,
    /// halving the work; the result is symmetric by construction.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut g = Matrix::zeros(d, d);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..d {
                let ra = row[a];
                if ra == 0.0 {
                    continue;
                }
                let grow = g.row_mut(a);
                for b in a..d {
                    grow[b] += ra * row[b];
                }
            }
        }
        for a in 0..d {
            for b in 0..a {
                let v = g.get(b, a);
                g.set(a, b, v);
            }
        }
        g
    }

    /// Adds `alpha` to every diagonal entry in place (ridge regularization /
    /// positive-definiteness jitter). Errors when the matrix is not square.
    pub fn add_diagonal(&mut self, alpha: f64) -> Result<()> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        for i in 0..self.rows {
            let v = self.get(i, i);
            self.set(i, i, v + alpha);
        }
        Ok(())
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "matrix add",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self * alpha` as a new matrix.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * alpha).collect(),
        }
    }

    /// Maximum absolute asymmetry `max |A_ij - A_ji|`; 0 for symmetric
    /// matrices. Errors when the matrix is not square.
    pub fn asymmetry(&self) -> Result<f64> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in 0..i {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        Ok(worst)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        dot_slices(&self.data, &self.data).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1).as_slice(), &[2.0, 5.0]);
    }

    #[test]
    fn from_row_major_rejects_bad_length() {
        assert!(Matrix::from_row_major(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i3 = Matrix::identity(3);
        let x = Vector::from_vec(vec![1.0, -2.0, 3.0]);
        assert_eq!(i3.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = sample();
        let x = Vector::from_vec(vec![1.0, 0.0, -1.0]);
        assert_eq!(m.matvec(&x).unwrap().as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = sample();
        let x = Vector::from_vec(vec![2.0, -1.0]);
        let a = m.matvec_transposed(&x).unwrap();
        let b = m.transposed().matvec(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Matrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_row_major(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn gram_matches_transpose_matmul() {
        let m = sample();
        let g = m.gram();
        let expected = m.transposed().matmul(&m).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g.get(i, j) - expected.get(i, j)).abs() < 1e-12);
            }
        }
        assert_eq!(g.asymmetry().unwrap(), 0.0);
    }

    #[test]
    fn add_diagonal_ridge() {
        let mut m = Matrix::identity(2);
        m.add_diagonal(0.5).unwrap();
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 1), 1.5);
        assert_eq!(m.get(0, 1), 0.0);
        let mut r = Matrix::zeros(2, 3);
        assert!(r.add_diagonal(1.0).is_err());
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::identity(2);
        let b = a.scaled(3.0);
        let c = a.add(&b).unwrap();
        assert_eq!(c.get(0, 0), 4.0);
        assert_eq!(c.get(0, 1), 0.0);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_from_rows() {
        let m = Matrix::from_rows(&[]).unwrap();
        assert_eq!(m.shape(), (0, 0));
    }

    #[test]
    fn is_finite_detects_inf() {
        let mut m = Matrix::zeros(1, 2);
        assert!(m.is_finite());
        m.set(0, 1, f64::INFINITY);
        assert!(!m.is_finite());
    }
}
