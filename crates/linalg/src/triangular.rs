//! Forward and backward substitution for triangular systems.
//!
//! These are the building blocks of the Cholesky solve used by the ridge /
//! ordinary-least-squares trainer and by Newton steps in logistic regression.

use crate::{LinalgError, Matrix, Result, Vector};

/// Relative threshold under which a diagonal entry is treated as singular.
const SINGULAR_EPS: f64 = 1e-300;

/// Solves `L y = b` where `L` is lower triangular (only the lower triangle of
/// the given square matrix is read).
pub fn solve_lower(l: &Matrix, b: &Vector) -> Result<Vector> {
    let n = check_square(l)?;
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_lower",
            left: (n, n),
            right: (b.len(), 1),
        });
    }
    let mut y = vec![0.0; n];
    for i in 0..n {
        let row = l.row(i);
        let mut acc = b[i];
        for (j, yj) in y.iter().enumerate().take(i) {
            acc -= row[j] * yj;
        }
        let d = row[i];
        if !d.is_finite() || d.abs() < SINGULAR_EPS {
            return Err(LinalgError::SingularDiagonal { index: i });
        }
        y[i] = acc / d;
    }
    Ok(Vector::from_vec(y))
}

/// Solves `Lᵀ x = y` where `L` is lower triangular, i.e. an upper-triangular
/// solve against the transpose without materializing it.
pub fn solve_lower_transposed(l: &Matrix, y: &Vector) -> Result<Vector> {
    let n = check_square(l)?;
    if y.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_lower_transposed",
            left: (n, n),
            right: (y.len(), 1),
        });
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for (j, xj) in x.iter().enumerate().skip(i + 1) {
            // (Lᵀ)_{i,j} = L_{j,i}
            acc -= l.get(j, i) * xj;
        }
        let d = l.get(i, i);
        if !d.is_finite() || d.abs() < SINGULAR_EPS {
            return Err(LinalgError::SingularDiagonal { index: i });
        }
        x[i] = acc / d;
    }
    Ok(Vector::from_vec(x))
}

/// Solves `U x = b` where `U` is upper triangular (only the upper triangle is
/// read).
pub fn solve_upper(u: &Matrix, b: &Vector) -> Result<Vector> {
    let n = check_square(u)?;
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_upper",
            left: (n, n),
            right: (b.len(), 1),
        });
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let row = u.row(i);
        let mut acc = b[i];
        for (j, xj) in x.iter().enumerate().skip(i + 1) {
            acc -= row[j] * xj;
        }
        let d = row[i];
        if !d.is_finite() || d.abs() < SINGULAR_EPS {
            return Err(LinalgError::SingularDiagonal { index: i });
        }
        x[i] = acc / d;
    }
    Ok(Vector::from_vec(x))
}

fn check_square(m: &Matrix) -> Result<usize> {
    if m.rows() != m.cols() {
        return Err(LinalgError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    Ok(m.rows())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower() -> Matrix {
        Matrix::from_row_major(3, 3, vec![2.0, 0.0, 0.0, 1.0, 3.0, 0.0, -1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn lower_solve_roundtrip() {
        let l = lower();
        let x_true = Vector::from_vec(vec![1.0, -2.0, 0.5]);
        let b = l.matvec(&x_true).unwrap();
        let x = solve_lower(&l, &b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn lower_transposed_solve_roundtrip() {
        let l = lower();
        let x_true = Vector::from_vec(vec![0.3, 1.0, -0.7]);
        let b = l.transposed().matvec(&x_true).unwrap();
        let x = solve_lower_transposed(&l, &b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_solve_roundtrip() {
        let u = lower().transposed();
        let x_true = Vector::from_vec(vec![2.0, 0.0, -1.0]);
        let b = u.matvec(&x_true).unwrap();
        let x = solve_upper(&u, &b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_diagonal_is_reported() {
        let l = Matrix::from_row_major(2, 2, vec![1.0, 0.0, 5.0, 0.0]).unwrap();
        let b = Vector::from_vec(vec![1.0, 1.0]);
        assert!(matches!(
            solve_lower(&l, &b),
            Err(LinalgError::SingularDiagonal { index: 1 })
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        let m = Matrix::zeros(2, 3);
        let b = Vector::zeros(2);
        assert!(matches!(
            solve_lower(&m, &b),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let l = lower();
        let b = Vector::zeros(2);
        assert!(solve_lower(&l, &b).is_err());
        assert!(solve_upper(&l, &b).is_err());
        assert!(solve_lower_transposed(&l, &b).is_err());
    }
}
