//! Dense `f64` vector with the BLAS-1 style operations Nimbus needs.

use crate::{LinalgError, Result};

/// A dense, heap-allocated vector of `f64` values.
///
/// `Vector` is the representation of ML model instances throughout Nimbus: an
/// instance of a linear model over `d` features is exactly a point in `R^d`
/// (optionally `R^{d+1}` with an intercept), and the Gaussian mechanism
/// perturbs these coordinates directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector from raw data.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Vector { data }
    }

    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Vector {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of `len` copies of `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Vector {
            data: vec![value; len],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns entry `i`, panicking on out-of-bounds (mirrors slice indexing).
    pub fn get(&self, i: usize) -> f64 {
        self.data[i]
    }

    /// Sets entry `i`, panicking on out-of-bounds.
    pub fn set(&mut self, i: usize, value: f64) {
        self.data[i] = value;
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Dot product `self · other`.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "dot",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(dot_slices(&self.data, &other.data))
    }

    /// Euclidean (L2) norm.
    pub fn norm2(&self) -> f64 {
        dot_slices(&self.data, &self.data).sqrt()
    }

    /// Squared Euclidean norm — the paper's square loss `ε_s` is exactly
    /// `‖h − h*‖₂²`, so this is on the hot path of error estimation.
    pub fn norm2_squared(&self) -> f64 {
        dot_slices(&self.data, &self.data)
    }

    /// L1 norm.
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Max (infinity) norm; returns 0 for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Vector) -> Result<Vector> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Vector) -> Result<Vector> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// In-place `self += alpha * other` (the classic `axpy`).
    pub fn axpy(&mut self, alpha: f64, other: &Vector) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "axpy",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self * alpha` as a new vector.
    pub fn scaled(&self, alpha: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|v| v * alpha).collect(),
        }
    }

    /// Scales in place by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Squared Euclidean distance to `other`.
    pub fn distance_squared(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "distance_squared",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }

    /// Arithmetic mean of the entries; `None` for the empty vector.
    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            None
        } else {
            Some(self.data.iter().sum::<f64>() / self.data.len() as f64)
        }
    }

    fn zip_with(
        &self,
        other: &Vector,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                op,
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(Vector {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector::from_vec(data)
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

/// Dot product over raw slices. Accumulates in four independent lanes so the
/// compiler can keep the reduction pipelined; this is the single hottest
/// kernel in Gram-matrix assembly.
pub fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        acc[0] += a[base] * b[base];
        acc[1] += a[base + 1] * b[base + 1];
        acc[2] += a[base + 2] * b[base + 2];
        acc[3] += a[base + 3] * b[base + 3];
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        total += a[i] * b[i];
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut v = Vector::zeros(3);
        assert_eq!(v.len(), 3);
        v.set(1, 2.5);
        assert_eq!(v.get(1), 2.5);
        assert_eq!(v[1], 2.5);
        v[2] = -1.0;
        assert_eq!(v.as_slice(), &[0.0, 2.5, -1.0]);
    }

    #[test]
    fn filled_vector() {
        let v = Vector::filled(4, 7.0);
        assert_eq!(v.as_slice(), &[7.0; 4]);
    }

    #[test]
    fn dot_product_matches_manual() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = Vector::from_vec(vec![5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a.dot(&b).unwrap(), 5.0 + 8.0 + 9.0 + 8.0 + 5.0);
    }

    #[test]
    fn dot_shape_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::ShapeMismatch { op: "dot", .. })
        ));
    }

    #[test]
    fn norms() {
        let v = Vector::from_vec(vec![3.0, -4.0]);
        assert!((v.norm2() - 5.0).abs() < 1e-12);
        assert!((v.norm2_squared() - 25.0).abs() < 1e-12);
        assert!((v.norm1() - 7.0).abs() < 1e-12);
        assert!((v.norm_inf() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_vector_norms_are_zero() {
        let v = Vector::zeros(0);
        assert_eq!(v.norm2(), 0.0);
        assert_eq!(v.norm_inf(), 0.0);
        assert!(v.mean().is_none());
    }

    #[test]
    fn add_sub_axpy() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![3.0, 5.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.as_slice(), &[7.0, 12.0]);
    }

    #[test]
    fn scaled_and_scale() {
        let v = Vector::from_vec(vec![1.0, -2.0]);
        assert_eq!(v.scaled(-3.0).as_slice(), &[-3.0, 6.0]);
        let mut w = v.clone();
        w.scale(0.5);
        assert_eq!(w.as_slice(), &[0.5, -1.0]);
    }

    #[test]
    fn distance_squared_matches_norm_of_difference() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Vector::from_vec(vec![0.0, 4.0, 1.0]);
        let d = a.distance_squared(&b).unwrap();
        let diff = a.sub(&b).unwrap();
        assert!((d - diff.norm2_squared()).abs() < 1e-12);
    }

    #[test]
    fn is_finite_detects_nan() {
        let v = Vector::from_vec(vec![1.0, f64::NAN]);
        assert!(!v.is_finite());
        let w = Vector::from_vec(vec![1.0, 2.0]);
        assert!(w.is_finite());
    }

    #[test]
    fn mean_of_values() {
        let v = Vector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.mean(), Some(2.5));
    }

    #[test]
    fn dot_slices_handles_non_multiple_of_four() {
        for n in 0..9 {
            let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let b: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
            let expected: f64 = (0..n).map(|i| (i * i * 2) as f64).sum();
            assert_eq!(dot_slices(&a, &b), expected, "n={n}");
        }
    }
}
