//! Property-based tests for the dense linear-algebra substrate.

use nimbus_linalg::cholesky::{solve_spd, Cholesky};
use nimbus_linalg::{Matrix, Vector};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, len)
}

proptest! {
    #[test]
    fn dot_is_commutative(a in finite_vec(16), b in finite_vec(16)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let ab = va.dot(&vb).unwrap();
        let ba = vb.dot(&va).unwrap();
        prop_assert!((ab - ba).abs() <= 1e-9 * (1.0 + ab.abs()));
    }

    #[test]
    fn dot_is_bilinear(a in finite_vec(8), b in finite_vec(8), alpha in -10.0..10.0f64) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let lhs = va.scaled(alpha).dot(&vb).unwrap();
        let rhs = alpha * va.dot(&vb).unwrap();
        prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + rhs.abs()));
    }

    #[test]
    fn cauchy_schwarz(a in finite_vec(12), b in finite_vec(12)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let dot = va.dot(&vb).unwrap().abs();
        let bound = va.norm2() * vb.norm2();
        prop_assert!(dot <= bound * (1.0 + 1e-9) + 1e-9);
    }

    #[test]
    fn triangle_inequality(a in finite_vec(10), b in finite_vec(10)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let sum = va.add(&vb).unwrap();
        prop_assert!(sum.norm2() <= va.norm2() + vb.norm2() + 1e-9);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(rows in 1usize..12, cols in 1usize..8, seed in 0u64..1000) {
        // Deterministic fill from the seed keeps the case reproducible.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.push(((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0);
        }
        let m = Matrix::from_row_major(rows, cols, data).unwrap();
        let g = m.gram();
        prop_assert!(g.asymmetry().unwrap() < 1e-12);
        for j in 0..cols {
            prop_assert!(g.get(j, j) >= -1e-12, "gram diagonal must be non-negative");
        }
    }

    #[test]
    fn spd_solve_residual_is_small(n in 1usize..10, seed in 0u64..500) {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
        let mut data = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.push(((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5);
        }
        let b = Matrix::from_row_major(n, n, data).unwrap();
        let mut a = b.matmul(&b.transposed()).unwrap();
        a.add_diagonal(1.0).unwrap();

        let x_true = Vector::from_vec((0..n).map(|i| (i as f64).cos()).collect());
        let rhs = a.matvec(&x_true).unwrap();
        let x = solve_spd(&a, &rhs).unwrap();
        let resid = a.matvec(&x).unwrap().sub(&rhs).unwrap().norm_inf();
        prop_assert!(resid < 1e-7, "residual {resid}");
    }

    #[test]
    fn cholesky_reconstruction(n in 1usize..8, seed in 0u64..300) {
        let mut state = seed.wrapping_add(99).wrapping_mul(0x9e3779b97f4a7c15);
        let mut data = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.push(((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5);
        }
        let b = Matrix::from_row_major(n, n, data).unwrap();
        let mut a = b.matmul(&b.transposed()).unwrap();
        a.add_diagonal(0.5).unwrap();
        let c = Cholesky::factor(&a).unwrap();
        let r = c.reconstruct();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((a.get(i, j) - r.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matvec_linearity(rows in 1usize..6, cols in 1usize..6, alpha in -5.0..5.0f64, seed in 0u64..200) {
        let total = rows * cols;
        let mut state = seed.wrapping_add(3).wrapping_mul(0x9e3779b97f4a7c15);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let m = Matrix::from_row_major(rows, cols, (0..total).map(|_| next()).collect()).unwrap();
        let x = Vector::from_vec((0..cols).map(|_| next()).collect());
        let y = Vector::from_vec((0..cols).map(|_| next()).collect());
        let combined = m.matvec(&x.add(&y.scaled(alpha)).unwrap()).unwrap();
        let separate = m
            .matvec(&x)
            .unwrap()
            .add(&m.matvec(&y).unwrap().scaled(alpha))
            .unwrap();
        for i in 0..rows {
            prop_assert!((combined[i] - separate[i]).abs() < 1e-8);
        }
    }
}
