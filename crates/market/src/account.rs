//! Per-buyer noise-budget accounts.
//!
//! Repeat purchases of the same listing compose: a buyer who buys k cheap
//! noisy instances can average them into a better effective model than any
//! single instance they paid for (the multi-purchase analogue of Theorem
//! 5's subadditivity — averaging k instances at inverse NCP `x` yields
//! effective precision `k·x`). The broker therefore meters each buyer's
//! *cumulative precision* `Σ xᵢ` per listing and refuses commits that would
//! push it past the listing's configured budget.
//!
//! The charge is enforced **before** the durability barrier: a commit first
//! charges the account, then journals; if the journal append fails the
//! charge is refunded, and an over-budget commit is rejected with
//! [`crate::MarketError::BudgetExhausted`] before any journal write.
//! Duplicate-nonce retries replay the journalled sale and never reach the
//! charge path, so an account is charged exactly once per acknowledged
//! sale. Crash-safety comes from the journal: `SALE_BUYER` records replay
//! into the same cumulative spend at `Journal::open`.

use crate::error::MarketError;
use crate::Result;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Relative slack on the budget comparison so float accumulation noise in
/// `Σ xᵢ` cannot spuriously reject a purchase the budget exactly covers.
const BUDGET_SLACK: f64 = 1e-9;

/// Thread-safe per-buyer cumulative-precision ledger for one listing.
///
/// `budget = None` disables enforcement (accounts still accumulate, so
/// `account <buyer>` queries and stats work either way). Anonymous commits
/// (no buyer identity) bypass the ledger entirely for backward
/// compatibility with pre-accounting clients.
#[derive(Debug)]
pub struct BuyerAccounts {
    /// Per-buyer cap on cumulative precision `Σ x`; `None` = unlimited.
    budget: Option<f64>,
    /// Buyer → precision spent so far (including in-flight charges).
    spent: Mutex<BTreeMap<u64, f64>>,
    /// Commits rejected for budget exhaustion since startup.
    budget_rejects: AtomicU64,
}

impl BuyerAccounts {
    /// A fresh ledger with the given per-buyer budget.
    pub fn new(budget: Option<f64>) -> Self {
        BuyerAccounts {
            budget,
            spent: Mutex::new(BTreeMap::new()),
            budget_rejects: AtomicU64::new(0),
        }
    }

    /// Seeds replayed spend (journal recovery) into the ledger.
    pub fn seed(&self, accounts: &[(u64, f64)]) {
        let mut spent = self.lock_spent();
        for &(buyer, x) in accounts {
            // nimbus-audit: allow(money-safety) — replayed amounts come from journal records validated finite at commit time
            *spent.entry(buyer).or_insert(0.0) += x;
        }
    }

    fn lock_spent(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, f64>> {
        // The map is a plain value store; recover from peer panics.
        self.spent.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The configured per-buyer budget.
    pub fn budget(&self) -> Option<f64> {
        self.budget
    }

    /// Charges `x` precision to `buyer`, or rejects with
    /// [`MarketError::BudgetExhausted`] if the budget cannot cover it.
    /// The check-and-charge is atomic under the ledger lock, so racing
    /// commits cannot jointly overdraw an account.
    pub fn charge(&self, buyer: u64, x: f64) -> Result<()> {
        let mut spent = self.lock_spent();
        let entry = spent.entry(buyer).or_insert(0.0);
        if let Some(budget) = self.budget {
            if *entry + x > budget * (1.0 + BUDGET_SLACK) + BUDGET_SLACK {
                let remaining = (budget - *entry).max(0.0);
                drop(spent);
                self.budget_rejects.fetch_add(1, Ordering::Relaxed);
                return Err(MarketError::BudgetExhausted {
                    buyer,
                    requested: x,
                    remaining,
                });
            }
        }
        // nimbus-audit: allow(money-safety) — x is a menu price, validated finite when the pricing was published
        *entry += x;
        Ok(())
    }

    /// Refunds a charge whose sale never became durable (journal failure).
    pub fn refund(&self, buyer: u64, x: f64) {
        let mut spent = self.lock_spent();
        if let Some(entry) = spent.get_mut(&buyer) {
            *entry = (*entry - x).max(0.0);
        }
    }

    /// Precision spent by `buyer` so far (0 for unknown buyers).
    pub fn spent(&self, buyer: u64) -> f64 {
        self.lock_spent().get(&buyer).copied().unwrap_or(0.0)
    }

    /// Budget remaining for `buyer` (`None` when the listing is unmetered).
    pub fn remaining(&self, buyer: u64) -> Option<f64> {
        self.budget.map(|b| (b - self.spent(buyer)).max(0.0))
    }

    /// All accounts as `(buyer, spent)`, sorted by buyer.
    pub fn snapshot(&self) -> Vec<(u64, f64)> {
        self.lock_spent().iter().map(|(&b, &s)| (b, s)).collect()
    }

    /// Commits rejected for budget exhaustion since startup.
    pub fn budget_rejects(&self) -> u64 {
        self.budget_rejects.load(Ordering::Relaxed)
    }

    /// Buyers whose remaining budget has dropped to (effectively) zero.
    /// Always 0 for unmetered listings.
    pub fn exhausted_buyers(&self) -> u64 {
        match self.budget {
            None => 0,
            Some(budget) => {
                let floor = budget * (1.0 - BUDGET_SLACK);
                self.lock_spent().values().filter(|&&s| s >= floor).count() as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmetered_accounts_accumulate_without_rejecting() {
        let acct = BuyerAccounts::new(None);
        for _ in 0..100 {
            acct.charge(1, 50.0).unwrap();
        }
        assert_eq!(acct.spent(1), 5000.0);
        assert_eq!(acct.remaining(1), None);
        assert_eq!(acct.budget_rejects(), 0);
        assert_eq!(acct.exhausted_buyers(), 0);
    }

    #[test]
    fn budget_rejects_overdraw_with_typed_error() {
        let acct = BuyerAccounts::new(Some(100.0));
        acct.charge(7, 60.0).unwrap();
        let err = acct.charge(7, 60.0).unwrap_err();
        match err {
            MarketError::BudgetExhausted {
                buyer,
                requested,
                remaining,
            } => {
                assert_eq!(buyer, 7);
                assert_eq!(requested, 60.0);
                assert!((remaining - 40.0).abs() < 1e-9);
            }
            other => panic!("expected BudgetExhausted, got {other}"),
        }
        // The failed charge did not touch the account.
        assert_eq!(acct.spent(7), 60.0);
        assert_eq!(acct.budget_rejects(), 1);
        // A smaller purchase that fits still goes through.
        acct.charge(7, 40.0).unwrap();
        assert_eq!(acct.exhausted_buyers(), 1);
    }

    #[test]
    fn budgets_are_per_buyer() {
        let acct = BuyerAccounts::new(Some(50.0));
        acct.charge(1, 50.0).unwrap();
        acct.charge(2, 50.0).unwrap();
        assert!(acct.charge(1, 1.0).is_err());
        assert_eq!(acct.exhausted_buyers(), 2);
        assert_eq!(acct.snapshot(), vec![(1, 50.0), (2, 50.0)]);
    }

    #[test]
    fn refund_restores_headroom() {
        let acct = BuyerAccounts::new(Some(100.0));
        acct.charge(3, 80.0).unwrap();
        assert!(acct.charge(3, 80.0).is_err());
        acct.refund(3, 80.0);
        acct.charge(3, 80.0).unwrap();
        assert_eq!(acct.spent(3), 80.0);
    }

    #[test]
    fn seed_replays_recovered_spend() {
        let acct = BuyerAccounts::new(Some(100.0));
        acct.seed(&[(5, 90.0), (6, 10.0)]);
        assert!(acct.charge(5, 20.0).is_err());
        acct.charge(6, 20.0).unwrap();
        assert_eq!(acct.remaining(5), Some(10.0));
    }

    #[test]
    fn exact_budget_spend_is_not_rejected() {
        let acct = BuyerAccounts::new(Some(100.0));
        // Ten charges of 10.0 accumulate float error; the slack must
        // absorb it so the nominal budget is exactly spendable.
        for _ in 0..10 {
            acct.charge(9, 10.0).unwrap();
        }
        assert!(acct.charge(9, 0.001).is_err());
        assert_eq!(acct.exhausted_buyers(), 1);
    }

    #[test]
    fn concurrent_charges_never_overdraw() {
        let acct = std::sync::Arc::new(BuyerAccounts::new(Some(64.0)));
        let oks: usize = std::thread::scope(|s| {
            (0..16)
                .map(|_| {
                    let acct = std::sync::Arc::clone(&acct);
                    s.spawn(move || acct.charge(1, 1.0).is_ok() as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(oks, 16);
        assert_eq!(acct.spent(1), 16.0);
    }
}
