//! The broker agent: trains once, prices optimally, sells noisy models.
//!
//! The broker realizes the full §3.2 interaction model:
//!
//! 1. **Listing** — takes a [`Seller`]'s dataset and market-research curves.
//! 2. **One-time training** — lazily computes and caches the optimal model
//!    `h*_λ(D)` behind a lock (the "train once, sell many" economics of
//!    §4 that make real-time interaction possible).
//! 3. **Market opening** — transforms the curves onto the inverse-NCP axis,
//!    builds the [`RevenueProblem`], runs the Algorithm 1 DP, re-verifies
//!    arbitrage-freeness of the posted table *after* the error-inverse map
//!    `φ` ([`nimbus_core::arbitrage::check_arbitrage_free_after_phi`]), and
//!    publishes the result as an immutable [`MarketSnapshot`].
//! 4. **Sales** — serves the three §3.2 buyer options through an explicit
//!    quote→commit protocol: [`Broker::quote_request`] resolves a
//!    [`PurchaseRequest`] to a priced [`Quote`] against the published
//!    snapshot, and [`Broker::commit`] exchanges the quote plus payment for
//!    a noisy model instance.
//!
//! # Error metrics and φ
//!
//! Budget arithmetic is quoted in the broker's configured
//! [`ErrorMetric`]. The default is the square-loss
//! distance, where Lemma 3 gives the exact identity
//! `expected error = δ = 1/x` and the snapshot's error curve is analytic.
//! [`BrokerBuilder::error_metric`] switches the listing to any other metric
//! (logistic, hinge, 0/1): `open_market()` then estimates the metric's
//! monotone error curve by deterministic parallel Monte Carlo
//! ([`nimbus_core::CurveProvider`]), caches it in the snapshot, and every
//! error budget is resolved through the empirical inverse `φ` of Theorem 6.
//! Quotes and sales are tagged with the metric name so buyers always know
//! which `ε` the `expected_error` field is denominated in. One-off curves
//! for a different `ε` are still available via
//! [`Broker::price_error_curve`] / [`Broker::price_error_curve_for`].
//!
//! # Concurrency model
//!
//! The serving path is designed for heavy concurrent buyer traffic:
//!
//! * **Immutable snapshot.** `open_market()` publishes an
//!   `Arc<MarketSnapshot>` (price table, revenue problem, optimal model)
//!   through an [`AtomicPtr`]; every read path — [`Broker::quote`],
//!   [`Broker::quote_request`], [`Broker::posted_menu`],
//!   [`Broker::expected_revenue`] — is a single atomic load with **no
//!   lock**. Superseded snapshots are kept alive in an append-only history
//!   for the broker's lifetime, so readers can never observe a dangling
//!   pointer; outstanding quotes from an older snapshot are rejected at
//!   commit time with [`MarketError::QuoteExpired`].
//! * **Striped ledger.** Sales record onto `LEDGER_SHARDS` independent
//!   `Mutex<LedgerShard>` stripes selected by transaction id, merged into a
//!   sequence-ordered [`Ledger`] only on read.
//! * **Per-transaction RNG.** Each commit draws its noise from an
//!   independent stream `seeded_rng(split_stream(seed, transaction_id))`,
//!   so the model a buyer receives depends only on `(seed, transaction id,
//!   x)` — never on thread interleaving — and concurrent sales share no RNG
//!   state at all. Monte-Carlo error-curve estimation is equally
//!   deterministic: each δ point owns a stream derived from
//!   `(seed, point index)`, so the parallel estimator is bitwise-identical
//!   to a sequential one and the broker holds no RNG state at all.

use crate::account::BuyerAccounts;
use crate::journal::{FaultPlan, GroupCommit, Journal, Recovery, SaleRecord};
use crate::ledger::{Ledger, LedgerShard, Transaction};
use crate::parallel::parallel_map;
use crate::seller::Seller;
use crate::{MarketError, Result};
use nimbus_core::arbitrage::check_arbitrage_free_after_phi;
use nimbus_core::mechanism::RandomizedMechanism;
use nimbus_core::pricing::{PiecewiseLinearPricing, PricingFunction};
use nimbus_core::{CurveProvider, ErrorCurve, GaussianMechanism, InverseNcp, Ncp, PriceErrorCurve};
use nimbus_ml::{ErrorMetric, LinearModel, LinearRegressionTrainer, Trainer};
use nimbus_optim::{solve_revenue_dp, RevenueProblem};
use nimbus_randkit::{seeded_rng, split_stream};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of stripes in the sharded ledger.
const LEDGER_SHARDS: usize = 16;

/// Broker configuration.
#[derive(Debug, Clone, Copy)]
pub struct BrokerConfig {
    /// Number of versions (price points) on the posted menu.
    pub n_price_points: usize,
    /// Monte-Carlo samples per δ when estimating buyer-facing error curves.
    pub error_curve_samples: usize,
    /// Seed for the broker's noise stream.
    pub seed: u64,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            n_price_points: 100,
            error_curve_samples: 200,
            seed: 0xB20CE2,
        }
    }
}

/// A buyer's purchase request (the three options of §3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PurchaseRequest {
    /// Option 1: a specific point on the curve, by inverse NCP.
    AtInverseNcp(f64),
    /// Option 2: cheapest version whose expected error — in the broker's
    /// configured metric — is ≤ budget. Resolved through the snapshot's
    /// error curve and its inverse `φ` (Theorem 6).
    ErrorBudget(f64),
    /// Option 3: most accurate version with price ≤ budget.
    PriceBudget(f64),
}

/// A priced offer, resolved against one published [`MarketSnapshot`].
///
/// Returned by [`Broker::quote_request`] and redeemed by
/// [`Broker::commit`]. A quote pins the snapshot epoch it was priced
/// against: if the market is re-opened in between, commit rejects the stale
/// quote instead of silently charging a different price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quote {
    /// Inverse NCP `x` of the quoted version.
    pub x: f64,
    /// Noise control parameter `δ = 1/x` of the quoted version.
    pub delta: f64,
    /// Posted price of the version.
    pub price: f64,
    /// Expected error of the version under the broker's configured metric,
    /// read off the snapshot's error curve (`= δ` for the square-loss
    /// default, Lemma 3).
    pub expected_error: f64,
    /// Name of the metric `expected_error` is denominated in.
    pub metric: &'static str,
    /// Epoch of the snapshot this quote was priced against.
    pub snapshot_epoch: u64,
}

/// One item of a batched commit ([`Broker::commit_batch_at`]): the same
/// `(x, epoch, payment, nonce)` identity a single remote commit carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchCommitItem {
    /// The quoted inverse NCP.
    pub x: f64,
    /// Epoch of the snapshot the quote was priced against.
    pub snapshot_epoch: u64,
    /// Payment offered.
    pub payment: f64,
    /// Optional idempotency nonce (dedup key is `(snapshot_epoch, nonce)`).
    pub nonce: Option<u64>,
    /// Optional buyer identity; charged against the listing's noise budget.
    pub buyer: Option<u64>,
}

/// A commit that has passed validation and perturbation but has not yet
/// crossed the durability barrier: everything needed to journal it and,
/// once durable, record it on a ledger stripe.
struct PreparedSale {
    record: SaleRecord,
    model: LinearModel,
    metric: &'static str,
}

/// A completed sale.
#[derive(Debug, Clone)]
pub struct Sale {
    /// The noisy model instance handed to the buyer.
    pub model: LinearModel,
    /// The version's inverse NCP.
    pub inverse_ncp: f64,
    /// Price charged.
    pub price: f64,
    /// Expected error of the instance under the broker's configured metric
    /// (`= δ` for the square-loss default, Lemma 3). Before the metric
    /// layer this field was named `expected_square_error`; it is now tagged
    /// by [`Sale::metric`] instead of being hard-wired to the square loss.
    pub expected_error: f64,
    /// Name of the metric `expected_error` is denominated in.
    pub metric: &'static str,
    /// The ledger entry.
    pub transaction: Transaction,
}

/// Immutable posted-market state, published atomically by
/// [`Broker::open_market`].
///
/// Everything a buyer-facing read needs — the revenue problem, the
/// optimized price table, the trained optimal model and the menu support —
/// lives here, so quoting and resolving never take a lock.
#[derive(Debug, Clone)]
pub struct MarketSnapshot {
    problem: RevenueProblem,
    pricing: PiecewiseLinearPricing,
    optimal: LinearModel,
    /// The metric's monotone error curve over the menu's δ grid — analytic
    /// for the square-loss default, Monte-Carlo estimated otherwise. Cached
    /// here so error-budget resolution (via `φ`) stays lock-free.
    curve: ErrorCurve,
    metric_name: &'static str,
    expected_revenue: f64,
    epoch: u64,
    x_lo: f64,
    x_hi: f64,
}

impl MarketSnapshot {
    /// The revenue problem the posted prices were optimized for.
    pub fn problem(&self) -> &RevenueProblem {
        &self.problem
    }

    /// The posted piecewise-linear pricing function.
    pub fn pricing(&self) -> &PiecewiseLinearPricing {
        &self.pricing
    }

    /// The trained optimal model `h*_λ(D)` instances are perturbed from.
    pub fn optimal(&self) -> &LinearModel {
        &self.optimal
    }

    /// The cached error curve `δ ↦ E[ε(h^δ, D)]` of the broker's metric.
    pub fn error_curve(&self) -> &ErrorCurve {
        &self.curve
    }

    /// Name of the metric all expected errors are denominated in.
    pub fn metric_name(&self) -> &'static str {
        self.metric_name
    }

    /// Expected revenue of the posted prices under the demand model.
    pub fn expected_revenue(&self) -> f64 {
        self.expected_revenue
    }

    /// Monotone publication counter: 1 for the first `open_market()`, +1
    /// for each re-opening.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The menu's inverse-NCP support `[x_lo, x_hi]`.
    pub fn support(&self) -> (f64, f64) {
        (self.x_lo, self.x_hi)
    }

    /// The posted `(inverse NCP, price)` menu.
    pub fn menu(&self) -> Vec<(f64, f64)> {
        self.pricing.menu()
    }

    /// Price at an arbitrary inverse NCP.
    pub fn price_at(&self, x: f64) -> Result<f64> {
        Ok(self.pricing.price(InverseNcp::new(x)?))
    }

    /// Resolves a purchase request to `(inverse NCP, price)` without
    /// buying. Pure snapshot arithmetic — no locks, no side effects.
    pub fn resolve(&self, request: PurchaseRequest) -> Result<(f64, f64)> {
        match request {
            PurchaseRequest::AtInverseNcp(x) => {
                if !(x > 0.0 && x.is_finite()) {
                    return Err(nimbus_core::CoreError::InvalidNcp { value: x }.into());
                }
                Ok((x, self.price_at(x)?))
            }
            PurchaseRequest::ErrorBudget(e) => {
                if !(e > 0.0 && e.is_finite()) {
                    return Err(nimbus_core::CoreError::BudgetUnsatisfiable {
                        kind: "error",
                        budget: e,
                    }
                    .into());
                }
                // The cheapest feasible version is the noisiest whose
                // expected error still meets the budget: δ = φ(e), with φ
                // the inverse of the snapshot's error curve (Theorem 6).
                // For the square-loss default the curve is the Lemma 3
                // identity and this reduces to x = 1/e exactly.
                let pts = self.curve.points();
                // nimbus-audit: allow(no-panic) — config validation enforces ≥ 2 curve points
                let loosest_error = pts[pts.len() - 1].smoothed_error;
                let x = if e >= loosest_error {
                    // Looser than anything on the menu: clamp to the floor.
                    self.x_lo
                } else {
                    // Errors below the curve's range surface here as
                    // BudgetUnsatisfiable — tighter than the best version.
                    let ncp = self.curve.error_inverse(e)?;
                    (1.0 / ncp.delta()).clamp(self.x_lo, self.x_hi)
                };
                Ok((x, self.price_at(x)?))
            }
            PurchaseRequest::PriceBudget(budget) => {
                if !(budget >= 0.0 && budget.is_finite()) {
                    return Err(nimbus_core::CoreError::BudgetUnsatisfiable {
                        kind: "price",
                        budget,
                    }
                    .into());
                }
                if self.price_at(self.x_lo)? > budget {
                    return Err(nimbus_core::CoreError::BudgetUnsatisfiable {
                        kind: "price",
                        budget,
                    }
                    .into());
                }
                // Most accurate affordable version: binary search on the
                // monotone posted curve.
                let mut lo = self.x_lo;
                let mut hi = self.x_hi;
                if self.price_at(hi)? <= budget {
                    return Ok((hi, self.price_at(hi)?));
                }
                for _ in 0..96 {
                    let mid = 0.5 * (lo + hi);
                    if self.price_at(mid)? <= budget {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                Ok((lo, self.price_at(lo)?))
            }
        }
    }

    /// Resolves a purchase request to a committable [`Quote`]. The quote's
    /// expected error is read off the snapshot's cached error curve for the
    /// broker's metric.
    pub fn quote(&self, request: PurchaseRequest) -> Result<Quote> {
        let (x, price) = self.resolve(request)?;
        let ncp = InverseNcp::new(x)?.ncp();
        Ok(Quote {
            x,
            delta: ncp.delta(),
            price,
            expected_error: self.curve.expected_error_at(ncp),
            metric: self.metric_name,
            snapshot_epoch: self.epoch,
        })
    }
}

/// Validating builder for [`Broker`].
///
/// Replaces the positional `Broker::new(seller, trainer, mechanism,
/// config)` constructor: configuration is checked once at
/// [`BrokerBuilder::build`] (`n_price_points ≥ 2`,
/// `error_curve_samples ≥ 1`, commission in `[0, 1)`) instead of surfacing
/// as panics or optimizer errors mid-session. Trainer and mechanism default
/// to ridge regression and the Gaussian mechanism — the paper's square-loss
/// instantiation.
///
/// ```no_run
/// # use nimbus_market::{Broker, Seller};
/// # fn doc(seller: Seller) -> nimbus_market::Result<()> {
/// let broker = Broker::builder(seller)
///     .n_price_points(100)
///     .commission(0.05)
///     .seed(42)
///     .build()?;
/// # Ok(()) }
/// ```
pub struct BrokerBuilder {
    seller: Seller,
    trainer: Box<dyn Trainer + Send + Sync>,
    mechanism: Box<dyn RandomizedMechanism + Send + Sync>,
    metric: Option<Box<dyn ErrorMetric>>,
    config: BrokerConfig,
    commission: f64,
    journal_path: Option<PathBuf>,
    journal_checkpoint_every: u64,
    journal_faults: FaultPlan,
    journal_group_commit_window: Duration,
    buyer_budget: Option<f64>,
}

impl BrokerBuilder {
    /// Starts a builder for a seller's listing with default trainer
    /// (ridge regression), mechanism (Gaussian), metric (square-loss
    /// distance) and [`BrokerConfig`].
    pub fn new(seller: Seller) -> Self {
        BrokerBuilder {
            seller,
            trainer: Box::new(LinearRegressionTrainer::ridge(1e-6)),
            mechanism: Box::new(GaussianMechanism),
            metric: None,
            config: BrokerConfig::default(),
            commission: 0.0,
            journal_path: None,
            journal_checkpoint_every: 256,
            journal_faults: FaultPlan::new(),
            journal_group_commit_window: Duration::ZERO,
            buyer_budget: None,
        }
    }

    /// Caps each buyer's cumulative noise-precision spend `Σ x` on this
    /// listing (validated finite and positive at build). Commits that carry
    /// a buyer identity are charged against the cap *before* the durability
    /// barrier; over-budget commits fail with
    /// [`MarketError::BudgetExhausted`] and journal nothing. Without a cap
    /// (the default) accounts still accumulate but never reject.
    pub fn buyer_budget(mut self, budget: f64) -> Self {
        self.buyer_budget = Some(budget);
        self
    }

    /// Journals every committed sale to the write-ahead log at `path`,
    /// fsynced before the sale is acknowledged. On [`BrokerBuilder::build`]
    /// an existing journal is replayed: the ledger shards, the monotone
    /// transaction-id sequence and the idempotency table are restored, and
    /// epochs of snapshots published by [`Broker::open_market`] continue
    /// above the highest journaled epoch.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal_path = Some(path.into());
        self
    }

    /// Compacts the journal into one checkpoint record after this many
    /// sale appends (`0` disables automatic compaction; default 256).
    pub fn journal_checkpoint_every(mut self, every: u64) -> Self {
        self.journal_checkpoint_every = every;
        self
    }

    /// Routes every journal write through an injected [`FaultPlan`] —
    /// the hook behind the crash/recovery tests.
    pub fn journal_faults(mut self, plan: FaultPlan) -> Self {
        self.journal_faults = plan;
        self
    }

    /// Group-commit gathering window: a flush leader waits up to this long
    /// for concurrent commits to join its batch before the shared fsync
    /// (clamped to [`crate::journal::MAX_GROUP_COMMIT_WINDOW`], 500µs).
    /// `Duration::ZERO` (the default) disables gathering; commits still
    /// coalesce behind an in-flight fsync, which adds no latency at all.
    pub fn journal_group_commit_window(mut self, window: Duration) -> Self {
        self.journal_group_commit_window = window;
        self
    }

    /// Sets the trainer.
    pub fn trainer(mut self, trainer: impl Trainer + Send + Sync + 'static) -> Self {
        self.trainer = Box::new(trainer);
        self
    }

    /// Sets an already-boxed trainer (for dynamic selection).
    pub fn boxed_trainer(mut self, trainer: Box<dyn Trainer + Send + Sync>) -> Self {
        self.trainer = trainer;
        self
    }

    /// Sets the randomized mechanism.
    pub fn mechanism(
        mut self,
        mechanism: impl RandomizedMechanism + Send + Sync + 'static,
    ) -> Self {
        self.mechanism = Box::new(mechanism);
        self
    }

    /// Sets an already-boxed mechanism (for dynamic selection).
    pub fn boxed_mechanism(
        mut self,
        mechanism: Box<dyn RandomizedMechanism + Send + Sync>,
    ) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Sets the buyer-facing error metric the market is denominated in.
    ///
    /// The default (square-loss distance to the optimum) prices off the
    /// exact Lemma 3 curve. Any other metric makes `open_market()` estimate
    /// the metric's error curve by deterministic parallel Monte Carlo and
    /// resolve error budgets through its inverse `φ` (Theorem 6).
    pub fn error_metric(mut self, metric: impl ErrorMetric + 'static) -> Self {
        self.metric = Some(Box::new(metric));
        self
    }

    /// Sets an already-boxed error metric (for dynamic selection).
    pub fn boxed_error_metric(mut self, metric: Box<dyn ErrorMetric>) -> Self {
        self.metric = Some(metric);
        self
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: BrokerConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the number of menu price points (validated `≥ 2` at build).
    pub fn n_price_points(mut self, n: usize) -> Self {
        self.config.n_price_points = n;
        self
    }

    /// Sets the Monte-Carlo samples per δ for error-curve estimation
    /// (validated `≥ 1` at build).
    pub fn error_curve_samples(mut self, n: usize) -> Self {
        self.config.error_curve_samples = n;
        self
    }

    /// Sets the seed of the broker's deterministic noise streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the commission rate (validated in `[0, 1)` at build).
    pub fn commission(mut self, rate: f64) -> Self {
        self.commission = rate;
        self
    }

    /// Validates the configuration and constructs the broker.
    pub fn build(self) -> Result<Broker> {
        if self.config.n_price_points < 2 {
            return Err(MarketError::InvalidConfig {
                reason: format!(
                    "n_price_points must be at least 2, got {}",
                    self.config.n_price_points
                ),
            });
        }
        if self.config.error_curve_samples < 1 {
            return Err(MarketError::InvalidConfig {
                reason: "error_curve_samples must be at least 1".to_string(),
            });
        }
        if !(self.commission.is_finite() && (0.0..1.0).contains(&self.commission)) {
            return Err(MarketError::InvalidConfig {
                reason: format!("commission rate must be in [0, 1), got {}", self.commission),
            });
        }
        if let Some(budget) = self.buyer_budget {
            if !(budget.is_finite() && budget > 0.0) {
                return Err(MarketError::InvalidConfig {
                    reason: format!("buyer budget must be finite and positive, got {budget}"),
                });
            }
        }
        let shards: Vec<Mutex<LedgerShard>> = (0..LEDGER_SHARDS)
            .map(|_| Mutex::new(LedgerShard::new()))
            .collect();
        let mut dedup: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut next_tx = 0u64;
        let mut epoch_base = 0u64;
        let mut journal = None;
        let mut recovery = None;
        if let Some(path) = self.journal_path {
            let (j, rec) = Journal::open(path, self.journal_checkpoint_every, self.journal_faults)?;
            // Rebuild the books exactly as the pre-crash broker held them:
            // every replayed sale back on its stripe, the id sequence
            // resuming past the highest journaled id, and the idempotency
            // table primed so retried commits dedup instead of re-selling.
            for t in &rec.transactions {
                // nimbus-audit: allow(no-panic) — index is sequence % LEDGER_SHARDS
                shards[t.sequence as usize % LEDGER_SHARDS]
                    .lock()
                    .record_assigned(t.sequence, t.inverse_ncp, t.price, t.expected_error);
            }
            for &(epoch, nonce, tx_id) in &rec.dedup {
                dedup.insert((epoch, nonce), tx_id);
            }
            next_tx = rec.next_tx_id;
            epoch_base = rec.max_epoch;
            journal = Some(GroupCommit::new(j, self.journal_group_commit_window));
            recovery = Some(rec);
        }
        let accounts = BuyerAccounts::new(self.buyer_budget);
        if let Some(rec) = &recovery {
            // Replay buyer spend so budgets survive restarts: accounts
            // reconcile exactly with the durable (ACKed) sale history.
            accounts.seed(&rec.accounts);
        }
        Ok(Broker {
            seller: self.seller,
            trainer: self.trainer,
            mechanism: self.mechanism,
            metric: self.metric,
            config: self.config,
            commission: self.commission,
            optimal: RwLock::new(None),
            current: AtomicPtr::new(std::ptr::null_mut()),
            history: Mutex::new(Vec::new()),
            shards,
            tx_counter: AtomicU64::new(next_tx),
            journal,
            dedup: DedupTable::with(dedup),
            accounts,
            epoch_base,
            recovery,
        })
    }
}

/// What [`DedupTable::claim`] found for an idempotency key.
#[derive(Clone, Copy, Debug)]
enum DedupClaim {
    /// The key already committed: replay this transaction.
    Replay(u64),
    /// The caller owns the key and must [`DedupTable::resolve`] it.
    Claimed,
}

/// Idempotency table `(quote epoch, client nonce) → transaction id`.
///
/// A keyed commit *claims* its key before the durability barrier and
/// *resolves* it afterwards, so the table is never locked across a journal
/// fsync: concurrent keyed commits coalesce inside the group-commit
/// batcher instead of serializing behind one another's fsyncs. A retry of
/// a key that is still in flight parks on the condvar until the first
/// attempt resolves, then replays its sale (or, if the first attempt
/// failed, claims the key itself).
#[derive(Debug, Default)]
struct DedupTable {
    state: std::sync::Mutex<DedupState>,
    resolved: std::sync::Condvar,
}

#[derive(Debug, Default)]
struct DedupState {
    committed: BTreeMap<(u64, u64), u64>,
    in_flight: BTreeSet<(u64, u64)>,
}

impl DedupTable {
    fn with(committed: BTreeMap<(u64, u64), u64>) -> Self {
        DedupTable {
            state: std::sync::Mutex::new(DedupState {
                committed,
                in_flight: BTreeSet::new(),
            }),
            resolved: std::sync::Condvar::new(),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, DedupState> {
        // A poisoning panic can only come from a peer committer; both maps
        // are plain value stores and stay coherent, so recover the guard.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Waits out any in-flight commit of `key`, then either reports the
    /// committed transaction or hands the key to the caller.
    fn claim(&self, key: (u64, u64)) -> DedupClaim {
        let mut state = self.lock_state();
        loop {
            if let Some(&tx_id) = state.committed.get(&key) {
                return DedupClaim::Replay(tx_id);
            }
            if state.in_flight.insert(key) {
                return DedupClaim::Claimed;
            }
            state = self.resolved.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Releases a claimed key, recording its transaction on success and
    /// waking every retry parked on it.
    fn resolve(&self, key: (u64, u64), tx_id: Option<u64>) {
        let mut state = self.lock_state();
        state.in_flight.remove(&key);
        if let Some(tx_id) = tx_id {
            state.committed.insert(key, tx_id);
        }
        drop(state);
        self.resolved.notify_all();
    }
}

/// The broker.
pub struct Broker {
    seller: Seller,
    trainer: Box<dyn Trainer + Send + Sync>,
    mechanism: Box<dyn RandomizedMechanism + Send + Sync>,
    /// The buyer-facing metric the market is denominated in; `None` means
    /// the square-loss default with its analytic Lemma 3 curve.
    metric: Option<Box<dyn ErrorMetric>>,
    config: BrokerConfig,
    /// The broker's commission rate in [0, 1) — Figure 1(B): the broker
    /// "gets a cut from the seller for each sale".
    commission: f64,
    optimal: RwLock<Option<LinearModel>>,
    /// The currently published snapshot (null before `open_market`).
    /// Readers do one Acquire load; writers publish with a Release store.
    current: AtomicPtr<MarketSnapshot>,
    /// Owns every snapshot ever published, keeping the target of `current`
    /// alive for the broker's lifetime. Locked only while publishing.
    history: Mutex<Vec<Arc<MarketSnapshot>>>,
    /// Striped write-side ledger; merged on read by [`Broker::ledger`].
    shards: Vec<Mutex<LedgerShard>>,
    /// Globally unique transaction ids, also the label of each sale's
    /// private RNG stream.
    tx_counter: AtomicU64,
    /// Optional write-ahead journal behind the group-commit batcher; when
    /// present, every sale is appended and fsynced *before* the commit
    /// returns (the ACK barrier). Concurrent commits share one fsync.
    journal: Option<GroupCommit>,
    /// Idempotency claims and commitments (see [`DedupTable`]). Keyed
    /// commits claim before and resolve after the durability barrier, so
    /// they share group-commit fsyncs; plain commits never touch it.
    dedup: DedupTable,
    /// Per-buyer cumulative noise-budget accounts, charged in
    /// [`Broker::prepare_commit`] — before the durability barrier — and
    /// refunded if the journal append fails. Seeded from journal recovery.
    accounts: BuyerAccounts,
    /// Highest snapshot epoch replayed from the journal: newly published
    /// snapshots continue above it, so epochs are monotone across restarts
    /// and every pre-crash quote fails with `QuoteExpired` rather than
    /// committing against a rebuilt (different) snapshot.
    epoch_base: u64,
    /// What the journal replayed at build time (`None` without a journal).
    recovery: Option<Recovery>,
}

impl Broker {
    /// Starts a validating [`BrokerBuilder`] for a seller's listing.
    pub fn builder(seller: Seller) -> BrokerBuilder {
        BrokerBuilder::new(seller)
    }

    /// Creates a broker for a seller's listing.
    ///
    /// Legacy positional constructor; delegates to [`BrokerBuilder`] and
    /// panics if `config` fails validation (`n_price_points ≥ 2`,
    /// `error_curve_samples ≥ 1`). Prefer [`Broker::builder`], which
    /// surfaces the problem as a [`MarketError::InvalidConfig`] instead.
    #[allow(clippy::panic)] // the panic is this constructor's documented contract
    pub fn new(
        seller: Seller,
        trainer: Box<dyn Trainer + Send + Sync>,
        mechanism: Box<dyn RandomizedMechanism + Send + Sync>,
        config: BrokerConfig,
    ) -> Self {
        BrokerBuilder::new(seller)
            .boxed_trainer(trainer)
            .boxed_mechanism(mechanism)
            .config(config)
            .build()
            // nimbus-audit: allow(no-panic) — documented panicking legacy constructor
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The seller whose dataset this broker sells.
    pub fn seller(&self) -> &Seller {
        &self.seller
    }

    /// Sets the broker's commission rate (fraction of each sale kept by the
    /// broker; the remainder is the seller's proceeds). Panics outside
    /// `[0, 1)`; [`BrokerBuilder::commission`] is the non-panicking path.
    pub fn with_commission(mut self, rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "commission rate must be in [0, 1)"
        );
        self.commission = rate;
        self
    }

    /// The commission rate.
    pub fn commission(&self) -> f64 {
        self.commission
    }

    /// The broker's cut of the revenue collected so far.
    pub fn broker_cut(&self) -> f64 {
        self.collected_revenue() * self.commission
    }

    /// The seller's proceeds from the revenue collected so far.
    pub fn seller_proceeds(&self) -> f64 {
        self.collected_revenue() * (1.0 - self.commission)
    }

    /// Returns the cached optimal model, training it on first call.
    pub fn optimal_model(&self) -> Result<LinearModel> {
        if let Some(m) = self.optimal.read().as_ref() {
            return Ok(m.clone());
        }
        let mut guard = self.optimal.write();
        // Double-checked: another thread may have trained while we waited.
        if let Some(m) = guard.as_ref() {
            return Ok(m.clone());
        }
        let model = self.trainer.train(&self.seller.dataset().train)?;
        *guard = Some(model.clone());
        Ok(model)
    }

    /// Whether the one-time training has already happened.
    pub fn is_trained(&self) -> bool {
        self.optimal.read().is_some()
    }

    /// The menu's δ grid: the reciprocals of an `n`-point uniform inverse-NCP
    /// grid over the seller's `[x_lo, x_hi]` support.
    fn menu_deltas(&self) -> Result<Vec<Ncp>> {
        let curves = self.seller.curves();
        let n = self.config.n_price_points;
        (0..n)
            .map(|i| {
                let t = if n == 1 {
                    0.5
                } else {
                    i as f64 / (n - 1) as f64
                };
                let x = curves.x_lo + (curves.x_hi - curves.x_lo) * t;
                Ok(InverseNcp::new(x)?.ncp())
            })
            .collect()
    }

    /// Opens the market: trains the optimal model (if not already cached),
    /// builds the metric's error curve and the revenue problem, optimizes
    /// prices with the Algorithm 1 DP, re-verifies arbitrage-freeness of
    /// the posted table after the φ map, and atomically publishes the
    /// resulting immutable [`MarketSnapshot`]. Returns the expected
    /// revenue.
    ///
    /// For the square-loss default the error curve is the analytic Lemma 3
    /// identity and the market research is sampled directly on the
    /// inverse-NCP grid. With [`BrokerBuilder::error_metric`] set, the
    /// curve is Monte-Carlo estimated (deterministically, in parallel) and
    /// the research curves are transformed through it via
    /// [`RevenueProblem::on_phi_grid`].
    ///
    /// Re-opening publishes a fresh snapshot with the next epoch;
    /// outstanding quotes against the old epoch are rejected at commit.
    pub fn open_market(&self) -> Result<f64> {
        let optimal = self.optimal_model()?;
        let curves = *self.seller.curves();
        let (problem, curve, metric_name) = match self.metric.as_deref() {
            None => {
                let problem = curves.build_problem(self.config.n_price_points)?;
                let deltas: Vec<Ncp> = problem
                    .parameters()
                    .iter()
                    .map(|&x| Ok(InverseNcp::new(x)?.ncp()))
                    .collect::<Result<Vec<_>>>()?;
                let curve = ErrorCurve::analytic_square_loss(&deltas)?;
                (problem, curve, "square")
            }
            Some(metric) => {
                let deltas = self.menu_deltas()?;
                let provider = CurveProvider::new(
                    self.config.error_curve_samples,
                    split_stream(self.config.seed, u64::MAX),
                );
                let curve =
                    provider.curve_for(metric, self.mechanism.as_ref(), &optimal, &deltas)?;
                // Market research speaks in normalized quality t ∈ [0, 1];
                // map the metric's observed error range onto it (t = 1 at
                // the lowest error) before transforming onto the φ grid.
                let pts = curve.points();
                // nimbus-audit: allow(no-panic) — provider returns ≥ 1 sampled point
                let (e_lo, e_hi) = (pts[0].smoothed_error, pts[pts.len() - 1].smoothed_error);
                let range = e_hi - e_lo;
                let t_of = move |e: f64| {
                    if range > 0.0 {
                        (e_hi - e) / range
                    } else {
                        0.5
                    }
                };
                let (value, demand) = (curves.value, curves.demand);
                let problem = RevenueProblem::on_phi_grid(
                    &curve,
                    move |e| value.value_at(t_of(e)),
                    move |e| demand.mass_at(t_of(e)),
                )?;
                (problem, curve, metric.name())
            }
        };
        let solution = solve_revenue_dp(&problem)?;
        let pricing = PiecewiseLinearPricing::new(
            problem
                .parameters()
                .into_iter()
                .zip(solution.prices.iter().copied())
                .collect(),
        )?;
        // Theorem 6 sanity check: the posted table must stay monotone and
        // subadditive once buyer-facing error levels are pushed back
        // through φ onto the inverse-NCP axis.
        let report = check_arbitrage_free_after_phi(&pricing, &curve, 1e-6)?;
        if !report.is_arbitrage_free() {
            return Err(MarketError::InvalidCurve {
                reason: "posted price table failed the post-φ arbitrage re-check",
            });
        }
        let (x_lo, x_hi) = pricing.support();
        let expected = solution.revenue;
        let mut history = self.history.lock();
        let snapshot = Arc::new(MarketSnapshot {
            problem,
            pricing,
            optimal,
            curve,
            metric_name,
            expected_revenue: expected,
            epoch: self.epoch_base + history.len() as u64 + 1,
            x_lo,
            x_hi,
        });
        let ptr = Arc::as_ptr(&snapshot) as *mut MarketSnapshot;
        history.push(snapshot);
        // Release pairs with the Acquire in `snapshot()`: a reader that
        // sees `ptr` also sees the fully initialized snapshot behind it.
        self.current.store(ptr, Ordering::Release);
        Ok(expected)
    }

    /// Re-publishes the market from a caller-supplied revenue problem —
    /// typically one whose demand masses and valuations were *observed*
    /// (empirical demand from live traffic) rather than taken from the
    /// seller's market research. Requires an open market: the optimal
    /// model, error curve, and metric name of the current snapshot are
    /// carried over unchanged; only the problem, the DP-optimized price
    /// table, and the epoch are new.
    ///
    /// The caller's problem should sample the same inverse-NCP grid as
    /// the posted menu so the carried-over error curve keeps describing
    /// the posted points. Prices are always re-derived through the
    /// Algorithm 1 DP and re-checked for post-φ arbitrage-freeness — a
    /// caller cannot publish a table that violates Theorem 6.
    ///
    /// Publishing bumps the epoch exactly like [`Broker::open_market`]:
    /// every outstanding quote dies with [`MarketError::QuoteExpired`]
    /// at commit time. Returns the expected revenue of the new table
    /// under the supplied demand.
    pub fn republish_with_problem(&self, problem: RevenueProblem) -> Result<f64> {
        let current = self.published()?;
        let solution = solve_revenue_dp(&problem)?;
        let pricing = PiecewiseLinearPricing::new(
            problem
                .parameters()
                .into_iter()
                .zip(solution.prices.iter().copied())
                .collect(),
        )?;
        let report = check_arbitrage_free_after_phi(&pricing, &current.curve, 1e-6)?;
        if !report.is_arbitrage_free() {
            return Err(MarketError::InvalidCurve {
                reason: "re-published price table failed the post-φ arbitrage re-check",
            });
        }
        let (x_lo, x_hi) = pricing.support();
        let expected = solution.revenue;
        let mut history = self.history.lock();
        let snapshot = Arc::new(MarketSnapshot {
            problem,
            pricing,
            optimal: current.optimal.clone(),
            curve: current.curve.clone(),
            metric_name: current.metric_name,
            expected_revenue: expected,
            epoch: self.epoch_base + history.len() as u64 + 1,
            x_lo,
            x_hi,
        });
        let ptr = Arc::as_ptr(&snapshot) as *mut MarketSnapshot;
        history.push(snapshot);
        // Release pairs with the Acquire in `snapshot()`, exactly as in
        // `open_market`.
        self.current.store(ptr, Ordering::Release);
        Ok(expected)
    }

    /// The currently published snapshot (`None` before `open_market`).
    /// One atomic load; no lock.
    pub fn snapshot(&self) -> Option<&MarketSnapshot> {
        let ptr = self.current.load(Ordering::Acquire);
        if ptr.is_null() {
            None
        } else {
            // SAFETY: `ptr` came from `Arc::as_ptr` on an Arc that
            // `self.history` holds (append-only, never cleared) for as long
            // as `self` lives, so the target outlives the returned `&self`
            // borrow. The Release store in `open_market` happened-before
            // this Acquire load, so the snapshot is fully initialized.
            Some(unsafe { &*ptr })
        }
    }

    fn published(&self) -> Result<&MarketSnapshot> {
        self.snapshot().ok_or(MarketError::MarketNotOpen)
    }

    /// Whether [`Broker::open_market`] has been called.
    pub fn is_open(&self) -> bool {
        self.snapshot().is_some()
    }

    /// The posted `(inverse NCP, price)` menu.
    pub fn posted_menu(&self) -> Result<Vec<(f64, f64)>> {
        Ok(self.published()?.menu())
    }

    /// Expected revenue of the posted prices under the market-research
    /// demand model.
    pub fn expected_revenue(&self) -> Result<f64> {
        Ok(self.published()?.expected_revenue())
    }

    /// Price quote at an arbitrary inverse NCP. Lock-free.
    ///
    /// Routes through the same [`MarketSnapshot::quote`] path as
    /// [`Broker::quote_request`] — `quote(x)` is exactly
    /// `quote_request(PurchaseRequest::AtInverseNcp(x))` reduced to the
    /// price, so the two can never disagree on validation or rounding.
    pub fn quote(&self, x: f64) -> Result<f64> {
        Ok(self.quote_request(PurchaseRequest::AtInverseNcp(x))?.price)
    }

    /// Resolves a purchase request to a committable [`Quote`] against the
    /// current snapshot. Lock-free; no side effects. The single internal
    /// quoting path: [`Broker::quote`] and the network serving layer both
    /// funnel through here.
    pub fn quote_request(&self, request: PurchaseRequest) -> Result<Quote> {
        self.published()?.quote(request)
    }

    /// Redeems a [`Quote`]: checks the payment against the (re-derived)
    /// posted price, perturbs the optimal model on the transaction's
    /// private RNG stream and records the sale on a ledger stripe.
    ///
    /// The quote must carry the epoch of the currently published snapshot;
    /// a quote issued before a re-`open_market()` fails with
    /// [`MarketError::QuoteExpired`]. The price is re-derived from the
    /// snapshot rather than trusted from the quote, so a tampered quote
    /// cannot underpay.
    pub fn commit(&self, quote: Quote, payment: f64) -> Result<Sale> {
        self.commit_with_nonce(quote, payment, None, None)
    }

    /// [`Broker::commit`] attributed to a buyer identity: the sale is
    /// charged against the buyer's noise-budget account (and journalled
    /// with the attribution) before it is acknowledged.
    pub fn commit_for(&self, quote: Quote, payment: f64, buyer: u64) -> Result<Sale> {
        self.commit_with_nonce(quote, payment, None, Some(buyer))
    }

    /// The single commit path: validates, perturbs, journals (when a
    /// journal is configured — the append is fsynced before the sale is
    /// acknowledged, so a journal failure fails the commit and nothing is
    /// recorded), then records the sale on a ledger stripe. With a journal
    /// present, concurrent commits coalesce their appends into shared
    /// fsyncs through the [`GroupCommit`] batcher.
    fn commit_with_nonce(
        &self,
        quote: Quote,
        payment: f64,
        nonce: Option<u64>,
        buyer: Option<u64>,
    ) -> Result<Sale> {
        let prepared = self.prepare_commit(quote.x, quote.snapshot_epoch, payment, nonce, buyer)?;
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append_sale(prepared.record) {
                // The sale never became durable: hand the budget back.
                if let Some(buyer) = prepared.record.buyer {
                    self.accounts
                        .refund(buyer, prepared.record.transaction.inverse_ncp);
                }
                return Err(e.into());
            }
        }
        Ok(self.record_prepared(prepared))
    }

    /// Everything a commit does *before* the durability barrier: payment
    /// validation, epoch check, price re-derivation from the snapshot,
    /// the buyer's noise-budget charge, transaction-id allocation and the
    /// deterministic model perturbation. No side effects beyond burning a
    /// transaction id and holding the budget charge (refunded if the
    /// journal append fails) — nothing is recorded until
    /// [`Broker::record_prepared`] runs after the journal append (if any)
    /// succeeded. An over-budget commit fails here, so it never reaches
    /// the journal.
    fn prepare_commit(
        &self,
        x: f64,
        snapshot_epoch: u64,
        payment: f64,
        nonce: Option<u64>,
        buyer: Option<u64>,
    ) -> Result<PreparedSale> {
        if !(payment.is_finite() && payment >= 0.0) {
            return Err(MarketError::InvalidPayment { offered: payment });
        }
        let snapshot = self.published()?;
        if snapshot_epoch != snapshot.epoch() {
            return Err(MarketError::QuoteExpired {
                quoted: snapshot_epoch,
                current: snapshot.epoch(),
            });
        }
        let price = snapshot.price_at(x)?;
        if payment + 1e-12 < price {
            return Err(MarketError::InsufficientPayment {
                price,
                offered: payment,
            });
        }
        let ncp = InverseNcp::new(x)?.ncp();
        // Budget charge — the last admission gate before any irreversible
        // step. Atomic check-and-charge, so racing commits of one buyer
        // cannot jointly overdraw; refunded below if perturbation fails.
        if let Some(buyer) = buyer {
            self.accounts.charge(buyer, x)?;
        }
        let tx_id = self.tx_counter.fetch_add(1, Ordering::Relaxed);
        // The sale's noise depends only on (seed, tx id, x): reproducible
        // under any thread interleaving, contention-free across threads.
        let mut rng = seeded_rng(split_stream(self.config.seed, tx_id));
        let model = match self.mechanism.perturb(snapshot.optimal(), ncp, &mut rng) {
            Ok(model) => model,
            Err(e) => {
                if let Some(buyer) = buyer {
                    self.accounts.refund(buyer, x);
                }
                return Err(e.into());
            }
        };
        let expected_error = snapshot.error_curve().expected_error_at(ncp);
        Ok(PreparedSale {
            record: SaleRecord {
                transaction: Transaction {
                    sequence: tx_id,
                    inverse_ncp: x,
                    price,
                    expected_error,
                },
                snapshot_epoch: snapshot.epoch(),
                nonce,
                buyer,
            },
            model,
            metric: snapshot.metric_name(),
        })
    }

    /// The post-durability half of a commit: records the sale on its
    /// ledger stripe and assembles the buyer-facing [`Sale`].
    fn record_prepared(&self, prepared: PreparedSale) -> Sale {
        let t = prepared.record.transaction;
        // nimbus-audit: allow(no-panic) — index is tx_id % LEDGER_SHARDS
        let transaction = self.shards[t.sequence as usize % LEDGER_SHARDS]
            .lock()
            .record_assigned(t.sequence, t.inverse_ncp, t.price, t.expected_error);
        Sale {
            model: prepared.model,
            inverse_ncp: t.inverse_ncp,
            price: t.price,
            expected_error: t.expected_error,
            metric: prepared.metric,
            transaction,
        }
    }

    /// Commits many `(x, epoch, payment, nonce)` items in one call — the
    /// hook behind the wire's `BATCH_COMMIT`. Returns one result per item,
    /// in order.
    ///
    /// Every item is validated and prepared independently (stale epochs,
    /// bad payments and unknown prices fail just their own slot), then all
    /// admitted records are journaled through the group-commit batcher as
    /// **one** enqueue — one fsync covers the whole batch (shared with any
    /// concurrent committers), preserving fsync-before-ACK for every item.
    /// Items carrying an idempotency nonce dedup exactly like
    /// [`Broker::commit_at_idempotent`]: a repeated `(epoch, nonce)` key
    /// replays the original sale instead of selling twice. Keys are
    /// claimed up front (in key order, so overlapping batches never
    /// deadlock) and resolved after the flush — the dedup table is never
    /// held across the fsync, so keyed batches coalesce with concurrent
    /// commits instead of serializing. A key repeated *within* one batch
    /// fails its later slots: the same nonce twice in one frame is a
    /// malformed request, not a retry.
    pub fn commit_batch_at(&self, items: &[BatchCommitItem]) -> Vec<Result<Sale>> {
        // Claim every distinct idempotency key in sorted order: two
        // overlapping keyed batches then always park on each other in the
        // same global order, so neither can hold a key the other claimed
        // first while waiting on one it claimed later.
        let mut keys: Vec<(u64, u64)> = items
            .iter()
            .filter_map(|i| i.nonce.map(|n| (i.snapshot_epoch, n)))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let claims: BTreeMap<(u64, u64), DedupClaim> = keys
            .into_iter()
            .map(|key| (key, self.dedup.claim(key)))
            .collect();
        let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut results: Vec<Option<Result<Sale>>> = Vec::with_capacity(items.len());
        let mut prepared: Vec<(usize, PreparedSale)> = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let key = item.nonce.map(|n| (item.snapshot_epoch, n));
            if let Some(key) = key {
                if !seen.insert(key) {
                    results.push(Some(Err(MarketError::InvalidConfig {
                        reason: "duplicate idempotency nonce within one batch".to_string(),
                    })));
                    continue;
                }
                if let Some(&DedupClaim::Replay(tx_id)) = claims.get(&key) {
                    results.push(Some(self.replay_sale(tx_id)));
                    continue;
                }
            }
            match self.prepare_commit(
                item.x,
                item.snapshot_epoch,
                item.payment,
                item.nonce,
                item.buyer,
            ) {
                Ok(p) => {
                    prepared.push((i, p));
                    results.push(None);
                }
                Err(e) => {
                    // This slot owned its claim; release it unfulfilled.
                    if let Some(key) = key {
                        self.dedup.resolve(key, None);
                    }
                    results.push(Some(Err(e)));
                }
            }
        }
        let journaled: Vec<std::result::Result<(), crate::journal::JournalError>> = match &self
            .journal
        {
            Some(journal) => journal.append_sales(prepared.iter().map(|(_, p)| p.record).collect()),
            None => prepared.iter().map(|_| Ok(())).collect(),
        };
        for ((slot, p), journal_result) in prepared.into_iter().zip(journaled) {
            let key = p.record.nonce.map(|n| (p.record.snapshot_epoch, n));
            let outcome = match journal_result {
                Ok(()) => {
                    // Record before resolving so a parked retry that wakes
                    // on this key finds the sale already on its stripe.
                    let sale = self.record_prepared(p);
                    if let Some(key) = key {
                        self.dedup.resolve(key, Some(sale.transaction.sequence));
                    }
                    Ok(sale)
                }
                Err(e) => {
                    if let Some(key) = key {
                        self.dedup.resolve(key, None);
                    }
                    // The slot's sale never became durable: refund its
                    // budget charge.
                    if let Some(buyer) = p.record.buyer {
                        self.accounts
                            .refund(buyer, p.record.transaction.inverse_ncp);
                    }
                    Err(e.into())
                }
            };
            if let Some(entry) = results.get_mut(slot) {
                *entry = Some(outcome);
            }
        }
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or(Err(MarketError::InvalidConfig {
                    reason: "batch commit slot left unresolved".to_string(),
                }))
            })
            .collect()
    }

    /// Redeems a quote transported out-of-process by its `(x, epoch)`
    /// identity — the hook behind the network serving layer's `COMMIT`.
    ///
    /// An in-process [`Quote`] cannot cross a wire (its metric tag is a
    /// static borrow), and [`Broker::commit`] never trusts the quote's
    /// price/error fields anyway: it re-derives both from the published
    /// snapshot. So a remote commit only needs the two fields that carry
    /// meaning — the quoted inverse NCP and the snapshot epoch it was
    /// priced against — and gets the same epoch check, payment validation
    /// and price re-derivation as a local one.
    pub fn commit_at(&self, x: f64, snapshot_epoch: u64, payment: f64) -> Result<Sale> {
        self.commit_at_for(x, snapshot_epoch, payment, None)
    }

    /// [`Broker::commit_at`] with an optional buyer identity — the hook
    /// behind a wire v5 `COMMIT` that carries a buyer id. The buyer's
    /// budget is charged before the durability barrier.
    pub fn commit_at_for(
        &self,
        x: f64,
        snapshot_epoch: u64,
        payment: f64,
        buyer: Option<u64>,
    ) -> Result<Sale> {
        let metric = self.published()?.metric_name();
        self.commit_with_nonce(
            Quote {
                x,
                delta: if x > 0.0 { 1.0 / x } else { f64::NAN },
                price: f64::NAN,
                expected_error: f64::NAN,
                metric,
                snapshot_epoch,
            },
            payment,
            None,
            buyer,
        )
    }

    /// [`Broker::commit_at`] with an idempotency key — the hook behind a
    /// *retried* `COMMIT` after a lost ACK.
    ///
    /// The key is `(snapshot_epoch, nonce)`. A first commit under a key
    /// behaves exactly like [`Broker::commit_at`], additionally journaling
    /// the key with the sale; a repeat of the same key returns the
    /// *original* sale — same transaction id, price, and bitwise-identical
    /// noisy model (sale noise is a pure function of `(seed, transaction
    /// id, x)`) — without charging again. The dedup table survives
    /// restarts because it is replayed from the journal, so a retry that
    /// lands on a recovered broker still dedups. The key lookup runs
    /// *before* the epoch check: a retry of a sale that committed just
    /// before a re-`open_market()` (or a crash) replays rather than
    /// failing `QuoteExpired`. A keyed commit claims its key before the
    /// journal append and resolves it after, so concurrent keyed commits
    /// share group-commit fsyncs; only a *retry of the same key* parks
    /// until the first attempt resolves. Plain commits are unaffected.
    pub fn commit_at_idempotent(
        &self,
        x: f64,
        snapshot_epoch: u64,
        payment: f64,
        nonce: u64,
    ) -> Result<Sale> {
        self.commit_at_idempotent_for(x, snapshot_epoch, payment, nonce, None)
    }

    /// [`Broker::commit_at_idempotent`] with an optional buyer identity.
    ///
    /// A duplicate-nonce retry replays the journalled sale and **never
    /// re-charges the buyer's budget** — the replay path skips
    /// `prepare_commit` entirely, so a retried ACK-lost commit charges
    /// both money and noise budget exactly once, including across
    /// restarts (recovery rebuilds accounts from the replayed sales).
    pub fn commit_at_idempotent_for(
        &self,
        x: f64,
        snapshot_epoch: u64,
        payment: f64,
        nonce: u64,
        buyer: Option<u64>,
    ) -> Result<Sale> {
        let metric = self.published()?.metric_name();
        let key = (snapshot_epoch, nonce);
        match self.dedup.claim(key) {
            DedupClaim::Replay(tx_id) => self.replay_sale(tx_id),
            DedupClaim::Claimed => {
                let outcome = self.commit_with_nonce(
                    Quote {
                        x,
                        delta: if x > 0.0 { 1.0 / x } else { f64::NAN },
                        price: f64::NAN,
                        expected_error: f64::NAN,
                        metric,
                        snapshot_epoch,
                    },
                    payment,
                    Some(nonce),
                    buyer,
                );
                let tx_id = outcome.as_ref().ok().map(|s| s.transaction.sequence);
                self.dedup.resolve(key, tx_id);
                outcome
            }
        }
    }

    /// Reconstructs the exact [`Sale`] of an already-recorded transaction:
    /// the ledger row is read back off its stripe and the noisy model is
    /// re-derived from the transaction's private RNG stream, which depends
    /// only on `(seed, transaction id, x)` — identical across threads,
    /// re-opens and restarts (training is deterministic).
    fn replay_sale(&self, tx_id: u64) -> Result<Sale> {
        // nimbus-audit: allow(no-panic) — index is tx_id % LEDGER_SHARDS
        let transaction = self.shards[tx_id as usize % LEDGER_SHARDS]
            .lock()
            .transactions()
            .iter()
            .copied()
            .find(|t| t.sequence == tx_id)
            .ok_or_else(|| MarketError::InvalidConfig {
                reason: format!("idempotency table points at unknown transaction {tx_id}"),
            })?;
        let snapshot = self.published()?;
        let ncp = InverseNcp::new(transaction.inverse_ncp)?.ncp();
        let mut rng = seeded_rng(split_stream(self.config.seed, tx_id));
        let model = self.mechanism.perturb(snapshot.optimal(), ncp, &mut rng)?;
        Ok(Sale {
            model,
            inverse_ncp: transaction.inverse_ncp,
            price: transaction.price,
            expected_error: transaction.expected_error,
            metric: snapshot.metric_name(),
            transaction,
        })
    }

    /// Whether this broker journals its sales.
    pub fn has_journal(&self) -> bool {
        self.journal.is_some()
    }

    /// What the journal replayed when this broker was built (`None`
    /// without a journal; an empty recovery for a fresh journal).
    pub fn recovery(&self) -> Option<&Recovery> {
        self.recovery.as_ref()
    }

    /// Forces a journal checkpoint — the log is compacted to one record
    /// holding the full books. Used by the serving layer's graceful
    /// shutdown; a no-op without a journal.
    pub fn checkpoint_journal(&self) -> Result<()> {
        match &self.journal {
            Some(journal) => journal.checkpoint().map_err(Into::into),
            None => Ok(()),
        }
    }

    /// Quotes and commits every request, fanning out over scoped threads
    /// (up to available parallelism). Per-request failures come back as
    /// per-slot `Err`s in input order; successful sales draw their noise
    /// from their own transaction's RNG stream, so results are
    /// reproducible for a given arrival order of transaction ids.
    pub fn purchase_batch(&self, requests: &[PurchaseRequest]) -> Vec<Result<Sale>> {
        self.purchase_batch_with(requests, None)
    }

    /// [`Broker::purchase_batch`] with an explicit thread cap (used by the
    /// throughput benchmark to compare 1-, 4- and 8-thread serving).
    pub fn purchase_batch_with(
        &self,
        requests: &[PurchaseRequest],
        max_threads: Option<usize>,
    ) -> Vec<Result<Sale>> {
        parallel_map(requests.to_vec(), max_threads, |request| {
            let quote = self.quote_request(request)?;
            self.commit(quote, quote.price)
        })
    }

    /// Builds the buyer-facing price–error curve for an arbitrary error
    /// function `ε`, Monte-Carlo estimated with the broker's mechanism.
    ///
    /// Estimation fans out over scoped threads with per-δ RNG streams
    /// derived from the broker's seed, so the curve is deterministic for a
    /// given configuration and independent of thread scheduling.
    pub fn price_error_curve<F>(&self, evaluate: F) -> Result<PriceErrorCurve>
    where
        F: Fn(&LinearModel) -> nimbus_core::Result<f64> + Sync,
    {
        let snapshot = self.published()?;
        let deltas: Vec<Ncp> = snapshot
            .problem()
            .parameters()
            .iter()
            .map(|&x| Ok(InverseNcp::new(x)?.ncp()))
            .collect::<Result<Vec<_>>>()?;
        let curve = ErrorCurve::estimate_parallel(
            self.mechanism.as_ref(),
            snapshot.optimal(),
            evaluate,
            &deltas,
            self.config.error_curve_samples,
            split_stream(self.config.seed, u64::MAX),
            None,
        )?;
        PriceErrorCurve::new(&curve, snapshot.pricing()).map_err(Into::into)
    }

    /// [`Broker::price_error_curve`] for a first-class [`ErrorMetric`] —
    /// exact (closed-form) when the metric provides one, deterministic
    /// parallel Monte Carlo otherwise.
    pub fn price_error_curve_for(&self, metric: &dyn ErrorMetric) -> Result<PriceErrorCurve> {
        let snapshot = self.published()?;
        let deltas: Vec<Ncp> = snapshot
            .problem()
            .parameters()
            .iter()
            .map(|&x| Ok(InverseNcp::new(x)?.ncp()))
            .collect::<Result<Vec<_>>>()?;
        let provider = CurveProvider::new(
            self.config.error_curve_samples,
            split_stream(self.config.seed, u64::MAX),
        );
        let curve =
            provider.curve_for(metric, self.mechanism.as_ref(), snapshot.optimal(), &deltas)?;
        PriceErrorCurve::new(&curve, snapshot.pricing()).map_err(Into::into)
    }

    /// A merged, sequence-ordered copy of the sharded ledger.
    pub fn ledger(&self) -> Ledger {
        let shards: Vec<LedgerShard> = self.shards.iter().map(|s| s.lock().clone()).collect();
        Ledger::from_shards(shards.iter())
    }

    /// Total revenue collected so far.
    pub fn collected_revenue(&self) -> f64 {
        self.shards.iter().map(|s| s.lock().total_revenue()).sum()
    }

    /// Number of completed sales.
    pub fn sales_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().count()).sum()
    }

    /// One consistent-enough accounting snapshot for monitoring surfaces
    /// (the `INFO` op of the network serving layer, dashboards, logs).
    /// Epoch and expected revenue are read from the published snapshot;
    /// sales and revenue are summed across the ledger stripes.
    pub fn market_stats(&self) -> MarketStats {
        let snapshot = self.snapshot();
        MarketStats {
            epoch: snapshot.map(MarketSnapshot::epoch),
            expected_revenue: snapshot.map(MarketSnapshot::expected_revenue),
            sales: self.sales_count(),
            revenue: self.collected_revenue(),
            budget_rejects: self.accounts.budget_rejects(),
            exhausted_buyers: self.accounts.exhausted_buyers(),
        }
    }

    /// The per-buyer noise-budget ledger of this listing.
    pub fn accounts(&self) -> &BuyerAccounts {
        &self.accounts
    }

    /// The configured per-buyer noise budget (`None` = unmetered).
    pub fn buyer_budget(&self) -> Option<f64> {
        self.accounts.budget()
    }
}

/// Aggregate broker accounting, served to monitoring clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketStats {
    /// Epoch of the published snapshot (`None` before `open_market`).
    pub epoch: Option<u64>,
    /// Expected revenue of the posted prices (`None` before `open_market`).
    pub expected_revenue: Option<f64>,
    /// Completed sales so far.
    pub sales: usize,
    /// Revenue collected so far.
    pub revenue: f64,
    /// Commits rejected because a buyer's noise budget was exhausted.
    pub budget_rejects: u64,
    /// Buyers whose remaining noise budget is zero (0 when unmetered).
    pub exhausted_buyers: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::{DemandCurve, MarketCurves, ValueCurve};
    use nimbus_data::catalog::{DatasetSpec, PaperDataset};

    fn test_broker() -> Broker {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 600)
            .materialize(7)
            .unwrap();
        let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
        let seller = Seller::new("test", tt, curves);
        Broker::builder(seller)
            .trainer(LinearRegressionTrainer::ridge(1e-6))
            .mechanism(GaussianMechanism)
            .n_price_points(50)
            .error_curve_samples(50)
            .seed(42)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_config() {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 100)
            .materialize(7)
            .unwrap();
        let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
        let build = |f: fn(BrokerBuilder) -> BrokerBuilder| {
            f(Broker::builder(Seller::new("v", tt.clone(), curves))).build()
        };
        assert!(matches!(
            build(|b| b.n_price_points(1)),
            Err(MarketError::InvalidConfig { .. })
        ));
        assert!(matches!(
            build(|b| b.error_curve_samples(0)),
            Err(MarketError::InvalidConfig { .. })
        ));
        assert!(matches!(
            build(|b| b.commission(1.0)),
            Err(MarketError::InvalidConfig { .. })
        ));
        assert!(matches!(
            build(|b| b.commission(-0.1)),
            Err(MarketError::InvalidConfig { .. })
        ));
        assert!(build(|b| b).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid broker configuration")]
    fn legacy_new_panics_on_invalid_config() {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 100)
            .materialize(7)
            .unwrap();
        let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
        let _ = Broker::new(
            Seller::new("bad", tt, curves),
            Box::new(LinearRegressionTrainer::ridge(1e-6)),
            Box::new(GaussianMechanism),
            BrokerConfig {
                n_price_points: 0,
                error_curve_samples: 50,
                seed: 1,
            },
        );
    }

    #[test]
    fn concurrent_same_key_retries_charge_once() {
        // The dedup table no longer serializes keyed commits behind one
        // lock across the durability barrier: racing retries of one key
        // must still produce exactly one sale, and every racer must see
        // the same transaction.
        let broker = Arc::new(test_broker());
        broker.open_market().unwrap();
        let quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(25.0))
            .unwrap();
        let sales: Vec<Sale> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let broker = Arc::clone(&broker);
                    let q = quote;
                    s.spawn(move || {
                        broker
                            .commit_at_idempotent(q.x, q.snapshot_epoch, q.price, 0xFEED)
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let first = &sales[0];
        for sale in &sales {
            assert_eq!(sale.transaction.sequence, first.transaction.sequence);
            assert_eq!(sale.price, first.price);
            assert_eq!(
                sale.model.weights().as_slice(),
                first.model.weights().as_slice()
            );
        }
        let ledger = broker.ledger();
        assert_eq!(ledger.count(), 1, "one key, one sale");
        // Distinct keys racing concurrently all land individually.
        let q2 = broker
            .quote_request(PurchaseRequest::AtInverseNcp(30.0))
            .unwrap();
        std::thread::scope(|s| {
            for nonce in 0..8u64 {
                let broker = Arc::clone(&broker);
                let q = q2;
                s.spawn(move || {
                    broker
                        .commit_at_idempotent(q.x, q.snapshot_epoch, q.price, nonce)
                        .unwrap()
                });
            }
        });
        assert_eq!(broker.ledger().count(), 9);
    }

    #[test]
    fn batch_commit_rejects_in_batch_duplicate_nonce() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(25.0))
            .unwrap();
        let item = |nonce| BatchCommitItem {
            x: quote.x,
            snapshot_epoch: quote.snapshot_epoch,
            payment: quote.price,
            nonce: Some(nonce),
            buyer: None,
        };
        let results = broker.commit_batch_at(&[item(7), item(7), item(8)]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(MarketError::InvalidConfig { .. })));
        assert!(results[2].is_ok());
        assert_eq!(
            broker.ledger().count(),
            2,
            "the duplicate slot sells nothing"
        );
        // A *retry* of the same key in a later batch replays, not re-sells.
        let retry = broker.commit_batch_at(&[item(7)]);
        assert_eq!(
            retry[0].as_ref().unwrap().transaction.sequence,
            results[0].as_ref().unwrap().transaction.sequence
        );
        assert_eq!(broker.ledger().count(), 2);
    }

    fn budget_broker(budget: f64, journal: Option<&PathBuf>) -> Broker {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 600)
            .materialize(7)
            .unwrap();
        let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
        let seller = Seller::new("budgeted", tt, curves);
        let mut builder = Broker::builder(seller)
            .trainer(LinearRegressionTrainer::ridge(1e-6))
            .mechanism(GaussianMechanism)
            .n_price_points(50)
            .error_curve_samples(50)
            .seed(42)
            .buyer_budget(budget);
        if let Some(path) = journal {
            builder = builder.journal(path.clone());
        }
        builder.build().unwrap()
    }

    #[test]
    fn builder_validates_buyer_budget() {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 100)
            .materialize(7)
            .unwrap();
        let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Broker::builder(Seller::new("v", tt.clone(), curves))
                    .buyer_budget(bad)
                    .build(),
                Err(MarketError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn budget_exhaustion_rejects_typed_before_sale() {
        let broker = budget_broker(40.0, None);
        broker.open_market().unwrap();
        let epoch = broker.published().unwrap().epoch();
        let quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(25.0))
            .unwrap();
        // First purchase (x = 25) fits the 40-budget; the second does not.
        broker
            .commit_at_for(quote.x, epoch, quote.price, Some(1))
            .unwrap();
        let err = broker
            .commit_at_for(quote.x, epoch, quote.price, Some(1))
            .unwrap_err();
        assert!(matches!(
            err,
            MarketError::BudgetExhausted {
                buyer: 1,
                remaining,
                ..
            } if (remaining - 15.0).abs() < 1e-9
        ));
        // The rejection sold nothing and other buyers are unaffected.
        assert_eq!(broker.ledger().count(), 1);
        broker
            .commit_at_for(quote.x, epoch, quote.price, Some(2))
            .unwrap();
        assert_eq!(broker.accounts().budget_rejects(), 1);
        let stats = broker.market_stats();
        assert_eq!(stats.budget_rejects, 1);
    }

    #[test]
    fn anonymous_commits_bypass_budget() {
        let broker = budget_broker(1.0, None);
        broker.open_market().unwrap();
        let epoch = broker.published().unwrap().epoch();
        let quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(25.0))
            .unwrap();
        for _ in 0..3 {
            broker.commit_at(quote.x, epoch, quote.price).unwrap();
        }
        assert_eq!(broker.ledger().count(), 3);
        assert_eq!(broker.accounts().budget_rejects(), 0);
    }

    #[test]
    fn duplicate_nonce_retry_does_not_double_charge_budget() {
        let broker = budget_broker(30.0, None);
        broker.open_market().unwrap();
        let epoch = broker.published().unwrap().epoch();
        let quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(25.0))
            .unwrap();
        let first = broker
            .commit_at_idempotent_for(quote.x, epoch, quote.price, 0xABCD, Some(9))
            .unwrap();
        // The budget (30) cannot cover a second x = 25 purchase, yet the
        // same-nonce retry must replay, not reject: it is the same sale.
        let retry = broker
            .commit_at_idempotent_for(quote.x, epoch, quote.price, 0xABCD, Some(9))
            .unwrap();
        assert_eq!(retry.transaction.sequence, first.transaction.sequence);
        assert_eq!(broker.accounts().spent(9), quote.x);
        assert_eq!(broker.ledger().count(), 1);
    }

    #[test]
    fn budget_accounts_survive_restart_via_journal() {
        let path = std::env::temp_dir().join(format!(
            "nimbus-broker-budget-{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let (x, epoch_nonce) = {
            let broker = budget_broker(40.0, Some(&path));
            broker.open_market().unwrap();
            let epoch = broker.published().unwrap().epoch();
            let quote = broker
                .quote_request(PurchaseRequest::AtInverseNcp(25.0))
                .unwrap();
            broker
                .commit_at_idempotent_for(quote.x, epoch, quote.price, 0x11, Some(5))
                .unwrap();
            (quote.x, (epoch, 0x11u64))
        };
        // "Restart": rebuild from the journal alone.
        let broker = budget_broker(40.0, Some(&path));
        assert_eq!(broker.accounts().spent(5), x);
        broker.open_market().unwrap();
        // A same-nonce retry across the restart replays without charging.
        let quote_price = broker.quote(x).unwrap();
        let replayed =
            broker.commit_at_idempotent_for(x, epoch_nonce.0, quote_price, epoch_nonce.1, Some(5));
        assert!(replayed.is_ok());
        assert_eq!(broker.accounts().spent(5), x, "replay must not re-charge");
        // And the surviving spend still enforces the cap.
        let epoch = broker.published().unwrap().epoch();
        let quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(25.0))
            .unwrap();
        assert!(matches!(
            broker.commit_at_for(quote.x, epoch, quote.price, Some(5)),
            Err(MarketError::BudgetExhausted { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_failure_refunds_budget_charge() {
        let path = std::env::temp_dir().join(format!(
            "nimbus-broker-refund-{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 600)
            .materialize(7)
            .unwrap();
        let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
        // Fail the 2nd journal record write: the 1st buyer-attributed
        // commit lands, the 2nd fails at the durability barrier.
        let broker = Broker::builder(Seller::new("refund", tt, curves))
            .trainer(LinearRegressionTrainer::ridge(1e-6))
            .mechanism(GaussianMechanism)
            .n_price_points(50)
            .error_curve_samples(50)
            .seed(42)
            .buyer_budget(60.0)
            .journal(path.clone())
            .journal_faults(FaultPlan::new().fail_nth_write(2))
            .build()
            .unwrap();
        broker.open_market().unwrap();
        let epoch = broker.published().unwrap().epoch();
        let quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(25.0))
            .unwrap();
        broker
            .commit_at_for(quote.x, epoch, quote.price, Some(3))
            .unwrap();
        assert!(broker
            .commit_at_for(quote.x, epoch, quote.price, Some(3))
            .is_err());
        // The failed sale's charge was refunded: spend covers one sale.
        assert_eq!(broker.accounts().spent(3), quote.x);
        // And the freed headroom is spendable again.
        broker
            .commit_at_for(quote.x, epoch, quote.price, Some(3))
            .unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn training_is_lazy_and_cached() {
        let broker = test_broker();
        assert!(!broker.is_trained());
        let m1 = broker.optimal_model().unwrap();
        assert!(broker.is_trained());
        let m2 = broker.optimal_model().unwrap();
        assert_eq!(m1.weights().as_slice(), m2.weights().as_slice());
    }

    #[test]
    fn market_must_open_before_sales() {
        let broker = test_broker();
        assert!(!broker.is_open());
        assert!(broker.snapshot().is_none());
        assert!(matches!(
            broker.quote(10.0),
            Err(MarketError::MarketNotOpen)
        ));
        assert!(matches!(
            broker.quote_request(PurchaseRequest::AtInverseNcp(10.0)),
            Err(MarketError::MarketNotOpen)
        ));
        let revenue = broker.open_market().unwrap();
        assert!(revenue > 0.0);
        assert!(broker.is_open());
        assert!(broker.quote(10.0).is_ok());
        assert_eq!(broker.snapshot().unwrap().epoch(), 1);
    }

    #[test]
    fn posted_menu_is_arbitrage_free() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let menu = broker.posted_menu().unwrap();
        assert_eq!(menu.len(), 50);
        // Monotone prices, non-increasing unit price.
        for w in menu.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
            assert!(w[1].1 / w[1].0 <= w[0].1 / w[0].0 + 1e-9);
        }
        // The snapshot itself certifies the relaxed constraints.
        assert!(broker
            .snapshot()
            .unwrap()
            .pricing()
            .satisfies_relaxed_constraints(1e-9));
    }

    #[test]
    fn quote_then_commit_returns_noisy_model() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let optimal = broker.optimal_model().unwrap();
        let quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(10.0))
            .unwrap();
        assert_eq!(quote.snapshot_epoch, 1);
        assert_eq!(quote.metric, "square");
        assert!((quote.delta - 0.1).abs() < 1e-12);
        assert!((quote.expected_error - 0.1).abs() < 1e-12);
        let sale = broker.commit(quote, quote.price).unwrap();
        assert_eq!(sale.model.dim(), optimal.dim());
        assert_eq!(sale.metric, "square");
        assert!((sale.expected_error - 0.1).abs() < 1e-12);
        // The instance differs from the optimum (noise was added).
        assert!(sale.model.distance_squared(&optimal).unwrap() > 0.0);
        assert_eq!(broker.sales_count(), 1);
        assert!((broker.collected_revenue() - sale.price).abs() < 1e-12);
        assert_eq!(broker.ledger().count(), 1);
    }

    #[test]
    fn stale_quote_is_rejected_after_reopen() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(10.0))
            .unwrap();
        broker.open_market().unwrap();
        assert_eq!(broker.snapshot().unwrap().epoch(), 2);
        assert!(matches!(
            broker.commit(quote, quote.price * 2.0),
            Err(MarketError::QuoteExpired {
                quoted: 1,
                current: 2
            })
        ));
        // A fresh quote against the new snapshot commits fine.
        let fresh = broker
            .quote_request(PurchaseRequest::AtInverseNcp(10.0))
            .unwrap();
        assert!(broker.commit(fresh, fresh.price).is_ok());
    }

    #[test]
    fn tampered_quote_cannot_underpay() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let mut quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(50.0))
            .unwrap();
        assert!(quote.price > 0.0);
        // Buyer edits the price field; commit re-derives from the snapshot.
        let real_price = quote.price;
        quote.price = 0.0;
        assert!(matches!(
            broker.commit(quote, real_price / 2.0),
            Err(MarketError::InsufficientPayment { .. })
        ));
        assert_eq!(broker.sales_count(), 0);
    }

    #[test]
    fn commit_at_matches_in_process_commit_semantics() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(25.0))
            .unwrap();
        let sale = broker
            .commit_at(25.0, quote.snapshot_epoch, quote.price)
            .unwrap();
        assert!((sale.price - quote.price).abs() < 1e-12);
        assert!((sale.expected_error - quote.expected_error).abs() < 1e-12);
        // Wrong epoch and underpayment fail exactly like a local commit.
        assert!(matches!(
            broker.commit_at(25.0, quote.snapshot_epoch + 1, quote.price),
            Err(MarketError::QuoteExpired { .. })
        ));
        assert!(matches!(
            broker.commit_at(25.0, quote.snapshot_epoch, quote.price / 2.0),
            Err(MarketError::InsufficientPayment { .. })
        ));
        assert!(broker
            .commit_at(f64::NAN, quote.snapshot_epoch, 1e9)
            .is_err());
    }

    #[test]
    fn non_finite_or_negative_payment_is_rejected() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(50.0))
            .unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, -0.001] {
            assert!(
                matches!(
                    broker.commit(quote, bad),
                    Err(MarketError::InvalidPayment { .. })
                ),
                "payment {bad} must be rejected as invalid"
            );
        }
        assert_eq!(broker.sales_count(), 0);
        // The validation runs even before the market-open check.
        let closed = test_broker();
        assert!(matches!(
            closed.commit(quote, f64::NAN),
            Err(MarketError::InvalidPayment { .. })
        ));
    }

    #[test]
    fn quote_and_quote_request_share_one_path() {
        let broker = test_broker();
        broker.open_market().unwrap();
        for x in [1.0, 7.5, 42.0, 99.0] {
            let via_scalar = broker.quote(x).unwrap();
            let via_request = broker
                .quote_request(PurchaseRequest::AtInverseNcp(x))
                .unwrap();
            assert_eq!(via_scalar.to_bits(), via_request.price.to_bits());
        }
        // Both reject invalid x with the same typed error.
        for bad in [0.0, -3.0, f64::NAN] {
            assert!(broker.quote(bad).is_err());
            assert!(broker
                .quote_request(PurchaseRequest::AtInverseNcp(bad))
                .is_err());
        }
    }

    #[test]
    fn market_stats_reflect_ledger_and_epoch() {
        let broker = test_broker();
        let stats = broker.market_stats();
        assert_eq!(stats.epoch, None);
        assert_eq!(stats.sales, 0);
        broker.open_market().unwrap();
        let q = broker
            .quote_request(PurchaseRequest::AtInverseNcp(10.0))
            .unwrap();
        broker.commit(q, q.price).unwrap();
        let stats = broker.market_stats();
        assert_eq!(stats.epoch, Some(1));
        assert_eq!(stats.sales, 1);
        assert!((stats.revenue - q.price).abs() < 1e-12);
        assert!(stats.expected_revenue.unwrap() > 0.0);
    }

    #[test]
    fn insufficient_payment_is_rejected() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let quote = broker
            .quote_request(PurchaseRequest::AtInverseNcp(50.0))
            .unwrap();
        assert!(quote.price > 0.0);
        assert!(matches!(
            broker.commit(quote, quote.price / 2.0),
            Err(MarketError::InsufficientPayment { .. })
        ));
        assert_eq!(broker.sales_count(), 0);
    }

    #[test]
    fn error_budget_buys_cheapest_feasible() {
        let broker = test_broker();
        broker.open_market().unwrap();
        // Budget e = 0.05 → x = 20.
        let q = broker
            .quote_request(PurchaseRequest::ErrorBudget(0.05))
            .unwrap();
        assert!((q.x - 20.0).abs() < 1e-9);
        // Very loose budget clamps to the menu floor x = 1.
        let q = broker
            .quote_request(PurchaseRequest::ErrorBudget(100.0))
            .unwrap();
        assert!((q.x - 1.0).abs() < 1e-9);
        // Impossible accuracy (x would exceed 100).
        assert!(broker
            .quote_request(PurchaseRequest::ErrorBudget(0.001))
            .is_err());
    }

    #[test]
    fn price_budget_maximizes_accuracy() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let menu = broker.posted_menu().unwrap();
        let (x_max, p_max) = *menu.last().unwrap();
        // Unlimited budget buys the best version.
        let q = broker
            .quote_request(PurchaseRequest::PriceBudget(p_max * 2.0))
            .unwrap();
        assert!((q.x - x_max).abs() < 1e-9);
        assert!((q.price - p_max).abs() < 1e-9);
        // Mid budget: the resolved price must not exceed the budget, and
        // bumping x must exceed it.
        let budget = p_max / 2.0;
        let q = broker
            .quote_request(PurchaseRequest::PriceBudget(budget))
            .unwrap();
        assert!(q.price <= budget + 1e-9);
        let bumped = broker.quote(q.x + 0.5).unwrap();
        assert!(
            bumped >= budget - 1e-6,
            "binary search not tight: {bumped} vs {budget}"
        );
        // No budget at all.
        assert!(broker
            .quote_request(PurchaseRequest::PriceBudget(0.0))
            .is_err());
    }

    #[test]
    fn price_error_curve_for_test_mse() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let test_set = broker.seller().dataset().test.clone();
        let curve = broker
            .price_error_curve(move |m| nimbus_ml::metrics::mse(m, &test_set).map_err(Into::into))
            .unwrap();
        assert_eq!(curve.len(), 50);
        // More accurate versions cost more.
        let pts = curve.points();
        assert!(pts[0].price >= pts[pts.len() - 1].price);
    }

    #[test]
    fn commission_splits_revenue() {
        let broker = test_broker().with_commission(0.2);
        broker.open_market().unwrap();
        for x in [30.0, 60.0] {
            let q = broker
                .quote_request(PurchaseRequest::AtInverseNcp(x))
                .unwrap();
            broker.commit(q, q.price + 1.0).unwrap();
        }
        let total = broker.collected_revenue();
        assert!(total > 0.0);
        assert!((broker.broker_cut() - 0.2 * total).abs() < 1e-12);
        assert!((broker.seller_proceeds() - 0.8 * total).abs() < 1e-12);
        assert!((broker.broker_cut() + broker.seller_proceeds() - total).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "commission rate")]
    fn commission_out_of_range_panics() {
        let _ = test_broker().with_commission(1.0);
    }

    fn classification_broker(
        metric_for: fn(nimbus_data::Dataset) -> nimbus_ml::LossMetric,
    ) -> Broker {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated2, 600)
            .materialize(11)
            .unwrap();
        let test_set = tt.test.clone();
        let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
        let seller = Seller::new("cls", tt, curves);
        Broker::builder(seller)
            .trainer(nimbus_ml::LogisticRegressionTrainer::new(1e-4))
            .mechanism(GaussianMechanism)
            .error_metric(metric_for(test_set))
            .n_price_points(40)
            .error_curve_samples(60)
            .seed(42)
            .build()
            .unwrap()
    }

    #[test]
    fn metric_market_prices_through_phi() {
        for (metric_for, name) in [
            (
                nimbus_ml::LossMetric::logistic
                    as fn(nimbus_data::Dataset) -> nimbus_ml::LossMetric,
                "logistic",
            ),
            (nimbus_ml::LossMetric::zero_one, "zero_one"),
        ] {
            let broker = classification_broker(metric_for);
            let revenue = broker.open_market().unwrap();
            assert!(revenue > 0.0, "{name}: revenue {revenue}");
            let snapshot = broker.snapshot().unwrap();
            assert_eq!(snapshot.metric_name(), name);
            // The cached curve is monotone (smoothed) over the menu grid.
            let sm: Vec<f64> = snapshot
                .error_curve()
                .points()
                .iter()
                .map(|p| p.smoothed_error)
                .collect();
            assert!(sm.windows(2).all(|w| w[1] >= w[0] - 1e-12), "{name}");

            // An error budget inside the curve's range resolves through φ:
            // the quoted version's expected error meets the budget.
            let (e_lo, e_hi) = (sm[0], sm[sm.len() - 1]);
            let budget = 0.5 * (e_lo + e_hi);
            let quote = broker
                .quote_request(PurchaseRequest::ErrorBudget(budget))
                .unwrap();
            assert_eq!(quote.metric, name);
            assert!(
                quote.expected_error <= budget + 1e-9,
                "{name}: {} > {budget}",
                quote.expected_error
            );
            let sale = broker.commit(quote, quote.price).unwrap();
            assert_eq!(sale.metric, name);
            assert!((sale.expected_error - quote.expected_error).abs() < 1e-12);

            // Budgets tighter than the best version are unsatisfiable.
            if e_lo > 1e-6 {
                assert!(broker
                    .quote_request(PurchaseRequest::ErrorBudget(e_lo / 10.0))
                    .is_err());
            }
            // Very loose budgets clamp to the menu floor.
            let loose = broker
                .quote_request(PurchaseRequest::ErrorBudget(e_hi * 10.0))
                .unwrap();
            assert!((loose.x - 1.0).abs() < 1e-9, "{name}");
        }
    }

    #[test]
    fn metric_market_reopen_is_deterministic() {
        let a = classification_broker(nimbus_ml::LossMetric::logistic);
        let b = classification_broker(nimbus_ml::LossMetric::logistic);
        let ra = a.open_market().unwrap();
        let rb = b.open_market().unwrap();
        assert_eq!(
            ra.to_bits(),
            rb.to_bits(),
            "MC curve must be seed-determined"
        );
        let ca = a.snapshot().unwrap().error_curve().points().to_vec();
        let cb = b.snapshot().unwrap().error_curve().points().to_vec();
        for (p, q) in ca.iter().zip(&cb) {
            assert_eq!(p.mean_error.to_bits(), q.mean_error.to_bits());
        }
    }

    #[test]
    fn purchase_batch_fans_out_and_preserves_order() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let requests: Vec<PurchaseRequest> = (0..64)
            .map(|i| PurchaseRequest::AtInverseNcp(1.0 + (i % 99) as f64))
            .collect();
        let sales = broker.purchase_batch(&requests);
        assert_eq!(sales.len(), 64);
        for (i, s) in sales.iter().enumerate() {
            let sale = s.as_ref().expect("posted-price batch purchase succeeds");
            assert!((sale.inverse_ncp - (1.0 + (i % 99) as f64)).abs() < 1e-12);
        }
        assert_eq!(broker.sales_count(), 64);
        // Transaction ids are exactly 0..64, each exactly once.
        let ledger = broker.ledger();
        let seqs: Vec<u64> = ledger.transactions().iter().map(|t| t.sequence).collect();
        assert_eq!(seqs, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn sale_noise_depends_only_on_transaction_id() {
        // Two brokers with the same seed serve the same requests; sales
        // with equal transaction ids must carry bitwise-identical models.
        let a = test_broker();
        let b = test_broker();
        a.open_market().unwrap();
        b.open_market().unwrap();
        for x in [5.0, 17.0, 42.0] {
            let qa = a.quote_request(PurchaseRequest::AtInverseNcp(x)).unwrap();
            let qb = b.quote_request(PurchaseRequest::AtInverseNcp(x)).unwrap();
            let sa = a.commit(qa, qa.price).unwrap();
            let sb = b.commit(qb, qb.price).unwrap();
            assert_eq!(sa.transaction.sequence, sb.transaction.sequence);
            assert_eq!(sa.model.weights().as_slice(), sb.model.weights().as_slice());
        }
    }

    #[test]
    fn concurrent_purchases_are_consistent() {
        let broker = std::sync::Arc::new(test_broker());
        broker.open_market().unwrap();
        let threads = 4;
        let per_thread = 25;
        std::thread::scope(|s| {
            for t in 0..threads {
                let b = broker.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let x = 1.0 + ((t * per_thread + i) % 99) as f64;
                        let q = b.quote_request(PurchaseRequest::AtInverseNcp(x)).unwrap();
                        b.commit(q, q.price).unwrap();
                    }
                });
            }
        });
        assert_eq!(broker.sales_count(), threads * per_thread);
        assert!(broker.collected_revenue() > 0.0);
        // Merged ledger has every transaction id exactly once, in order.
        let ledger = broker.ledger();
        let seqs: Vec<u64> = ledger.transactions().iter().map(|t| t.sequence).collect();
        assert_eq!(
            seqs,
            (0..(threads * per_thread) as u64).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn batch_commit_resolves_each_item_independently() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let epoch = broker.published().unwrap().epoch();
        let q = broker
            .quote_request(PurchaseRequest::AtInverseNcp(10.0))
            .unwrap();
        let items = [
            BatchCommitItem {
                x: 10.0,
                snapshot_epoch: epoch,
                payment: q.price,
                nonce: None,
                buyer: None,
            },
            BatchCommitItem {
                x: 10.0,
                snapshot_epoch: epoch + 7,
                payment: q.price,
                nonce: None,
                buyer: None,
            },
            BatchCommitItem {
                x: 10.0,
                snapshot_epoch: epoch,
                payment: q.price * 0.5,
                nonce: None,
                buyer: None,
            },
            BatchCommitItem {
                x: 10.0,
                snapshot_epoch: epoch,
                payment: f64::NAN,
                nonce: None,
                buyer: None,
            },
            BatchCommitItem {
                x: 17.0,
                snapshot_epoch: epoch,
                payment: f64::INFINITY.min(1e12),
                nonce: Some(99),
                buyer: None,
            },
        ];
        let results = broker.commit_batch_at(&items);
        assert_eq!(results.len(), 5);
        let first = results[0].as_ref().expect("well-formed item commits");
        assert!((first.inverse_ncp - 10.0).abs() < 1e-12);
        assert!(matches!(results[1], Err(MarketError::QuoteExpired { .. })));
        assert!(matches!(
            results[2],
            Err(MarketError::InsufficientPayment { .. })
        ));
        assert!(matches!(
            results[3],
            Err(MarketError::InvalidPayment { .. })
        ));
        let keyed = results[4].as_ref().expect("keyed item commits");
        // Exactly the two admitted sales landed; failures left no trace.
        assert_eq!(broker.sales_count(), 2);

        // Replaying the keyed item inside a fresh batch dedups to the
        // original sale instead of selling twice.
        let replay = broker.commit_batch_at(&[items[4]]);
        let replayed = replay[0].as_ref().expect("nonce replay succeeds");
        assert_eq!(replayed.transaction.sequence, keyed.transaction.sequence);
        assert_eq!(
            replayed.model.weights().as_slice(),
            keyed.model.weights().as_slice()
        );
        assert_eq!(broker.sales_count(), 2);
    }
}
