//! The broker agent: trains once, prices optimally, sells noisy models.
//!
//! The broker realizes the full §3.2 interaction model:
//!
//! 1. **Listing** — takes a [`Seller`]'s dataset and market-research curves.
//! 2. **One-time training** — lazily computes and caches the optimal model
//!    `h*_λ(D)` behind a lock (the "train once, sell many" economics of
//!    §4 that make real-time interaction possible).
//! 3. **Market opening** — transforms the curves onto the inverse-NCP axis,
//!    builds the [`RevenueProblem`], runs the Algorithm 1 DP and posts the
//!    resulting piecewise-linear arbitrage-free pricing function.
//! 4. **Sales** — serves the three §3.2 buyer options. Budget arithmetic is
//!    quoted in square-loss units, where Lemma 3 gives the exact identity
//!    `expected error = δ = 1/x`; buyers with a different `ε` first build a
//!    [`nimbus_core::PriceErrorCurve`] via [`Broker::price_error_curve`].
//!
//! The broker is `Sync`: the model cache uses a `parking_lot::RwLock`, the
//! ledger and the sampling RNG sit behind `Mutex`es, so concurrent buyers
//! can purchase from different threads (covered by a crossbeam test).

use crate::ledger::{Ledger, Transaction};
use crate::seller::Seller;
use crate::{MarketError, Result};
use nimbus_core::mechanism::RandomizedMechanism;
use nimbus_core::pricing::{PiecewiseLinearPricing, PricingFunction};
use nimbus_core::{ErrorCurve, InverseNcp, Ncp, PriceErrorCurve};
use nimbus_ml::{LinearModel, Trainer};
use nimbus_optim::{solve_revenue_dp, RevenueProblem};
use nimbus_randkit::{seeded_rng, NimbusRng};
use parking_lot::{Mutex, RwLock};

/// Broker configuration.
#[derive(Debug, Clone, Copy)]
pub struct BrokerConfig {
    /// Number of versions (price points) on the posted menu.
    pub n_price_points: usize,
    /// Monte-Carlo samples per δ when estimating buyer-facing error curves.
    pub error_curve_samples: usize,
    /// Seed for the broker's noise stream.
    pub seed: u64,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            n_price_points: 100,
            error_curve_samples: 200,
            seed: 0xB20CE2,
        }
    }
}

/// A buyer's purchase request (the three options of §3.2).
#[derive(Debug, Clone, Copy)]
pub enum PurchaseRequest {
    /// Option 1: a specific point on the curve, by inverse NCP.
    AtInverseNcp(f64),
    /// Option 2: cheapest version with expected square loss ≤ budget.
    ErrorBudget(f64),
    /// Option 3: most accurate version with price ≤ budget.
    PriceBudget(f64),
}

/// A completed sale.
#[derive(Debug, Clone)]
pub struct Sale {
    /// The noisy model instance handed to the buyer.
    pub model: LinearModel,
    /// The version's inverse NCP.
    pub inverse_ncp: f64,
    /// Price charged.
    pub price: f64,
    /// Expected square loss of the instance (`= δ`, Lemma 3).
    pub expected_square_error: f64,
    /// The ledger entry.
    pub transaction: Transaction,
}

/// The broker.
pub struct Broker {
    seller: Seller,
    trainer: Box<dyn Trainer + Send + Sync>,
    mechanism: Box<dyn RandomizedMechanism + Send + Sync>,
    config: BrokerConfig,
    /// The broker's commission rate in [0, 1) — Figure 1(B): the broker
    /// "gets a cut from the seller for each sale".
    commission: f64,
    optimal: RwLock<Option<LinearModel>>,
    market: RwLock<Option<Market>>,
    ledger: Mutex<Ledger>,
    rng: Mutex<NimbusRng>,
}

/// Posted market state.
#[derive(Debug, Clone)]
struct Market {
    problem: RevenueProblem,
    pricing: PiecewiseLinearPricing,
    expected_revenue: f64,
}

impl Broker {
    /// Creates a broker for a seller's listing.
    pub fn new(
        seller: Seller,
        trainer: Box<dyn Trainer + Send + Sync>,
        mechanism: Box<dyn RandomizedMechanism + Send + Sync>,
        config: BrokerConfig,
    ) -> Self {
        let seed = config.seed;
        Broker {
            seller,
            trainer,
            mechanism,
            config,
            commission: 0.0,
            optimal: RwLock::new(None),
            market: RwLock::new(None),
            ledger: Mutex::new(Ledger::new()),
            rng: Mutex::new(seeded_rng(seed)),
        }
    }

    /// The seller whose dataset this broker sells.
    pub fn seller(&self) -> &Seller {
        &self.seller
    }

    /// Sets the broker's commission rate (fraction of each sale kept by the
    /// broker; the remainder is the seller's proceeds). Panics outside
    /// `[0, 1)`.
    pub fn with_commission(mut self, rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "commission rate must be in [0, 1)"
        );
        self.commission = rate;
        self
    }

    /// The commission rate.
    pub fn commission(&self) -> f64 {
        self.commission
    }

    /// The broker's cut of the revenue collected so far.
    pub fn broker_cut(&self) -> f64 {
        self.collected_revenue() * self.commission
    }

    /// The seller's proceeds from the revenue collected so far.
    pub fn seller_proceeds(&self) -> f64 {
        self.collected_revenue() * (1.0 - self.commission)
    }

    /// Returns the cached optimal model, training it on first call.
    pub fn optimal_model(&self) -> Result<LinearModel> {
        if let Some(m) = self.optimal.read().as_ref() {
            return Ok(m.clone());
        }
        let mut guard = self.optimal.write();
        // Double-checked: another thread may have trained while we waited.
        if let Some(m) = guard.as_ref() {
            return Ok(m.clone());
        }
        let model = self.trainer.train(&self.seller.dataset().train)?;
        *guard = Some(model.clone());
        Ok(model)
    }

    /// Whether the one-time training has already happened.
    pub fn is_trained(&self) -> bool {
        self.optimal.read().is_some()
    }

    /// Opens the market: builds the revenue problem from the seller's
    /// curves, optimizes prices with the Algorithm 1 DP, and posts the
    /// piecewise-linear pricing function. Returns the expected revenue.
    pub fn open_market(&self) -> Result<f64> {
        let problem = self
            .seller
            .curves()
            .build_problem(self.config.n_price_points)?;
        let solution = solve_revenue_dp(&problem)?;
        let pricing = PiecewiseLinearPricing::new(
            problem
                .parameters()
                .into_iter()
                .zip(solution.prices.iter().copied())
                .collect(),
        )?;
        let expected = solution.revenue;
        *self.market.write() = Some(Market {
            problem,
            pricing,
            expected_revenue: expected,
        });
        Ok(expected)
    }

    /// Whether [`Broker::open_market`] has been called.
    pub fn is_open(&self) -> bool {
        self.market.read().is_some()
    }

    /// The posted `(inverse NCP, price)` menu.
    pub fn posted_menu(&self) -> Result<Vec<(f64, f64)>> {
        let guard = self.market.read();
        let market = guard.as_ref().ok_or(MarketError::MarketNotOpen)?;
        Ok(market
            .pricing
            .breakpoints()
            .iter()
            .copied()
            .zip(market.pricing.values().iter().copied())
            .collect())
    }

    /// Expected revenue of the posted prices under the market-research
    /// demand model.
    pub fn expected_revenue(&self) -> Result<f64> {
        let guard = self.market.read();
        Ok(guard
            .as_ref()
            .ok_or(MarketError::MarketNotOpen)?
            .expected_revenue)
    }

    /// Price quote at an arbitrary inverse NCP.
    pub fn quote(&self, x: f64) -> Result<f64> {
        let guard = self.market.read();
        let market = guard.as_ref().ok_or(MarketError::MarketNotOpen)?;
        Ok(market.pricing.price(InverseNcp::new(x)?))
    }

    /// Builds the buyer-facing price–error curve for an arbitrary error
    /// function `ε` (Monte-Carlo estimated with the broker's mechanism).
    pub fn price_error_curve<F>(&self, mut evaluate: F) -> Result<PriceErrorCurve>
    where
        F: FnMut(&LinearModel) -> nimbus_core::Result<f64>,
    {
        let optimal = self.optimal_model()?;
        let guard = self.market.read();
        let market = guard.as_ref().ok_or(MarketError::MarketNotOpen)?;
        let deltas: Vec<Ncp> = market
            .problem
            .parameters()
            .iter()
            .map(|&x| Ok(InverseNcp::new(x)?.ncp()))
            .collect::<Result<Vec<_>>>()?;
        let mut rng = self.rng.lock();
        let curve = ErrorCurve::estimate(
            self.mechanism.as_ref(),
            &optimal,
            &mut evaluate,
            &deltas,
            self.config.error_curve_samples,
            &mut rng,
        )?;
        PriceErrorCurve::new(&curve, &market.pricing).map_err(Into::into)
    }

    /// Resolves a purchase request to `(inverse NCP, price)` without buying.
    pub fn resolve(&self, request: PurchaseRequest) -> Result<(f64, f64)> {
        let guard = self.market.read();
        let market = guard.as_ref().ok_or(MarketError::MarketNotOpen)?;
        let params = market.problem.parameters();
        let x_lo = params[0];
        let x_hi = *params.last().expect("non-empty problem");
        let price = |x: f64| -> Result<f64> {
            Ok(market.pricing.price(InverseNcp::new(x)?))
        };
        match request {
            PurchaseRequest::AtInverseNcp(x) => {
                if !(x > 0.0 && x.is_finite()) {
                    return Err(nimbus_core::CoreError::InvalidNcp { value: x }.into());
                }
                Ok((x, price(x)?))
            }
            PurchaseRequest::ErrorBudget(e) => {
                if !(e > 0.0 && e.is_finite()) {
                    return Err(nimbus_core::CoreError::BudgetUnsatisfiable {
                        kind: "error",
                        budget: e,
                    }
                    .into());
                }
                // Under square loss, expected error = δ = 1/x (Lemma 3).
                // The cheapest feasible version is the noisiest: x = 1/e,
                // clamped up to the menu floor.
                let x = (1.0 / e).max(x_lo);
                if x > x_hi {
                    return Err(nimbus_core::CoreError::BudgetUnsatisfiable {
                        kind: "error",
                        budget: e,
                    }
                    .into());
                }
                Ok((x, price(x)?))
            }
            PurchaseRequest::PriceBudget(budget) => {
                if !(budget >= 0.0 && budget.is_finite()) {
                    return Err(nimbus_core::CoreError::BudgetUnsatisfiable {
                        kind: "price",
                        budget,
                    }
                    .into());
                }
                if price(x_lo)? > budget {
                    return Err(nimbus_core::CoreError::BudgetUnsatisfiable {
                        kind: "price",
                        budget,
                    }
                    .into());
                }
                // Most accurate affordable version: binary search on the
                // monotone posted curve.
                let mut lo = x_lo;
                let mut hi = x_hi;
                if price(hi)? <= budget {
                    return Ok((hi, price(hi)?));
                }
                for _ in 0..96 {
                    let mid = 0.5 * (lo + hi);
                    if price(mid)? <= budget {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                Ok((lo, price(lo)?))
            }
        }
    }

    /// Executes a purchase: resolves the request, checks the payment,
    /// perturbs the optimal model and records the transaction.
    pub fn purchase(&self, request: PurchaseRequest, payment: f64) -> Result<Sale> {
        let (x, price) = self.resolve(request)?;
        if payment + 1e-12 < price {
            return Err(MarketError::InsufficientPayment {
                price,
                offered: payment,
            });
        }
        let optimal = self.optimal_model()?;
        let ncp = InverseNcp::new(x)?.ncp();
        let model = {
            let mut rng = self.rng.lock();
            self.mechanism.perturb(&optimal, ncp, &mut rng)?
        };
        let transaction = {
            let mut ledger = self.ledger.lock();
            ledger.record(x, price, ncp.delta())
        };
        Ok(Sale {
            model,
            inverse_ncp: x,
            price,
            expected_square_error: ncp.delta(),
            transaction,
        })
    }

    /// Total revenue collected so far.
    pub fn collected_revenue(&self) -> f64 {
        self.ledger.lock().total_revenue()
    }

    /// Number of completed sales.
    pub fn sales_count(&self) -> usize {
        self.ledger.lock().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::{DemandCurve, MarketCurves, ValueCurve};
    use nimbus_core::GaussianMechanism;
    use nimbus_data::catalog::{DatasetSpec, PaperDataset};
    use nimbus_ml::LinearRegressionTrainer;

    fn test_broker() -> Broker {
        let (tt, _) = DatasetSpec::scaled(PaperDataset::Simulated1, 600)
            .materialize(7)
            .unwrap();
        let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
        let seller = Seller::new("test", tt, curves);
        Broker::new(
            seller,
            Box::new(LinearRegressionTrainer::ridge(1e-6)),
            Box::new(GaussianMechanism),
            BrokerConfig {
                n_price_points: 50,
                error_curve_samples: 50,
                seed: 42,
            },
        )
    }

    #[test]
    fn training_is_lazy_and_cached() {
        let broker = test_broker();
        assert!(!broker.is_trained());
        let m1 = broker.optimal_model().unwrap();
        assert!(broker.is_trained());
        let m2 = broker.optimal_model().unwrap();
        assert_eq!(m1.weights().as_slice(), m2.weights().as_slice());
    }

    #[test]
    fn market_must_open_before_sales() {
        let broker = test_broker();
        assert!(!broker.is_open());
        assert!(matches!(
            broker.quote(10.0),
            Err(MarketError::MarketNotOpen)
        ));
        assert!(matches!(
            broker.purchase(PurchaseRequest::AtInverseNcp(10.0), 1e9),
            Err(MarketError::MarketNotOpen)
        ));
        let revenue = broker.open_market().unwrap();
        assert!(revenue > 0.0);
        assert!(broker.is_open());
        assert!(broker.quote(10.0).is_ok());
    }

    #[test]
    fn posted_menu_is_arbitrage_free() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let menu = broker.posted_menu().unwrap();
        assert_eq!(menu.len(), 50);
        // Monotone prices, non-increasing unit price.
        for w in menu.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
            assert!(w[1].1 / w[1].0 <= w[0].1 / w[0].0 + 1e-9);
        }
    }

    #[test]
    fn purchase_at_point_returns_noisy_model() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let optimal = broker.optimal_model().unwrap();
        let sale = broker
            .purchase(PurchaseRequest::AtInverseNcp(10.0), 1e9)
            .unwrap();
        assert_eq!(sale.model.dim(), optimal.dim());
        assert!((sale.expected_square_error - 0.1).abs() < 1e-12);
        // The instance differs from the optimum (noise was added).
        assert!(sale.model.distance_squared(&optimal).unwrap() > 0.0);
        assert_eq!(broker.sales_count(), 1);
        assert!((broker.collected_revenue() - sale.price).abs() < 1e-12);
    }

    #[test]
    fn insufficient_payment_is_rejected() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let (_, price) = broker.resolve(PurchaseRequest::AtInverseNcp(50.0)).unwrap();
        assert!(price > 0.0);
        assert!(matches!(
            broker.purchase(PurchaseRequest::AtInverseNcp(50.0), price / 2.0),
            Err(MarketError::InsufficientPayment { .. })
        ));
        assert_eq!(broker.sales_count(), 0);
    }

    #[test]
    fn error_budget_buys_cheapest_feasible() {
        let broker = test_broker();
        broker.open_market().unwrap();
        // Budget e = 0.05 → x = 20.
        let (x, _) = broker.resolve(PurchaseRequest::ErrorBudget(0.05)).unwrap();
        assert!((x - 20.0).abs() < 1e-9);
        // Very loose budget clamps to the menu floor x = 1.
        let (x, _) = broker.resolve(PurchaseRequest::ErrorBudget(100.0)).unwrap();
        assert!((x - 1.0).abs() < 1e-9);
        // Impossible accuracy (x would exceed 100).
        assert!(broker.resolve(PurchaseRequest::ErrorBudget(0.001)).is_err());
    }

    #[test]
    fn price_budget_maximizes_accuracy() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let menu = broker.posted_menu().unwrap();
        let (x_max, p_max) = *menu.last().unwrap();
        // Unlimited budget buys the best version.
        let (x, p) = broker
            .resolve(PurchaseRequest::PriceBudget(p_max * 2.0))
            .unwrap();
        assert!((x - x_max).abs() < 1e-9);
        assert!((p - p_max).abs() < 1e-9);
        // Mid budget: the resolved price must not exceed the budget, and
        // bumping x must exceed it.
        let budget = p_max / 2.0;
        let (x, p) = broker.resolve(PurchaseRequest::PriceBudget(budget)).unwrap();
        assert!(p <= budget + 1e-9);
        let bumped = broker.quote(x + 0.5).unwrap();
        assert!(bumped >= budget - 1e-6, "binary search not tight: {bumped} vs {budget}");
        // No budget at all.
        assert!(broker.resolve(PurchaseRequest::PriceBudget(0.0)).is_err());
    }

    #[test]
    fn price_error_curve_for_test_mse() {
        let broker = test_broker();
        broker.open_market().unwrap();
        let test_set = broker.seller().dataset().test.clone();
        let curve = broker
            .price_error_curve(move |m| {
                nimbus_ml::metrics::mse(m, &test_set).map_err(Into::into)
            })
            .unwrap();
        assert_eq!(curve.len(), 50);
        // More accurate versions cost more.
        let pts = curve.points();
        assert!(pts[0].price >= pts[pts.len() - 1].price);
    }

    #[test]
    fn commission_splits_revenue() {
        let broker = test_broker().with_commission(0.2);
        broker.open_market().unwrap();
        broker
            .purchase(PurchaseRequest::AtInverseNcp(30.0), f64::INFINITY)
            .unwrap();
        broker
            .purchase(PurchaseRequest::AtInverseNcp(60.0), f64::INFINITY)
            .unwrap();
        let total = broker.collected_revenue();
        assert!(total > 0.0);
        assert!((broker.broker_cut() - 0.2 * total).abs() < 1e-12);
        assert!((broker.seller_proceeds() - 0.8 * total).abs() < 1e-12);
        assert!(
            (broker.broker_cut() + broker.seller_proceeds() - total).abs() < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "commission rate")]
    fn commission_out_of_range_panics() {
        let _ = test_broker().with_commission(1.0);
    }

    #[test]
    fn concurrent_purchases_are_consistent() {
        let broker = std::sync::Arc::new(test_broker());
        broker.open_market().unwrap();
        broker.optimal_model().unwrap();
        let threads = 4;
        let per_thread = 25;
        crossbeam::scope(|s| {
            for t in 0..threads {
                let b = broker.clone();
                s.spawn(move |_| {
                    for i in 0..per_thread {
                        let x = 1.0 + ((t * per_thread + i) % 99) as f64;
                        b.purchase(PurchaseRequest::AtInverseNcp(x), 1e9).unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(broker.sales_count(), threads * per_thread);
        assert!(broker.collected_revenue() > 0.0);
    }
}
