//! Buyer agents and populations.
//!
//! Buyers arrive from the demand curve: each wants one particular version
//! (an inverse-NCP point) and holds the valuation the value curve assigns
//! to it. A buyer purchases iff the posted price does not exceed their
//! valuation — the `1[p(a_j) ≤ v_j]` decision inside `T_BV`.

use crate::{MarketError, Result};
use nimbus_optim::RevenueProblem;
use nimbus_randkit::{NimbusRng, WeightedIndex};

/// One prospective buyer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Buyer {
    /// The version (inverse NCP) this buyer wants.
    pub desired_x: f64,
    /// The most they will pay for it.
    pub valuation: f64,
    /// Index of the underlying price point.
    pub point_index: usize,
}

impl Buyer {
    /// The purchase decision at a posted price (`p ≤ v`, with the same ulp
    /// slack as the optimizer's objective so expected and realized markets
    /// agree).
    pub fn will_buy(&self, price: f64) -> bool {
        nimbus_optim::objective::affords(price, self.valuation)
    }
}

/// A sampled buyer population.
#[derive(Debug, Clone)]
pub struct BuyerPopulation {
    buyers: Vec<Buyer>,
}

impl BuyerPopulation {
    /// Samples `count` buyers from a revenue problem's demand masses.
    pub fn sample(problem: &RevenueProblem, count: usize, rng: &mut NimbusRng) -> Result<Self> {
        if count == 0 {
            return Err(MarketError::EmptyPopulation);
        }
        let weights = problem.demands();
        let sampler = WeightedIndex::new(&weights).map_err(|_| MarketError::EmptyPopulation)?;
        let pts = problem.points();
        let buyers = (0..count)
            .map(|_| {
                let idx = sampler.sample(rng);
                Buyer {
                    desired_x: pts[idx].a,
                    valuation: pts[idx].v,
                    point_index: idx,
                }
            })
            .collect();
        Ok(BuyerPopulation { buyers })
    }

    /// The sampled buyers.
    pub fn buyers(&self) -> &[Buyer] {
        &self.buyers
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.buyers.len()
    }

    /// Whether the population is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.buyers.is_empty()
    }

    /// Realized revenue and affordability against per-point prices: each
    /// buyer pays `prices[their point]` iff affordable. Returns
    /// `(revenue, affordability_ratio)`.
    pub fn evaluate_prices(&self, prices: &[f64]) -> Result<(f64, f64)> {
        let mut revenue = 0.0;
        let mut bought = 0usize;
        for b in &self.buyers {
            let price = *prices
                .get(b.point_index)
                .ok_or(MarketError::EmptyPopulation)?;
            if b.will_buy(price) {
                // nimbus-audit: allow(money-safety) — menu prices are validated finite at pricing construction
                revenue += price;
                bought += 1;
            }
        }
        Ok((revenue, bought as f64 / self.buyers.len() as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_randkit::seeded_rng;

    fn problem() -> RevenueProblem {
        RevenueProblem::from_slices(&[1.0, 2.0, 3.0], &[0.2, 0.5, 0.3], &[10.0, 20.0, 30.0])
            .unwrap()
    }

    #[test]
    fn buyers_follow_demand_distribution() {
        let p = problem();
        let mut rng = seeded_rng(1);
        let pop = BuyerPopulation::sample(&p, 50_000, &mut rng).unwrap();
        let mut counts = [0usize; 3];
        for b in pop.buyers() {
            counts[b.point_index] += 1;
        }
        let f1 = counts[1] as f64 / pop.len() as f64;
        assert!((f1 - 0.5).abs() < 0.02, "middle point frequency {f1}");
        // Valuations carried along correctly.
        for b in pop.buyers() {
            assert_eq!(b.valuation, (b.point_index as f64 + 1.0) * 10.0);
        }
    }

    #[test]
    fn purchase_decision_threshold() {
        let b = Buyer {
            desired_x: 5.0,
            valuation: 10.0,
            point_index: 0,
        };
        assert!(b.will_buy(10.0));
        assert!(b.will_buy(9.99));
        assert!(!b.will_buy(10.01));
    }

    #[test]
    fn evaluate_prices_accounts_correctly() {
        let p = problem();
        let mut rng = seeded_rng(3);
        let pop = BuyerPopulation::sample(&p, 10_000, &mut rng).unwrap();
        // Price everyone at their valuation: all buy, revenue = Σ v.
        let (rev, aff) = pop.evaluate_prices(&[10.0, 20.0, 30.0]).unwrap();
        assert_eq!(aff, 1.0);
        let expected: f64 = pop.buyers().iter().map(|b| b.valuation).sum();
        assert_eq!(rev, expected);
        // Overprice everyone: nothing sells.
        let (rev, aff) = pop.evaluate_prices(&[100.0, 100.0, 100.0]).unwrap();
        assert_eq!(rev, 0.0);
        assert_eq!(aff, 0.0);
    }

    #[test]
    fn rejects_empty_population_requests() {
        let p = problem();
        let mut rng = seeded_rng(0);
        assert!(matches!(
            BuyerPopulation::sample(&p, 0, &mut rng),
            Err(MarketError::EmptyPopulation)
        ));
    }

    #[test]
    fn price_vector_length_mismatch_is_reported() {
        let p = problem();
        let mut rng = seeded_rng(5);
        let pop = BuyerPopulation::sample(&p, 10, &mut rng).unwrap();
        assert!(pop.evaluate_prices(&[1.0]).is_err());
    }
}
