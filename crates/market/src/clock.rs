//! Injectable monotonic clocks.
//!
//! The simulation layer times strategy solves, but wall-clock reads are
//! banned from the deterministic modules (`nimbus-audit`'s `determinism`
//! rule): replay must be a pure function of its inputs. So the clock is a
//! *capability* — callers hand [`crate::simulation::price_with_clock`] a
//! closure reading elapsed time since an arbitrary fixed origin, and the
//! deterministic code never touches [`Instant`] itself. Production entry
//! points pass [`wall_clock`]; reproducible runs and tests pass
//! [`null_clock`] (every duration reads zero) or a scripted closure.

use std::time::{Duration, Instant};

/// A monotonic clock: each call returns the time elapsed since the
/// clock's fixed (arbitrary) origin. Differences of two reads are
/// durations; absolute values are meaningless.
pub type Clock<'a> = &'a (dyn Fn() -> Duration + Sync);

/// A wall clock anchored at the moment of this call.
pub fn wall_clock() -> impl Fn() -> Duration + Sync {
    let origin = Instant::now();
    move || origin.elapsed()
}

/// A clock frozen at zero: timings vanish from the output, everything
/// else is bit-identical run to run.
pub fn null_clock() -> impl Fn() -> Duration + Sync {
    || Duration::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let clock = wall_clock();
        let a = clock();
        let b = clock();
        assert!(b >= a);
    }

    #[test]
    fn null_clock_reads_zero() {
        let clock = null_clock();
        assert_eq!(clock(), Duration::ZERO);
        assert_eq!(clock(), Duration::ZERO);
    }
}
