//! Buyer value and demand curves from market research (Figure 2(a)).
//!
//! The seller's market research produces two curves over model quality
//! (after the error transformation, over the inverse NCP `x`):
//!
//! * the **value curve** `v(x)` — the monetary worth buyers attach to a
//!   model of quality `x`; non-decreasing in `x`;
//! * the **demand curve** `b(x)` — how much buyer mass wants quality `x`.
//!
//! The paper's figures exercise specific shapes: convex vs concave value
//! curves (Figure 7 / 11), and uniform, mid-peaked, extreme-bimodal,
//! increasing and decreasing demand profiles (Figure 8 / 12). These are
//! reproduced here as parametric families; sampling a `(value, demand)`
//! pair on an `n`-point grid yields the `RevenueProblem` fed to the
//! optimizer.

use crate::{MarketError, Result};
use nimbus_optim::{PricePoint, RevenueProblem};

/// Parametric buyer-value curve shapes over the inverse NCP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueCurve {
    /// `v(t) = v_min + (v_max − v_min) t^p`, `p > 1`: most value appears
    /// only near the highest qualities (Figure 7(a)).
    Convex {
        /// Value at the lowest quality on offer.
        v_min: f64,
        /// Value at the highest quality on offer.
        v_max: f64,
        /// Exponent `p > 1`.
        power: f64,
    },
    /// `v(t) = v_min + (v_max − v_min) t^p`, `0 < p < 1`: diminishing
    /// returns to quality (Figure 7(b)).
    Concave {
        /// Value at the lowest quality on offer.
        v_min: f64,
        /// Value at the highest quality on offer.
        v_max: f64,
        /// Exponent `0 < p < 1`.
        power: f64,
    },
    /// Straight line from `v_min` to `v_max`.
    Linear {
        /// Value at the lowest quality on offer.
        v_min: f64,
        /// Value at the highest quality on offer.
        v_max: f64,
    },
    /// Logistic S-curve: flat, then a steep mid-market rise, then flat
    /// (the "step-like" value curves in the appendix figures).
    Sigmoid {
        /// Value at the lowest quality on offer.
        v_min: f64,
        /// Value at the highest quality on offer.
        v_max: f64,
        /// Midpoint of the rise in normalized quality `t ∈ [0, 1]`.
        midpoint: f64,
        /// Steepness of the rise (> 0).
        steepness: f64,
    },
}

impl ValueCurve {
    /// Standard convex shape used by the experiments.
    pub fn standard_convex() -> Self {
        ValueCurve::Convex {
            v_min: 2.0,
            v_max: 100.0,
            power: 3.0,
        }
    }

    /// Standard concave shape used by the experiments.
    pub fn standard_concave() -> Self {
        ValueCurve::Concave {
            v_min: 2.0,
            v_max: 100.0,
            power: 0.35,
        }
    }

    /// Standard linear shape.
    pub fn standard_linear() -> Self {
        ValueCurve::Linear {
            v_min: 2.0,
            v_max: 100.0,
        }
    }

    /// Standard sigmoid shape.
    pub fn standard_sigmoid() -> Self {
        ValueCurve::Sigmoid {
            v_min: 2.0,
            v_max: 100.0,
            midpoint: 0.55,
            steepness: 12.0,
        }
    }

    /// Short name for figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            ValueCurve::Convex { .. } => "convex",
            ValueCurve::Concave { .. } => "concave",
            ValueCurve::Linear { .. } => "linear",
            ValueCurve::Sigmoid { .. } => "sigmoid",
        }
    }

    fn validate(&self) -> Result<()> {
        let (v_min, v_max) = match self {
            ValueCurve::Convex {
                v_min,
                v_max,
                power,
            } => {
                if !(power.is_finite() && *power > 1.0) {
                    return Err(MarketError::InvalidCurve {
                        reason: "convex power must exceed 1",
                    });
                }
                (*v_min, *v_max)
            }
            ValueCurve::Concave {
                v_min,
                v_max,
                power,
            } => {
                if !(*power > 0.0 && *power < 1.0) {
                    return Err(MarketError::InvalidCurve {
                        reason: "concave power must be in (0, 1)",
                    });
                }
                (*v_min, *v_max)
            }
            ValueCurve::Linear { v_min, v_max } => (*v_min, *v_max),
            ValueCurve::Sigmoid {
                v_min,
                v_max,
                midpoint,
                steepness,
            } => {
                if !(steepness.is_finite() && *steepness > 0.0 && (0.0..=1.0).contains(midpoint)) {
                    return Err(MarketError::InvalidCurve {
                        reason: "sigmoid needs steepness > 0 and midpoint in [0, 1]",
                    });
                }
                (*v_min, *v_max)
            }
        };
        if !(v_min.is_finite() && v_max.is_finite() && v_min >= 0.0 && v_max >= v_min) {
            return Err(MarketError::InvalidCurve {
                reason: "values must satisfy 0 ≤ v_min ≤ v_max < ∞",
            });
        }
        Ok(())
    }

    /// Value at normalized quality `t ∈ [0, 1]`.
    pub fn value_at(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        match *self {
            ValueCurve::Convex {
                v_min,
                v_max,
                power,
            } => v_min + (v_max - v_min) * t.powf(power),
            ValueCurve::Concave {
                v_min,
                v_max,
                power,
            } => v_min + (v_max - v_min) * t.powf(power),
            ValueCurve::Linear { v_min, v_max } => v_min + (v_max - v_min) * t,
            ValueCurve::Sigmoid {
                v_min,
                v_max,
                midpoint,
                steepness,
            } => {
                let raw = |u: f64| 1.0 / (1.0 + (-steepness * (u - midpoint)).exp());
                // Normalize so the curve still spans [v_min, v_max] exactly.
                let (lo, hi) = (raw(0.0), raw(1.0));
                let norm = (raw(t) - lo) / (hi - lo);
                v_min + (v_max - v_min) * norm
            }
        }
    }
}

/// Parametric demand-distribution shapes over the inverse NCP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DemandCurve {
    /// Equal mass at every quality.
    Uniform,
    /// Gaussian bump centered mid-market: most buyers want medium accuracy
    /// (Figure 8(a)).
    MidPeaked {
        /// Relative width of the bump (as a fraction of the range).
        width: f64,
    },
    /// Two bumps at the extremes: buyers want either rough or
    /// near-optimal models (Figure 8(b)).
    BimodalExtremes {
        /// Relative width of each bump.
        width: f64,
    },
    /// Mass grows linearly with quality.
    Increasing,
    /// Mass shrinks linearly with quality.
    Decreasing,
}

impl DemandCurve {
    /// Short name for figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            DemandCurve::Uniform => "uniform",
            DemandCurve::MidPeaked { .. } => "mid_peaked",
            DemandCurve::BimodalExtremes { .. } => "bimodal_extremes",
            DemandCurve::Increasing => "increasing",
            DemandCurve::Decreasing => "decreasing",
        }
    }

    fn validate(&self) -> Result<()> {
        match self {
            DemandCurve::MidPeaked { width } | DemandCurve::BimodalExtremes { width }
                if !(*width > 0.0 && width.is_finite()) =>
            {
                return Err(MarketError::InvalidCurve {
                    reason: "demand bump width must be positive",
                });
            }
            _ => {}
        }
        Ok(())
    }

    /// Unnormalized mass at normalized quality `t ∈ [0, 1]`. Public so the
    /// broker can resample demand on a φ-mapped error grid.
    pub fn mass_at(&self, t: f64) -> f64 {
        match *self {
            DemandCurve::Uniform => 1.0,
            DemandCurve::MidPeaked { width } => {
                let z = (t - 0.5) / width;
                (-0.5 * z * z).exp()
            }
            DemandCurve::BimodalExtremes { width } => {
                let zl = t / width;
                let zr = (t - 1.0) / width;
                (-0.5 * zl * zl).exp() + (-0.5 * zr * zr).exp()
            }
            DemandCurve::Increasing => 0.1 + 0.9 * t,
            DemandCurve::Decreasing => 1.0 - 0.9 * t,
        }
    }

    /// Normalized weights over an `n`-point grid (sums to 1).
    pub fn weights(&self, n: usize) -> Result<Vec<f64>> {
        self.validate()?;
        if n == 0 {
            return Err(MarketError::EmptyPopulation);
        }
        let raw: Vec<f64> = (0..n)
            .map(|i| {
                let t = if n == 1 {
                    0.5
                } else {
                    i as f64 / (n - 1) as f64
                };
                self.mass_at(t)
            })
            .collect();
        let total: f64 = raw.iter().sum();
        Ok(raw.into_iter().map(|w| w / total).collect())
    }
}

/// A paired value/demand market-research result.
#[derive(Debug, Clone, Copy)]
pub struct MarketCurves {
    /// The buyer value curve.
    pub value: ValueCurve,
    /// The buyer demand curve.
    pub demand: DemandCurve,
    /// Lowest inverse NCP on offer.
    pub x_lo: f64,
    /// Highest inverse NCP on offer.
    pub x_hi: f64,
}

impl MarketCurves {
    /// The default market of the paper's figures: `1/NCP ∈ [1, 100]`.
    pub fn new(value: ValueCurve, demand: DemandCurve) -> Self {
        MarketCurves {
            value,
            demand,
            x_lo: 1.0,
            x_hi: 100.0,
        }
    }

    /// Samples both curves on an `n`-point grid and assembles the revenue
    /// problem `{(a_j, b_j, v_j)}`.
    pub fn build_problem(&self, n: usize) -> Result<RevenueProblem> {
        self.value.validate()?;
        if n == 0 {
            return Err(MarketError::EmptyPopulation);
        }
        if !(self.x_lo > 0.0 && self.x_hi > self.x_lo) {
            return Err(MarketError::InvalidCurve {
                reason: "inverse-NCP range must satisfy 0 < x_lo < x_hi",
            });
        }
        let weights = self.demand.weights(n)?;
        let mut points = Vec::with_capacity(n);
        for (i, &b) in weights.iter().enumerate() {
            let t = if n == 1 {
                0.5
            } else {
                i as f64 / (n - 1) as f64
            };
            let a = self.x_lo + (self.x_hi - self.x_lo) * t;
            let v = self.value.value_at(t);
            points.push(PricePoint { a, b, v });
        }
        RevenueProblem::new(points).map_err(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_curves_are_monotone_and_span_range() {
        for curve in [
            ValueCurve::standard_convex(),
            ValueCurve::standard_concave(),
            ValueCurve::standard_linear(),
            ValueCurve::standard_sigmoid(),
        ] {
            let vals: Vec<f64> = (0..=50).map(|i| curve.value_at(i as f64 / 50.0)).collect();
            assert!(
                vals.windows(2).all(|w| w[1] >= w[0] - 1e-12),
                "{} not monotone",
                curve.name()
            );
            assert!((vals[0] - 2.0).abs() < 1e-9, "{}", curve.name());
            assert!((vals[50] - 100.0).abs() < 1e-9, "{}", curve.name());
        }
    }

    #[test]
    fn convex_is_below_linear_is_below_concave() {
        let convex = ValueCurve::standard_convex();
        let linear = ValueCurve::standard_linear();
        let concave = ValueCurve::standard_concave();
        for i in 1..10 {
            let t = i as f64 / 10.0;
            assert!(convex.value_at(t) < linear.value_at(t));
            assert!(linear.value_at(t) < concave.value_at(t));
        }
    }

    #[test]
    fn demand_weights_normalize() {
        for demand in [
            DemandCurve::Uniform,
            DemandCurve::MidPeaked { width: 0.15 },
            DemandCurve::BimodalExtremes { width: 0.12 },
            DemandCurve::Increasing,
            DemandCurve::Decreasing,
        ] {
            let w = demand.weights(40).unwrap();
            assert_eq!(w.len(), 40);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{}", demand.name());
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn mid_peaked_peaks_in_middle() {
        let w = DemandCurve::MidPeaked { width: 0.15 }.weights(41).unwrap();
        let peak = w
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 20);
        assert!(w[0] < w[20] / 10.0);
    }

    #[test]
    fn bimodal_peaks_at_extremes() {
        let w = DemandCurve::BimodalExtremes { width: 0.1 }
            .weights(41)
            .unwrap();
        assert!(w[0] > w[20] * 5.0);
        assert!(w[40] > w[20] * 5.0);
    }

    #[test]
    fn build_problem_shapes() {
        let curves = MarketCurves::new(ValueCurve::standard_concave(), DemandCurve::Uniform);
        let p = curves.build_problem(100).unwrap();
        assert_eq!(p.len(), 100);
        assert_eq!(p.points()[0].a, 1.0);
        assert_eq!(p.points()[99].a, 100.0);
        assert!((p.total_demand() - 1.0).abs() < 1e-12);
        // Valuations monotone (required by the optimizer).
        let v = p.valuations();
        assert!(v.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let bad = ValueCurve::Convex {
            v_min: 1.0,
            v_max: 10.0,
            power: 0.5,
        };
        let curves = MarketCurves::new(bad, DemandCurve::Uniform);
        assert!(curves.build_problem(10).is_err());

        let bad = ValueCurve::Linear {
            v_min: 10.0,
            v_max: 1.0,
        };
        assert!(MarketCurves::new(bad, DemandCurve::Uniform)
            .build_problem(10)
            .is_err());

        assert!(DemandCurve::MidPeaked { width: 0.0 }.weights(10).is_err());
        assert!(DemandCurve::Uniform.weights(0).is_err());

        let mut curves = MarketCurves::new(ValueCurve::standard_linear(), DemandCurve::Uniform);
        curves.x_lo = 0.0;
        assert!(curves.build_problem(10).is_err());
    }

    #[test]
    fn single_point_problem() {
        let curves = MarketCurves::new(ValueCurve::standard_linear(), DemandCurve::Uniform);
        let p = curves.build_problem(1).unwrap();
        assert_eq!(p.len(), 1);
        // t = 0.5 on the linear curve: v = 51.
        assert!((p.points()[0].v - 51.0).abs() < 1e-9);
    }
}
