//! Error type for the marketplace layer.

use std::fmt;

/// Errors produced by the `nimbus-market` crate.
#[derive(Debug)]
pub enum MarketError {
    /// The broker has not been set up (no pricing function yet).
    MarketNotOpen,
    /// A marketplace request named a listing that does not exist.
    UnknownListing {
        /// The listing name the request carried.
        name: String,
    },
    /// A listing was created under a name that is already taken. Names are
    /// stable routing keys: refresh an existing listing by re-publishing
    /// it, never by silently replacing its broker (and its ledger).
    DuplicateListing {
        /// The listing name that already exists.
        name: String,
    },
    /// The listing exists but has been retired; it no longer quotes or
    /// sells. Retirement is terminal.
    ListingRetired {
        /// The retired listing's name.
        name: String,
    },
    /// A purchase was rejected: the payment was below the posted price.
    InsufficientPayment {
        /// The posted price.
        price: f64,
        /// The payment offered.
        offered: f64,
    },
    /// A commit carried a payment that is not a finite, non-negative
    /// amount (NaN, ±∞ or negative). Rejected before any price
    /// comparison so nonsense arithmetic can never record a sale.
    InvalidPayment {
        /// The payment offered.
        offered: f64,
    },
    /// A quote was committed against a snapshot that has since been
    /// superseded by a newer `open_market()` call.
    QuoteExpired {
        /// Epoch the quote was priced against.
        quoted: u64,
        /// Epoch of the currently published snapshot.
        current: u64,
    },
    /// The buyer's cumulative noise budget for this listing cannot cover
    /// the requested purchase. Rejected *before* the durability barrier:
    /// nothing is journalled and no account is charged. The display form
    /// carries a machine-readable remaining-budget hint
    /// (`budget_exhausted buyer=<id> requested=<x> remaining=<r>`).
    BudgetExhausted {
        /// The buyer identity whose account is exhausted.
        buyer: u64,
        /// Noise-precision charge (`x = 1/δ`) the purchase would add.
        requested: f64,
        /// Budget still available to this buyer on this listing.
        remaining: f64,
    },
    /// Broker configuration rejected at build time.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// Curve parameters were invalid.
    InvalidCurve {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Population generation was asked for zero buyers or given an empty
    /// market.
    EmptyPopulation,
    /// The write-ahead journal refused or failed an operation; the sale
    /// was not made durable and must not be acknowledged.
    Journal(crate::journal::JournalError),
    /// Underlying data error.
    Data(nimbus_data::DataError),
    /// Underlying ML error.
    Ml(nimbus_ml::MlError),
    /// Underlying MBP-core error.
    Core(nimbus_core::CoreError),
    /// Underlying optimizer error.
    Optim(nimbus_optim::OptimError),
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::MarketNotOpen => write!(f, "market is not open: no pricing configured"),
            MarketError::UnknownListing { name } => {
                write!(f, "no listing named {name:?} in this marketplace")
            }
            MarketError::DuplicateListing { name } => {
                write!(f, "a listing named {name:?} already exists")
            }
            MarketError::ListingRetired { name } => {
                write!(f, "listing {name:?} is retired and no longer sells")
            }
            MarketError::InsufficientPayment { price, offered } => {
                write!(f, "payment {offered} below posted price {price}")
            }
            MarketError::InvalidPayment { offered } => {
                write!(f, "payment {offered} is not a finite, non-negative amount")
            }
            MarketError::QuoteExpired { quoted, current } => write!(
                f,
                "quote priced against snapshot epoch {quoted} but epoch {current} is now posted"
            ),
            MarketError::BudgetExhausted {
                buyer,
                requested,
                remaining,
            } => write!(
                f,
                "budget_exhausted buyer={buyer} requested={requested} remaining={remaining}"
            ),
            MarketError::InvalidConfig { reason } => {
                write!(f, "invalid broker configuration: {reason}")
            }
            MarketError::InvalidCurve { reason } => write!(f, "invalid market curve: {reason}"),
            MarketError::EmptyPopulation => write!(f, "buyer population is empty"),
            MarketError::Journal(e) => write!(f, "journal error: {e}"),
            MarketError::Data(e) => write!(f, "data error: {e}"),
            MarketError::Ml(e) => write!(f, "ml error: {e}"),
            MarketError::Core(e) => write!(f, "core error: {e}"),
            MarketError::Optim(e) => write!(f, "optimizer error: {e}"),
        }
    }
}

impl std::error::Error for MarketError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MarketError::Journal(e) => Some(e),
            MarketError::Data(e) => Some(e),
            MarketError::Ml(e) => Some(e),
            MarketError::Core(e) => Some(e),
            MarketError::Optim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::journal::JournalError> for MarketError {
    fn from(e: crate::journal::JournalError) -> Self {
        MarketError::Journal(e)
    }
}

impl From<nimbus_data::DataError> for MarketError {
    fn from(e: nimbus_data::DataError) -> Self {
        MarketError::Data(e)
    }
}

impl From<nimbus_ml::MlError> for MarketError {
    fn from(e: nimbus_ml::MlError) -> Self {
        MarketError::Ml(e)
    }
}

impl From<nimbus_core::CoreError> for MarketError {
    fn from(e: nimbus_core::CoreError) -> Self {
        MarketError::Core(e)
    }
}

impl From<nimbus_optim::OptimError> for MarketError {
    fn from(e: nimbus_optim::OptimError) -> Self {
        MarketError::Optim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MarketError::MarketNotOpen.to_string().contains("not open"));
        assert!(MarketError::InsufficientPayment {
            price: 10.0,
            offered: 5.0
        }
        .to_string()
        .contains("below"));
        assert!(MarketError::InvalidPayment { offered: f64::NAN }
            .to_string()
            .contains("not a finite"));
    }

    #[test]
    fn budget_exhausted_hint_is_machine_readable() {
        let text = MarketError::BudgetExhausted {
            buyer: 42,
            requested: 8.0,
            remaining: 2.5,
        }
        .to_string();
        assert_eq!(text, "budget_exhausted buyer=42 requested=8 remaining=2.5");
    }

    #[test]
    fn conversions() {
        use std::error::Error;
        let e: MarketError = nimbus_ml::MlError::EmptyDataset.into();
        assert!(e.source().is_some());
        let e: MarketError = nimbus_optim::OptimError::EmptyProblem.into();
        assert!(e.source().is_some());
    }
}
